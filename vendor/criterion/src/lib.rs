//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the subset of the
//! criterion API the workspace's benches use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, group tuning setters,
//! `bench_with_input` / `bench_function`, `Bencher::iter` /
//! `iter_batched`, `BenchmarkId`, `Throughput`, `BatchSize` and
//! `black_box`. It takes a handful of timed samples and prints
//! median/min/max per benchmark — no statistics engine, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Throughput annotation (printed alongside timings).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Batch sizing for `iter_batched` (advisory only in this shim).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        let id = id.into();
        group.run_one(&id.id, |b| f(b));
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.id.clone();
        self.run_one(&label, |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id.id, |b| f(b));
        self
    }

    pub fn finish(self) {}

    fn run_one(&mut self, label: &str, mut run: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        run(&mut b);
        b.samples.sort_unstable();
        let (median, lo, hi) = match b.samples.as_slice() {
            [] => (Duration::ZERO, Duration::ZERO, Duration::ZERO),
            s => (s[s.len() / 2], s[0], s[s.len() - 1]),
        };
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!("  {:.0} B/s", n as f64 / median.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: median {:?} (min {:?}, max {:?}){}",
            self.name, label, median, lo, hi, thr
        );
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `f`, collecting `sample_size` samples (bounded by the
    /// measurement-time budget).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(f());
        }
        let budget = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if Instant::now() > budget {
                break;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let budget = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if Instant::now() > budget {
                break;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
