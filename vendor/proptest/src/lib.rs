//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses —
//! `Strategy` with `prop_map`/`prop_flat_map`, range/tuple/`Vec`
//! strategies, `prop::collection::vec`, `Just`, `any`, `prop_oneof!`,
//! and the `proptest!` macro with `prop_assert*`/`prop_assume!` — on a
//! deterministic per-test RNG. Failing cases report their case index and
//! generated inputs via `Debug`; there is **no shrinking**: the first
//! failing case is reported as-is.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Outcome of one generated test case (returned by `proptest!` bodies).
#[derive(Debug)]
pub enum TestCaseError {
    /// An explicit `prop_assert*` failure, with its message.
    Fail(String),
    /// A `prop_assume!` rejection: skip the case, draw another.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Give up after this many `prop_assume!` rejections.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// The deterministic generator handed to strategies.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// One stream per (test name, case index): reproducible and
    /// independent across cases.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    #[inline]
    pub fn range_u128(&mut self, lo: u128, hi: u128) -> u128 {
        debug_assert!(lo < hi);
        if hi - lo <= u64::MAX as u128 {
            lo + self.inner.random_range(0u64..(hi - lo) as u64) as u128
        } else {
            let x = ((self.inner.random_u64() as u128) << 64) | self.inner.random_u64() as u128;
            lo + x % (hi - lo)
        }
    }

    #[inline]
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo) as u128;
        lo + self.range_u128(0, span) as i128
    }

    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.inner.random_u64()
    }

    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.inner.random_bool(p)
    }
}

/// A generation strategy for values of type `Value` (no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_u128(self.start as u128, self.end as u128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_u128(*self.start() as u128, *self.end() as u128 + 1) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.range_i128(self.start as i128, self.end as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// `Vec<S>` generates one value per element strategy.
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical full-domain strategy (subset of `Arbitrary`).
pub trait Arbitrary {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct ArbNum<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for ArbNum<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = ArbNum<$t>;
            fn arbitrary() -> Self::Strategy {
                ArbNum(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for ArbNum<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = ArbNum<bool>;
    fn arbitrary() -> Self::Strategy {
        ArbNum(std::marker::PhantomData)
    }
}

/// `any::<T>()`: the canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Weighted choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.range_u128(0, self.total as u128) as u64;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight accounting")
    }
}

/// Namespaced helper modules (mirrors `proptest::prelude::prop`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count specification: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        pub lo: usize,
        pub hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(elem, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.range_u128(self.size.lo as u128, self.size.hi as u128) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// The `prop::` namespace of the prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {} at {}:{}", format!($($fmt)*), file!(), line!()),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}` at {}:{}",
                l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {} at {}:{}",
                l, r, format!($($fmt)*), file!(), line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The test-defining macro. Each body runs `cases` times over fresh
/// deterministic inputs; `prop_assume!` rejections draw a replacement
/// case (up to `max_global_rejects`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                let mut stream: u64 = 0;
                while passed < cfg.cases {
                    if rejected > cfg.max_global_rejects {
                        panic!(
                            "proptest {}: too many prop_assume! rejections ({rejected})",
                            stringify!($name)
                        );
                    }
                    let mut rng = $crate::TestRng::for_case(stringify!($name), stream);
                    stream += 1;
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    // Render inputs up front: the body may consume them.
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}"),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} (of {}): {}\ninputs:{}",
                                stringify!($name),
                                passed,
                                cfg.cases,
                                msg,
                                inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let s = (0u32..100, prop::collection::vec(0usize..10, 0..5));
        let a = {
            let mut rng = crate::TestRng::for_case("determinism", 3);
            s.generate(&mut rng)
        };
        let b = {
            let mut rng = crate::TestRng::for_case("determinism", 3);
            s.generate(&mut rng)
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_maps(x in 1u32..7, v in prop::collection::vec(0u64..3, 2..6)) {
            prop_assert!((1..7).contains(&x));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn oneof_and_flat_map(y in (2usize..5).prop_flat_map(|n| prop::collection::vec(0usize..n, n))) {
            prop_assert!(y.len() >= 2 && y.len() < 5);
            let n = y.len();
            prop_assert!(y.iter().all(|&e| e < n));
        }

        #[test]
        fn weighted_union(z in prop_oneof![3 => Just(0u8), 1 => Just(1u8)]) {
            prop_assert!(z <= 1);
        }

        #[test]
        fn assume_rejects(w in 0u32..10) {
            prop_assume!(w % 2 == 0);
            prop_assert_eq!(w % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest failing_case_reports")]
    #[allow(unnameable_test_items)]
    fn failure_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[test]
            fn failing_case_reports(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        failing_case_reports();
    }
}
