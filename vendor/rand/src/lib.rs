//! Offline stand-in for the `rand` crate.
//!
//! The workspace vendors this shim because builds must work without
//! network access. It implements exactly the surface the repo uses —
//! `StdRng`, `SeedableRng::seed_from_u64` and the `RngExt` sampling
//! methods — on top of a small, deterministic xoshiro256++ generator.
//! Streams are stable across runs and platforms (tests and generators
//! rely on seeds for reproducibility) but make no attempt to match the
//! upstream crate's streams.

pub mod rngs {
    /// Deterministic 256-bit xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }

        #[inline]
        pub(crate) fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        rngs::StdRng::from_state(s)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Copy + PartialOrd {
    fn sample(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            #[inline]
            fn sample(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Debiased multiply-shift (Lemire); span is < 2^64 here.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * span;
                let mut l = m as u64;
                if (l as u128) < span {
                    let t = span.wrapping_neg() % span;
                    while (l as u128) < t {
                        x = rng.next_u64();
                        m = (x as u128) * span;
                        l = m as u64;
                    }
                }
                (lo as i128 + (m >> 64) as i128) as $t
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling methods (subset of `rand::Rng`, under its 0.10-era name).
pub trait RngExt {
    /// Uniform sample from `range` (which must be non-empty).
    fn random_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T;
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool;
    /// A uniform `u64`.
    fn random_u64(&mut self) -> u64;
}

impl RngExt for rngs::StdRng {
    #[inline]
    fn random_range<T: UniformSample>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample(self, range.start, range.end)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits → uniform in [0, 1).
        let bits = self.next_u64() >> 11;
        (bits as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    #[inline]
    fn random_u64(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..16).map(|_| a.random_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.random_u64()).collect();
        assert_ne!(sa, sc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = r.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.random_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn bool_probability_rough() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }
}
