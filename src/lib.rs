//! # nowhere-dense
//!
//! A from-scratch Rust implementation of *Enumeration for FO Queries over
//! Nowhere Dense Graphs* (Schweikardt, Segoufin, Vigny; PODS 2018 / JACM
//! 2022): constant-delay enumeration, constant-time testing and
//! "next-solution" computation for first-order queries over sparse graphs,
//! after pseudo-linear preprocessing.
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`graph`] — colored graphs, generators, the relational reduction.
//! * [`logic`] — FO⁺ formulas, parsing, naive evaluation, distance types.
//! * [`store`] — the Storing Theorem (Thm 3.1) trie.
//! * [`persist`] — the checksummed on-disk container behind `ndq`'s
//!   `--save`/`--load` index files and the serve-side `swap` verb.
//! * [`cover`] — neighborhood covers (Thm 4.4) and kernels (Lemma 5.7).
//! * [`splitter`] — the splitter game (Def 4.5, Thm 4.6).
//! * [`core`] — distance oracles (Prop 4.2), skip pointers (Lemma 5.8) and
//!   the main `PreparedQuery` machinery (Thm 2.3, Cor 2.4, Cor 2.5).
//! * [`baseline`] — naive baselines used in the experiment harness.
//! * [`serve`] — the concurrent query-serving runtime: shared snapshots,
//!   a work-stealing pool, admission control and metrics.
//! * [`conform`] — the conformance harness: differential testing of every
//!   engine configuration against the naive semantics, metamorphic
//!   invariants, and a deterministic serve-protocol fuzzer (`ndq conform`).
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the claim-by-claim
//! empirical validation.

pub use nd_baseline as baseline;
pub use nd_conform as conform;
pub use nd_core as core;
pub use nd_cover as cover;
pub use nd_graph as graph;
pub use nd_logic as logic;
pub use nd_persist as persist;
pub use nd_serve as serve;
pub use nd_splitter as splitter;
pub use nd_store as store;

pub use nd_core::{Epsilon, PrepareOpts, PreparedQuery};
pub use nd_graph::{ColoredGraph, GraphBuilder, Vertex};
pub use nd_logic::{parse_query, Query};
