//! `ndq` — a command-line front-end for the nowhere-dense query engine.
//!
//! ```sh
//! # enumerate the first 10 answers of a query over a generated graph
//! ndq --graph grid:80x80 --color Blue:0.15:7 \
//!     --query "dist(x,y) > 2 && Blue(y)" --enumerate 10
//!
//! # count answers over a graph file (see nd-graph::io for the format)
//! ndq --graph-file network.g --query "E(x,y) && Hub(x)" --count
//!
//! # constant-time membership tests and next-solution jumps
//! ndq --graph tree:50000:3 --color Blue:0.1:1 \
//!     --query "dist(x,y) > 4 && Blue(y)" --test 17,3009 --next 17,0 --stats
//!
//! # serve probes over a line protocol (stdin or TCP)
//! ndq serve --graph grid:60x60 --color Blue:0.3:7 \
//!     --query "dist(x,y) > 2 && Blue(y)" --workers 4
//!
//! # closed-loop serving benchmark: worker scaling, p50/p95/p99, JSON report
//! ndq bench-serve --smoke --json bench.json
//! ```

use nowhere_dense::core::{
    Budget, Epsilon, NdError, PrepareOpts, PreparedQuery, SharedPreparedQuery,
};
use nowhere_dense::graph::json::{JsonArray, JsonObject};
use nowhere_dense::graph::{generators, io, ColoredGraph, Vertex};
use nowhere_dense::logic::parse_query;
use nowhere_dense::serve::metrics::HISTOGRAM_BUCKETS;
use nowhere_dense::serve::{
    HistogramSnapshot, Reply, Request, ServeError, ServeOpts, ServerPool, Session, Snapshot,
    DEFAULT_CACHE_CAPACITY, SESSION_PROTOCOL_HELP,
};
use std::borrow::Borrow;
use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Errors and exit codes
// ---------------------------------------------------------------------------

/// Top-level CLI failure. Every variant maps to a distinct exit code (see
/// `EXIT CODES` in `--help`), so scripts can dispatch on `$?` without
/// scraping stderr.
#[derive(Debug)]
enum CliError {
    /// Malformed command line or un-parseable client input.
    Usage(String),
    /// A typed engine error, exit-coded per `NdError` variant.
    Nd(NdError),
    /// A serving-runtime error outside the `NdError` hierarchy.
    Serve(ServeError),
    /// An operating-system I/O failure (file open/write, socket bind).
    Io(String),
    /// The conformance harness found engine/oracle disagreements.
    Conform(usize),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Nd(NdError::Graph(_)) => 10,
            CliError::Nd(NdError::Store(_)) => 11,
            CliError::Nd(NdError::Budget(_)) => 12,
            CliError::Nd(NdError::Prepare(_)) => 13,
            CliError::Nd(NdError::Query(_)) => 14,
            CliError::Nd(NdError::Read(_)) => 15,
            // Admission rejections are budget overruns; probe defects are
            // query errors — keep their codes aligned with the NdError ones.
            CliError::Serve(ServeError::Overloaded(_)) => 12,
            CliError::Serve(ServeError::Query(_)) => 14,
            CliError::Serve(_) => 16,
            CliError::Io(_) => 17,
            CliError::Conform(_) => 18,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(s) => write!(f, "{s}"),
            CliError::Nd(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "{e}"),
            CliError::Io(s) => write!(f, "{s}"),
            CliError::Conform(n) => write!(f, "conformance: {n} disagreement(s) found"),
        }
    }
}

impl From<NdError> for CliError {
    fn from(e: NdError) -> Self {
        CliError::Nd(e)
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        CliError::Serve(e)
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

const USAGE: &str = "\
ndq — constant-delay FO query evaluation over sparse graphs

USAGE:
  ndq [OPTIONS]               one-shot query evaluation
  ndq serve [OPTIONS]         serve probes over stdin or TCP (line protocol)
  ndq bench-serve [OPTIONS]   closed-loop serving benchmark
  ndq conform [OPTIONS]       differential conformance run (all engines vs oracle)

GRAPH / QUERY OPTIONS (all modes):
  --graph SPEC | --graph-file PATH   the input graph
      [--color NAME:DENSITY:SEED]...     add a random color
      --query QUERY                      FO+ query (see README for syntax)
      [--epsilon F]                      accuracy parameter (default 0.5)
      [--no-fallback]                    error on non-fragment queries
      [--budget-nodes N]                 cap preprocessing node expansions
      [--prepare-threads N]              preprocessing worker threads
                                         (0 = all cores; index is identical
                                         for every thread count)
      [--save PATH]                      persist the prepared index
                                         (checksummed, atomically written)
      [--load PATH]                      warm-start from a persisted index;
                                         replaces --graph/--query (the file
                                         carries both)

ONE-SHOT OPTIONS:
      [--enumerate N]                    stream the first N answers
      [--count]                          count all answers
      [--test a,b,...]...                membership tests (Cor 2.4)
      [--next a,b,...]...                next-solution jumps (Thm 2.3)
      [--stats]                          print index statistics

SERVE OPTIONS:
      [--workers N]                      worker threads (0 = all cores)
      [--listen HOST:PORT]               serve TCP instead of stdin
      [--max-inflight N]                 admission cap: queued+in-flight requests
      [--max-queued-bytes N]             admission cap: queued request bytes
      [--deadline-ms N]                  default per-request deadline
      [--prepare-cache N]                cached prepared queries [8]
      [--fallback-reprepare]             if --load fails, cold-prepare from
                                         --graph/--query instead of exiting
  protocol, one command per line:
      prepare QUERY   swap PATH   test a,b,..   next a,b,..
      page a,b,.. LIMIT   stats   metrics   help   shutdown   quit

BENCH-SERVE OPTIONS (defaults in brackets):
      [--workers LIST]                   worker counts to compare [1,4]
      [--clients N]                      concurrent closed-loop clients [8]
      [--batch N]                        requests per submitted batch [128]
      [--requests N]                     requests per run [200000]
      [--mix KIND]                       test | next | page | mixed [test]
      [--page-limit N]                   page size for page/mixed [32]
      [--json PATH]                      write a JSON report
      [--smoke]                          small CI-sized defaults

CONFORM OPTIONS (defaults in brackets):
      [--seed N]                         run seed [42]
      [--cases N]                        seeded (graph, query) cases [500]
      [--max-n N]                        largest graph size [28]
      [--serve-every N]                  wire-protocol config cadence, 0=off [8]
      [--no-shrink]                      skip counterexample minimization
      [--fuzz N]                         also fuzz the serve protocol for N lines [200]
      [--json PATH]                      write the JSON report ('-' = stdout)

GRAPH SPECS:
  grid:WxH           W×H grid
  pgrid:WxH:EXTRA    perturbed grid with EXTRA random chords
  tree:N:SEED        random tree
  bdeg:N:D:SEED      random graph with max degree D
  path:N | cycle:N | star:N | clique:N

EXIT CODES:
  0 ok          2 usage        10 graph     11 store     12 budget/overload
  13 prepare    14 query       15 read      16 serve     17 I/O
  18 conformance disagreement
";

// ---------------------------------------------------------------------------
// Shared argument parsing
// ---------------------------------------------------------------------------

/// Graph + query options shared by all three modes.
struct Common {
    graph_spec: Option<String>,
    graph_file: Option<String>,
    colors: Vec<String>,
    query: Option<String>,
    epsilon: f64,
    no_fallback: bool,
    budget_nodes: Option<u64>,
    prepare_threads: usize,
    /// Persist the prepared index to this path (one-shot and serve).
    save: Option<String>,
    /// Warm-start from a persisted index instead of preparing; replaces
    /// `--graph`/`--graph-file`/`--query` (the file carries both).
    load: Option<String>,
}

impl Common {
    fn new() -> Common {
        Common {
            graph_spec: None,
            graph_file: None,
            colors: Vec::new(),
            query: None,
            epsilon: 0.5,
            no_fallback: false,
            budget_nodes: None,
            prepare_threads: 1,
            save: None,
            load: None,
        }
    }

    /// Try to consume `flag` as a shared option; `Ok(false)` means the flag
    /// belongs to the caller's mode-specific set.
    fn try_parse_flag(
        &mut self,
        flag: &str,
        it: &mut impl Iterator<Item = String>,
    ) -> Result<bool, CliError> {
        let mut val = |what: &str| {
            it.next()
                .ok_or_else(|| usage(format!("missing value for {what}")))
        };
        match flag {
            "--graph" => self.graph_spec = Some(val("--graph")?),
            "--graph-file" => self.graph_file = Some(val("--graph-file")?),
            "--color" => self.colors.push(val("--color")?),
            "--query" => self.query = Some(val("--query")?),
            "--epsilon" => {
                self.epsilon = val("--epsilon")?
                    .parse()
                    .map_err(|e| usage(format!("bad --epsilon: {e}")))?
            }
            "--no-fallback" => self.no_fallback = true,
            "--budget-nodes" => {
                self.budget_nodes = Some(
                    val("--budget-nodes")?
                        .parse()
                        .map_err(|e| usage(format!("bad --budget-nodes: {e}")))?,
                )
            }
            "--prepare-threads" => {
                self.prepare_threads = val("--prepare-threads")?
                    .parse()
                    .map_err(|e| usage(format!("bad --prepare-threads: {e}")))?
            }
            "--save" => self.save = Some(val("--save")?),
            "--load" => self.load = Some(val("--load")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    fn build_graph(&self) -> Result<ColoredGraph, CliError> {
        let mut g = match (&self.graph_spec, &self.graph_file) {
            (Some(spec), None) => build_graph(spec)?,
            (None, Some(path)) => {
                let f = std::fs::File::open(path)
                    .map_err(|e| CliError::Io(format!("open {path}: {e}")))?;
                io::read_graph(std::io::BufReader::new(f)).map_err(NdError::from)?
            }
            _ => {
                return Err(usage(
                    "provide exactly one of --graph / --graph-file (see --help)",
                ))
            }
        };
        for c in &self.colors {
            add_color(&mut g, c)?;
        }
        Ok(g)
    }

    fn prepare_opts(&self) -> Result<PrepareOpts, CliError> {
        // Validate ε up front: a typed error here beats a panic mid-preparation.
        let epsilon = Epsilon::try_new(self.epsilon)?;
        Ok(PrepareOpts {
            epsilon: epsilon.get(),
            allow_fallback: !self.no_fallback,
            budget: match self.budget_nodes {
                Some(cap) => Budget::UNLIMITED.with_node_expansions(cap),
                None => Budget::UNLIMITED,
            },
            threads: self.prepare_threads,
            ..PrepareOpts::default()
        })
    }

    /// Build graph, parse query, prepare — everything `serve`/`bench-serve`
    /// need before the first request.
    fn build_snapshot(&self) -> Result<Snapshot, CliError> {
        let g = self.build_graph()?;
        eprintln!(
            "graph: {} vertices, {} edges, {} colors",
            g.n(),
            g.m(),
            g.num_colors()
        );
        let query_src = self
            .query
            .as_deref()
            .ok_or_else(|| usage("missing --query (see --help)"))?;
        let q = parse_query(query_src).map_err(|e| usage(e.to_string()))?;
        eprintln!("query: {q}");
        let snap = Snapshot::build_owned(g, &q, &self.prepare_opts()?).map_err(NdError::from)?;
        eprintln!(
            "prepared in {} ms (rung: {})",
            snap.build_ms(),
            snap.stats().rung.name()
        );
        Ok(snap)
    }
}

fn build_graph(spec: &str) -> Result<ColoredGraph, CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<usize, CliError> {
        s.parse()
            .map_err(|e| usage(format!("bad number {s:?}: {e}")))
    };
    match parts.as_slice() {
        ["grid", wh] | ["pgrid", wh, ..] => {
            let (w, h) = wh
                .split_once('x')
                .ok_or_else(|| usage(format!("expected WxH, got {wh:?}")))?;
            let (w, h) = (num(w)?, num(h)?);
            if parts[0] == "grid" {
                Ok(generators::grid(w, h))
            } else {
                let extra = num(parts.get(2).copied().unwrap_or("0"))?;
                Ok(generators::perturbed_grid(w, h, extra, 1))
            }
        }
        ["tree", n, seed] => Ok(generators::random_tree(num(n)?, num(seed)? as u64)),
        ["tree", n] => Ok(generators::random_tree(num(n)?, 1)),
        ["bdeg", n, d, seed] => Ok(generators::bounded_degree(
            num(n)?,
            num(d)?,
            num(seed)? as u64,
        )),
        ["path", n] => Ok(generators::path(num(n)?)),
        ["cycle", n] => Ok(generators::cycle(num(n)?)),
        ["star", n] => Ok(generators::star(num(n)?)),
        ["clique", n] => Ok(generators::clique(num(n)?)),
        _ => Err(usage(format!("unknown graph spec {spec:?} (see --help)"))),
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn add_color(g: &mut ColoredGraph, spec: &str) -> Result<(), CliError> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [name, density, seed] = parts.as_slice() else {
        return Err(usage(format!("expected NAME:DENSITY:SEED, got {spec:?}")));
    };
    let density: f64 = density
        .parse()
        .map_err(|e| usage(format!("bad density: {e}")))?;
    let seed: u64 = seed.parse().map_err(|e| usage(format!("bad seed: {e}")))?;
    let threshold = (density.clamp(0.0, 1.0) * u32::MAX as f64) as u32;
    let members: Vec<Vertex> = (0..g.n() as Vertex)
        .filter(|v| {
            let mut z = (*v as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9e3779b97f4a7c15);
            z ^= z >> 31;
            (z as u32) < threshold
        })
        .collect();
    g.add_color(members, Some(name.to_string()));
    Ok(())
}

fn parse_tuple(s: &str, arity: usize, n: usize) -> Result<Vec<Vertex>, CliError> {
    let t: Result<Vec<Vertex>, _> = s.split(',').map(|p| p.trim().parse()).collect();
    let t = t.map_err(|e| usage(format!("bad tuple {s:?}: {e}")))?;
    if t.len() != arity {
        return Err(usage(format!(
            "tuple {s:?} has arity {}, query has {arity}",
            t.len()
        )));
    }
    if let Some(&v) = t.iter().find(|&&v| (v as usize) >= n) {
        return Err(usage(format!("vertex {v} out of range [0,{n})")));
    }
    Ok(t)
}

// ---------------------------------------------------------------------------
// One-shot mode (the original ndq)
// ---------------------------------------------------------------------------

struct QueryArgs {
    common: Common,
    enumerate: Option<usize>,
    count: bool,
    tests: Vec<String>,
    nexts: Vec<String>,
    stats: bool,
}

fn parse_query_args(argv: Vec<String>) -> Result<QueryArgs, CliError> {
    let mut args = QueryArgs {
        common: Common::new(),
        enumerate: None,
        count: false,
        tests: Vec::new(),
        nexts: Vec::new(),
        stats: false,
    };
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        if args.common.try_parse_flag(&a, &mut it)? {
            continue;
        }
        let mut val = |what: &str| {
            it.next()
                .ok_or_else(|| usage(format!("missing value for {what}")))
        };
        match a.as_str() {
            "--enumerate" => {
                args.enumerate = Some(
                    val("--enumerate")?
                        .parse()
                        .map_err(|e| usage(format!("bad --enumerate: {e}")))?,
                )
            }
            "--count" => args.count = true,
            "--test" => args.tests.push(val("--test")?),
            "--next" => args.nexts.push(val("--next")?),
            "--stats" => args.stats = true,
            other => return Err(usage(format!("unknown argument {other:?}"))),
        }
    }
    Ok(args)
}

/// Map an index read/decode failure to the typed `read` exit code (15).
fn read_err(e: nowhere_dense::persist::PersistError) -> CliError {
    CliError::Nd(NdError::Read(e.into()))
}

/// Execute the probe/enumerate/count flags against a prepared index,
/// whether it borrows the graph (cold prepare) or owns it (warm load).
fn run_probes<G: Borrow<ColoredGraph>>(
    args: &QueryArgs,
    prepared: &PreparedQuery<G>,
) -> Result<(), CliError> {
    let arity = prepared.arity();
    let n = prepared.graph().n();
    if args.stats {
        eprintln!("index: {:#?}", prepared.stats());
    }
    for t in &args.tests {
        let tuple = parse_tuple(t, arity, n)?;
        let t0 = Instant::now();
        let ans = prepared.test(&tuple);
        println!("test {tuple:?} -> {ans}  ({:?})", t0.elapsed());
    }
    for t in &args.nexts {
        let tuple = parse_tuple(t, arity, n)?;
        let t0 = Instant::now();
        let ans = prepared.next_solution(&tuple);
        println!("next {tuple:?} -> {ans:?}  ({:?})", t0.elapsed());
    }
    if args.count {
        let t0 = Instant::now();
        println!("count: {}  ({:?})", prepared.count(), t0.elapsed());
    }
    if let Some(limit) = args.enumerate {
        let t0 = Instant::now();
        let mut shown = 0;
        for sol in prepared.enumerate().take(limit) {
            println!("{sol:?}");
            shown += 1;
        }
        eprintln!("{shown} answers in {:?}", t0.elapsed());
    }
    Ok(())
}

fn cmd_query(argv: Vec<String>) -> Result<(), CliError> {
    let args = parse_query_args(argv)?;

    // Warm start: the index file carries the graph, the query and every
    // engine structure — no preprocessing runs.
    if let Some(path) = &args.common.load {
        if args.common.graph_spec.is_some()
            || args.common.graph_file.is_some()
            || args.common.query.is_some()
        {
            return Err(usage(
                "--load replaces --graph/--graph-file/--query: the index file carries both",
            ));
        }
        let t0 = Instant::now();
        let loaded = SharedPreparedQuery::load_index(Path::new(path)).map_err(read_err)?;
        eprintln!(
            "loaded {path} in {:?}: {} vertices, query: {} (rung: {})",
            t0.elapsed(),
            loaded.prepared.graph().n(),
            loaded.query_src,
            loaded.prepared.stats().rung.name(),
        );
        run_probes(&args, &loaded.prepared)?;
        if let Some(save) = &args.common.save {
            loaded
                .prepared
                .save_index(&loaded.query, &loaded.query_src, Path::new(save))
                .map_err(read_err)?;
            eprintln!("saved index to {save}");
        }
        return Ok(());
    }

    let g = args.common.build_graph()?;
    eprintln!(
        "graph: {} vertices, {} edges, {} colors",
        g.n(),
        g.m(),
        g.num_colors()
    );

    let query_src = args
        .common
        .query
        .as_deref()
        .ok_or_else(|| usage("missing --query (see --help)"))?;
    let q = parse_query(query_src).map_err(|e| usage(e.to_string()))?;
    eprintln!("query: {q}");

    let opts = args.common.prepare_opts()?;
    let t0 = Instant::now();
    let prepared = PreparedQuery::prepare(&g, &q, &opts).map_err(NdError::from)?;
    eprintln!(
        "prepared in {:?} ({:?})",
        t0.elapsed(),
        prepared.engine_kind()
    );

    if let Some(save) = &args.common.save {
        prepared
            .save_index(&q, query_src, Path::new(save))
            .map_err(read_err)?;
        eprintln!("saved index to {save}");
    }
    run_probes(&args, &prepared)
}

// ---------------------------------------------------------------------------
// serve mode: a line protocol over stdin or TCP
// ---------------------------------------------------------------------------

struct ServeArgs {
    common: Common,
    workers: usize,
    listen: Option<String>,
    max_inflight: Option<u64>,
    max_queued_bytes: Option<u64>,
    deadline_ms: Option<u64>,
    prepare_cache: usize,
    /// When a `--load` fails, fall back to a cold prepare from
    /// `--graph`/`--query` instead of exiting with the typed read error.
    fallback_reprepare: bool,
}

fn parse_serve_args(argv: Vec<String>) -> Result<ServeArgs, CliError> {
    let mut args = ServeArgs {
        common: Common::new(),
        workers: 0,
        listen: None,
        max_inflight: None,
        max_queued_bytes: None,
        deadline_ms: None,
        prepare_cache: DEFAULT_CACHE_CAPACITY,
        fallback_reprepare: false,
    };
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        if args.common.try_parse_flag(&a, &mut it)? {
            continue;
        }
        let mut val = |what: &str| {
            it.next()
                .ok_or_else(|| usage(format!("missing value for {what}")))
        };
        let parse_u64 = |what: &str, s: String| -> Result<u64, CliError> {
            s.parse().map_err(|e| usage(format!("bad {what}: {e}")))
        };
        match a.as_str() {
            "--workers" => {
                args.workers = val("--workers")?
                    .parse()
                    .map_err(|e| usage(format!("bad --workers: {e}")))?
            }
            "--listen" => args.listen = Some(val("--listen")?),
            "--max-inflight" => {
                args.max_inflight = Some(parse_u64("--max-inflight", val("--max-inflight")?)?)
            }
            "--max-queued-bytes" => {
                args.max_queued_bytes =
                    Some(parse_u64("--max-queued-bytes", val("--max-queued-bytes")?)?)
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(parse_u64("--deadline-ms", val("--deadline-ms")?)?)
            }
            "--prepare-cache" => {
                args.prepare_cache = parse_u64("--prepare-cache", val("--prepare-cache")?)? as usize
            }
            "--fallback-reprepare" => args.fallback_reprepare = true,
            other => return Err(usage(format!("unknown argument {other:?}"))),
        }
    }
    Ok(args)
}

fn admission_budget(args: &ServeArgs) -> Budget {
    let mut b = Budget::UNLIMITED;
    if let Some(cap) = args.max_inflight {
        b = b.with_node_expansions(cap);
    }
    if let Some(cap) = args.max_queued_bytes {
        b = b.with_memory_bytes(cap);
    }
    if let Some(ms) = args.deadline_ms {
        b = b.with_wall_clock(Duration::from_millis(ms));
    }
    b
}

// The line protocol itself (parsing, formatting, dispatch) lives in
// `nd_serve::protocol`/`nd_serve::session` so the conformance harness can
// fuzz the exact production path in-process; the binary only owns the
// transports. The session is shared — a `prepare` from one client
// re-points probes for all of them, and the cache is process-wide.

fn serve_stdin(session: &Mutex<Session>) -> Result<(), CliError> {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout().lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| CliError::Io(format!("stdin: {e}")))?;
        match session.lock().unwrap().handle(&line) {
            None => {}
            Some(Reply::Quit) => break,
            Some(Reply::Line(reply)) => {
                writeln!(out, "{reply}").map_err(|e| CliError::Io(format!("stdout: {e}")))?;
                out.flush()
                    .map_err(|e| CliError::Io(format!("stdout: {e}")))?;
            }
        }
    }
    Ok(())
}

fn serve_tcp(session: Arc<Mutex<Session>>, addr: &str) -> Result<(), CliError> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| CliError::Io(format!("bind {addr}: {e}")))?;
    eprintln!(
        "listening on {} ({})",
        listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string()),
        SESSION_PROTOCOL_HELP
    );
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            // A failed accept poisons nothing; keep serving other clients.
            Err(e) => {
                eprintln!("accept: {e}");
                continue;
            }
        };
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".into());
            let reader = std::io::BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let mut writer = std::io::BufWriter::new(stream);
            for line in reader.lines() {
                let Ok(line) = line else { break };
                match session.lock().unwrap().handle(&line) {
                    None => continue,
                    Some(Reply::Quit) => break,
                    Some(Reply::Line(reply)) => {
                        if writeln!(writer, "{reply}")
                            .and_then(|_| writer.flush())
                            .is_err()
                        {
                            break;
                        }
                    }
                }
            }
            eprintln!("client {peer} disconnected");
        });
    }
    Ok(())
}

/// Cold-start a serving session: build the graph, parse the query,
/// prepare. Honors `--save` so an operator can persist the index the
/// server just built.
fn cold_serve_session(args: &ServeArgs, opts: ServeOpts) -> Result<Session, CliError> {
    let g = args.common.build_graph()?;
    eprintln!(
        "graph: {} vertices, {} edges, {} colors",
        g.n(),
        g.m(),
        g.num_colors()
    );
    let query_src = args
        .common
        .query
        .as_deref()
        .ok_or_else(|| usage("missing --query (see --help)"))?;
    let q = parse_query(query_src).map_err(|e| usage(e.to_string()))?;
    eprintln!("query: {q}");
    let session = Session::start(
        g.into_shared(),
        &q,
        args.common.prepare_opts()?,
        opts,
        args.prepare_cache,
    )
    .map_err(NdError::from)?;
    eprintln!(
        "prepared in {} ms (rung: {}); cache capacity {}",
        session.snapshot().build_ms(),
        session.snapshot().stats().rung.name(),
        args.prepare_cache,
    );
    if let Some(save) = &args.common.save {
        session
            .snapshot()
            .prepared()
            .save_index(&q, query_src, Path::new(save))
            .map_err(read_err)?;
        eprintln!("saved index to {save}");
    }
    Ok(session)
}

/// Start the serving session: warm from `--load` when given (with an
/// optional cold-prepare fallback), cold otherwise.
fn start_serve_session(args: &ServeArgs, opts: ServeOpts) -> Result<Session, CliError> {
    if let Some(path) = &args.common.load {
        let t0 = Instant::now();
        match SharedPreparedQuery::load_index(Path::new(path)) {
            Ok(loaded) => {
                let load_ms = t0.elapsed().as_millis() as u64;
                eprintln!(
                    "warm start: loaded {path} in {load_ms} ms: {} vertices, query: {} (rung: {})",
                    loaded.prepared.graph().n(),
                    loaded.query_src,
                    loaded.prepared.stats().rung.name(),
                );
                return Ok(Session::start_loaded(
                    loaded,
                    args.common.prepare_opts()?,
                    opts,
                    args.prepare_cache,
                    load_ms,
                ));
            }
            Err(e) if args.fallback_reprepare => {
                eprintln!("warning: loading {path} failed ({e}); falling back to a cold prepare");
            }
            Err(e) => return Err(read_err(e)),
        }
    }
    cold_serve_session(args, opts)
}

fn cmd_serve(argv: Vec<String>) -> Result<(), CliError> {
    let args = parse_serve_args(argv)?;
    let opts = ServeOpts {
        workers: args.workers,
        admission: admission_budget(&args),
        ..ServeOpts::default()
    };
    let session = start_serve_session(&args, opts)?;
    eprintln!(
        "serving with {} workers; {}",
        session.pool().workers(),
        SESSION_PROTOCOL_HELP
    );
    let session = Mutex::new(session);
    match &args.listen {
        None => serve_stdin(&session),
        Some(addr) => serve_tcp(Arc::new(session), addr),
    }
}

// ---------------------------------------------------------------------------
// bench-serve mode: closed-loop load generator
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mix {
    Test,
    Next,
    Page,
    Mixed,
}

impl Mix {
    fn parse(s: &str) -> Result<Mix, CliError> {
        match s {
            "test" => Ok(Mix::Test),
            "next" => Ok(Mix::Next),
            "page" => Ok(Mix::Page),
            "mixed" => Ok(Mix::Mixed),
            other => Err(usage(format!(
                "bad --mix {other:?}: expected test|next|page|mixed"
            ))),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Mix::Test => "test",
            Mix::Next => "next",
            Mix::Page => "page",
            Mix::Mixed => "mixed",
        }
    }
}

struct BenchArgs {
    common: Common,
    workers: Vec<usize>,
    clients: usize,
    batch: usize,
    requests: u64,
    mix: Mix,
    page_limit: usize,
    json: Option<String>,
    smoke: bool,
}

fn parse_bench_args(argv: Vec<String>) -> Result<BenchArgs, CliError> {
    let mut args = BenchArgs {
        common: Common::new(),
        workers: vec![1, 4],
        clients: 8,
        batch: 128,
        requests: 200_000,
        mix: Mix::Test,
        page_limit: 32,
        json: None,
        smoke: false,
    };
    let mut requests_set = false;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        if args.common.try_parse_flag(&a, &mut it)? {
            continue;
        }
        let mut val = |what: &str| {
            it.next()
                .ok_or_else(|| usage(format!("missing value for {what}")))
        };
        match a.as_str() {
            "--workers" => {
                args.workers = val("--workers")?
                    .split(',')
                    .map(|w| {
                        w.trim()
                            .parse::<usize>()
                            .map_err(|e| usage(format!("bad --workers entry {w:?}: {e}")))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if args.workers.is_empty() || args.workers.contains(&0) {
                    return Err(usage("--workers needs a comma list of positive counts"));
                }
            }
            "--clients" => {
                args.clients = val("--clients")?
                    .parse()
                    .map_err(|e| usage(format!("bad --clients: {e}")))?
            }
            "--batch" => {
                args.batch = val("--batch")?
                    .parse()
                    .map_err(|e| usage(format!("bad --batch: {e}")))?
            }
            "--requests" => {
                args.requests = val("--requests")?
                    .parse()
                    .map_err(|e| usage(format!("bad --requests: {e}")))?;
                requests_set = true;
            }
            "--mix" => args.mix = Mix::parse(&val("--mix")?)?,
            "--page-limit" => {
                args.page_limit = val("--page-limit")?
                    .parse()
                    .map_err(|e| usage(format!("bad --page-limit: {e}")))?
            }
            "--json" => args.json = Some(val("--json")?),
            "--smoke" => args.smoke = true,
            other => return Err(usage(format!("unknown argument {other:?}"))),
        }
    }
    if args.clients == 0 || args.batch == 0 {
        return Err(usage("--clients and --batch must be positive"));
    }
    if args.smoke && !requests_set {
        args.requests = 40_000;
    }
    // A default workload so `ndq bench-serve` runs out of the box.
    if args.common.graph_spec.is_none() && args.common.graph_file.is_none() {
        args.common.graph_spec = Some(if args.smoke {
            "grid:40x40".into()
        } else {
            "grid:60x60".into()
        });
        if args.common.colors.is_empty() {
            args.common.colors.push("Blue:0.3:7".into());
        }
        if args.common.query.is_none() {
            args.common.query = Some("dist(x,y) > 2 && Blue(y)".into());
        }
    }
    Ok(args)
}

fn random_request(
    state: &mut u64,
    mix: Mix,
    n: Vertex,
    arity: usize,
    page_limit: usize,
) -> Request {
    let tuple: Vec<Vertex> = (0..arity)
        .map(|_| (splitmix64(state) % n.max(1) as u64) as Vertex)
        .collect();
    let kind = match mix {
        Mix::Test => 0,
        Mix::Next => 1,
        Mix::Page => 2,
        Mix::Mixed => splitmix64(state) % 3,
    };
    match kind {
        0 => Request::Test { tuple },
        1 => Request::NextSolution { from: tuple },
        _ => Request::EnumeratePage {
            from: tuple,
            limit: page_limit,
        },
    }
}

struct BenchRun {
    workers: usize,
    completed: u64,
    errors: u64,
    elapsed: Duration,
    throughput_rps: f64,
    p50_ns: Option<u64>,
    p95_ns: Option<u64>,
    p99_ns: Option<u64>,
}

impl BenchRun {
    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("workers", self.workers as u64)
            .field_u64("completed", self.completed)
            .field_u64("errors", self.errors)
            .field_f64("elapsed_s", self.elapsed.as_secs_f64())
            .field_f64("throughput_rps", self.throughput_rps);
        for (name, q) in [
            ("p50_ns", self.p50_ns),
            ("p95_ns", self.p95_ns),
            ("p99_ns", self.p99_ns),
        ] {
            match q {
                Some(ns) => o.field_u64(name, ns),
                None => o.field_null(name),
            };
        }
        o.finish()
    }
}

fn bench_one(snap: &Snapshot, args: &BenchArgs, workers: usize) -> BenchRun {
    let pool = Arc::new(ServerPool::start(
        snap.clone(),
        &ServeOpts {
            workers,
            admission: Budget::UNLIMITED,
            ..ServeOpts::default()
        },
    ));
    let n = snap.graph().n() as Vertex;
    let arity = snap.arity();
    let per_client = (args.requests / args.clients as u64).max(1);

    // Pre-generate every batch so the timed section measures the serving
    // runtime (submit → execute → respond), not the generator's
    // allocation churn: constant-time probes are far cheaper than
    // building their request objects.
    let all_batches: Vec<Vec<Vec<Request>>> = (0..args.clients)
        .map(|c| {
            let mut state = 0x5eed_0000_0000_0000_u64 ^ (c as u64).wrapping_mul(0x9e37);
            let mut batches = Vec::new();
            let mut sent = 0u64;
            while sent < per_client {
                let b = args.batch.min((per_client - sent) as usize);
                sent += b as u64;
                batches.push(
                    (0..b)
                        .map(|_| random_request(&mut state, args.mix, n, arity, args.page_limit))
                        .collect(),
                );
            }
            batches
        })
        .collect();

    let barrier = Arc::new(std::sync::Barrier::new(args.clients + 1));
    let threads: Vec<_> = all_batches
        .into_iter()
        .map(|batches| {
            let pool = Arc::clone(&pool);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (mut ok, mut err) = (0u64, 0u64);
                // Closed loop: one outstanding batch per client.
                for reqs in batches {
                    let b = reqs.len() as u64;
                    match pool.submit(reqs) {
                        Ok(h) => {
                            for r in h.wait() {
                                if r.is_ok() {
                                    ok += 1;
                                } else {
                                    err += 1;
                                }
                            }
                        }
                        Err(_) => err += b,
                    }
                }
                (ok, err)
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let (mut completed, mut errors) = (0u64, 0u64);
    for t in threads {
        let (ok, err) = t.join().expect("bench client thread panicked");
        completed += ok;
        errors += err;
    }
    let elapsed = t0.elapsed();

    // Percentiles across all request kinds: merge the per-kind histograms.
    let m = pool.metrics_snapshot();
    let mut merged = [0u64; HISTOGRAM_BUCKETS];
    for k in &m.kinds {
        for (dst, src) in merged.iter_mut().zip(k.latency.counts.iter()) {
            *dst += src;
        }
    }
    let hist = HistogramSnapshot { counts: merged };
    BenchRun {
        workers,
        completed,
        errors,
        elapsed,
        throughput_rps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ns: hist.quantile_ns(0.50),
        p95_ns: hist.quantile_ns(0.95),
        p99_ns: hist.quantile_ns(0.99),
    }
}

fn cmd_bench_serve(argv: Vec<String>) -> Result<(), CliError> {
    let args = parse_bench_args(argv)?;
    let snap = args.common.build_snapshot()?;
    eprintln!(
        "bench: {} requests/run, {} clients, batch {}, mix {}",
        args.requests,
        args.clients,
        args.batch,
        args.mix.name()
    );

    println!(
        "{:>7}  {:>10}  {:>9}  {:>14}  {:>9}  {:>9}  {:>9}",
        "workers", "completed", "elapsed_s", "throughput_rps", "p50_ns", "p95_ns", "p99_ns"
    );
    let mut runs: Vec<BenchRun> = Vec::new();
    for &w in &args.workers {
        let r = bench_one(&snap, &args, w);
        let fmt_q = |q: Option<u64>| q.map_or_else(|| "-".into(), |v| v.to_string());
        println!(
            "{:>7}  {:>10}  {:>9.3}  {:>14.0}  {:>9}  {:>9}  {:>9}",
            r.workers,
            r.completed,
            r.elapsed.as_secs_f64(),
            r.throughput_rps,
            fmt_q(r.p50_ns),
            fmt_q(r.p95_ns),
            fmt_q(r.p99_ns),
        );
        runs.push(r);
    }

    // Scaling headline: best multi-worker run vs the single-worker run.
    // Worker scaling needs cores to scale onto — on a single-core host
    // extra workers can only tie, so say so instead of crying regression.
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let max_workers = args.workers.iter().copied().max().unwrap_or(1);
    let parallelism_limited = max_workers > cores;
    if parallelism_limited {
        eprintln!(
            "warning: benchmarking {max_workers} workers on a {cores}-core host — \
             worker counts above the core count cannot show real scaling"
        );
    }
    let single = runs.iter().find(|r| r.workers == 1);
    let multi = runs
        .iter()
        .filter(|r| r.workers >= 4)
        .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps));
    let mut speedup = None;
    if let (Some(s), Some(m)) = (single, multi) {
        let x = m.throughput_rps / s.throughput_rps.max(1e-9);
        speedup = Some((m.workers, x));
        let verdict = if x > 1.0 {
            ""
        } else if cores < 2 {
            "  [single-core host: no parallel speedup possible]"
        } else {
            "  [NO SCALING]"
        };
        println!(
            "speedup: {x:.2}x ({} workers vs 1, {cores} cores){verdict}",
            m.workers
        );
    }

    if let Some(path) = &args.json {
        let mut arr = JsonArray::new();
        for r in &runs {
            arr.push_raw(&r.to_json());
        }
        let mut o = JsonObject::new();
        o.field_str("bench", "serve")
            .field_u64("host_cores", cores as u64)
            .field_bool("parallelism_limited", parallelism_limited)
            .field_u64("graph_n", snap.graph().n() as u64)
            .field_u64("graph_m", snap.graph().m() as u64)
            .field_str("query", snap.query_src())
            .field_str("mix", args.mix.name())
            .field_u64("clients", args.clients as u64)
            .field_u64("batch", args.batch as u64)
            .field_u64("requests_per_run", args.requests)
            .field_u64("prepare_ms", snap.build_ms())
            .field_raw("runs", &arr.finish());
        match speedup {
            Some((w, x)) => {
                o.field_u64("speedup_workers", w as u64)
                    .field_f64("speedup_vs_1", x);
            }
            None => {
                o.field_null("speedup_vs_1");
            }
        }
        std::fs::write(path, o.finish() + "\n")
            .map_err(|e| CliError::Io(format!("write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// conform mode
// ---------------------------------------------------------------------------

/// `ndq conform`: run the differential conformance harness (every engine
/// configuration against the naive-semantics oracle, metamorphic
/// invariants, wire-protocol round trips) plus the protocol fuzzer, and
/// exit non-zero (code 18) on any disagreement.
fn cmd_conform(argv: Vec<String>) -> Result<(), CliError> {
    let mut opts = nowhere_dense::conform::ConformOpts {
        cases: 500,
        ..nowhere_dense::conform::ConformOpts::default()
    };
    let mut fuzz_lines: usize = 200;
    let mut json_path: Option<String> = None;
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        let mut val = |what: &str| {
            it.next()
                .ok_or_else(|| usage(format!("missing value for {what}")))
        };
        let parse = |what: &str, s: String| -> Result<u64, CliError> {
            s.parse().map_err(|e| usage(format!("bad {what}: {e}")))
        };
        match a.as_str() {
            "--seed" => opts.seed = parse("--seed", val("--seed")?)?,
            "--cases" => opts.cases = parse("--cases", val("--cases")?)? as usize,
            "--max-n" => {
                opts.max_n = (parse("--max-n", val("--max-n")?)? as usize).max(9);
            }
            "--serve-every" => {
                opts.serve_every = parse("--serve-every", val("--serve-every")?)? as usize;
            }
            "--no-shrink" => opts.shrink = false,
            "--fuzz" => fuzz_lines = parse("--fuzz", val("--fuzz")?)? as usize,
            "--json" => json_path = Some(val("--json")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other => return Err(usage(format!("unknown argument {other:?}"))),
        }
    }

    let t0 = Instant::now();
    let mut report = nowhere_dense::conform::run(&opts);
    if fuzz_lines > 0 {
        let fuzz = nowhere_dense::conform::protocol_fuzz::fuzz_protocol(opts.seed, fuzz_lines);
        report.configs_checked += fuzz.configs_checked;
        report.probes += fuzz.probes;
        report.disagreements.extend(fuzz.disagreements);
    }

    eprintln!(
        "conform: seed={} cases={} configs={} probes={} skipped={} disagreements={} ({:.1}s)",
        opts.seed,
        opts.cases,
        report.configs_checked,
        report.probes,
        report.skipped,
        report.disagreements.len(),
        t0.elapsed().as_secs_f64(),
    );
    for d in &report.disagreements {
        eprintln!(
            "  [{}] {} / {}: {} :: {}{}",
            d.case_seed,
            d.config,
            d.check,
            d.query,
            d.detail,
            d.minimized
                .as_deref()
                .map(|m| format!(" (minimized: {m})"))
                .unwrap_or_default(),
        );
    }

    match json_path.as_deref() {
        Some("-") => println!("{}", report.to_json()),
        Some(path) => std::fs::write(path, report.to_json())
            .map_err(|e| CliError::Io(format!("write {path}: {e}")))?,
        None => {}
    }

    if report.ok() {
        Ok(())
    } else {
        Err(CliError::Conform(report.disagreements.len()))
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("serve") => cmd_serve(argv.split_off(1)),
        Some("bench-serve") => cmd_bench_serve(argv.split_off(1)),
        Some("conform") => cmd_conform(argv.split_off(1)),
        _ => cmd_query(argv),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
