//! `ndq` — a command-line front-end for the nowhere-dense query engine.
//!
//! ```sh
//! # enumerate the first 10 answers of a query over a generated graph
//! ndq --graph grid:80x80 --color Blue:0.15:7 \
//!     --query "dist(x,y) > 2 && Blue(y)" --enumerate 10
//!
//! # count answers over a graph file (see nd-graph::io for the format)
//! ndq --graph-file network.g --query "E(x,y) && Hub(x)" --count
//!
//! # constant-time membership tests and next-solution jumps
//! ndq --graph tree:50000:3 --color Blue:0.1:1 \
//!     --query "dist(x,y) > 4 && Blue(y)" --test 17,3009 --next 17,0 --stats
//! ```

use nowhere_dense::core::{Budget, Epsilon, PrepareOpts, PreparedQuery};
use nowhere_dense::graph::{generators, io, ColoredGraph, Vertex};
use nowhere_dense::logic::parse_query;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    graph_spec: Option<String>,
    graph_file: Option<String>,
    colors: Vec<String>,
    query: Option<String>,
    enumerate: Option<usize>,
    count: bool,
    tests: Vec<String>,
    nexts: Vec<String>,
    epsilon: f64,
    stats: bool,
    no_fallback: bool,
    budget_nodes: Option<u64>,
}

const USAGE: &str = "\
ndq — constant-delay FO query evaluation over sparse graphs

USAGE:
  ndq --graph SPEC | --graph-file PATH   the input graph
      [--color NAME:DENSITY:SEED]...     add a random color
      --query QUERY                      FO+ query (see README for syntax)
      [--enumerate N]                    stream the first N answers
      [--count]                          count all answers
      [--test a,b,...]...                membership tests (Cor 2.4)
      [--next a,b,...]...                next-solution jumps (Thm 2.3)
      [--epsilon F]                      accuracy parameter (default 0.5)
      [--stats]                          print index statistics
      [--no-fallback]                    error on non-fragment queries
      [--budget-nodes N]                 cap preprocessing node expansions

GRAPH SPECS:
  grid:WxH           W×H grid
  pgrid:WxH:EXTRA    perturbed grid with EXTRA random chords
  tree:N:SEED        random tree
  bdeg:N:D:SEED      random graph with max degree D
  path:N | cycle:N | star:N | clique:N
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        graph_spec: None,
        graph_file: None,
        colors: Vec::new(),
        query: None,
        enumerate: None,
        count: false,
        tests: Vec::new(),
        nexts: Vec::new(),
        epsilon: 0.5,
        stats: false,
        no_fallback: false,
        budget_nodes: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |what: &str| it.next().ok_or_else(|| format!("missing value for {what}"));
        match a.as_str() {
            "--graph" => args.graph_spec = Some(val("--graph")?),
            "--graph-file" => args.graph_file = Some(val("--graph-file")?),
            "--color" => args.colors.push(val("--color")?),
            "--query" => args.query = Some(val("--query")?),
            "--enumerate" => {
                args.enumerate = Some(
                    val("--enumerate")?
                        .parse()
                        .map_err(|e| format!("bad --enumerate: {e}"))?,
                )
            }
            "--count" => args.count = true,
            "--test" => args.tests.push(val("--test")?),
            "--next" => args.nexts.push(val("--next")?),
            "--epsilon" => {
                args.epsilon = val("--epsilon")?
                    .parse()
                    .map_err(|e| format!("bad --epsilon: {e}"))?
            }
            "--stats" => args.stats = true,
            "--no-fallback" => args.no_fallback = true,
            "--budget-nodes" => {
                args.budget_nodes = Some(
                    val("--budget-nodes")?
                        .parse()
                        .map_err(|e| format!("bad --budget-nodes: {e}"))?,
                )
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn build_graph(spec: &str) -> Result<ColoredGraph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<usize, String> {
        s.parse().map_err(|e| format!("bad number {s:?}: {e}"))
    };
    match parts.as_slice() {
        ["grid", wh] | ["pgrid", wh, ..] => {
            let (w, h) = wh
                .split_once('x')
                .ok_or_else(|| format!("expected WxH, got {wh:?}"))?;
            let (w, h) = (num(w)?, num(h)?);
            if parts[0] == "grid" {
                Ok(generators::grid(w, h))
            } else {
                let extra = num(parts.get(2).copied().unwrap_or("0"))?;
                Ok(generators::perturbed_grid(w, h, extra, 1))
            }
        }
        ["tree", n, seed] => Ok(generators::random_tree(num(n)?, num(seed)? as u64)),
        ["tree", n] => Ok(generators::random_tree(num(n)?, 1)),
        ["bdeg", n, d, seed] => Ok(generators::bounded_degree(
            num(n)?,
            num(d)?,
            num(seed)? as u64,
        )),
        ["path", n] => Ok(generators::path(num(n)?)),
        ["cycle", n] => Ok(generators::cycle(num(n)?)),
        ["star", n] => Ok(generators::star(num(n)?)),
        ["clique", n] => Ok(generators::clique(num(n)?)),
        _ => Err(format!("unknown graph spec {spec:?} (see --help)")),
    }
}

fn add_color(g: &mut ColoredGraph, spec: &str) -> Result<(), String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let [name, density, seed] = parts.as_slice() else {
        return Err(format!("expected NAME:DENSITY:SEED, got {spec:?}"));
    };
    let density: f64 = density.parse().map_err(|e| format!("bad density: {e}"))?;
    let seed: u64 = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
    let threshold = (density.clamp(0.0, 1.0) * u32::MAX as f64) as u32;
    let members: Vec<Vertex> = (0..g.n() as Vertex)
        .filter(|v| {
            let mut z = (*v as u64)
                .wrapping_add(seed)
                .wrapping_mul(0x9e3779b97f4a7c15);
            z ^= z >> 31;
            (z as u32) < threshold
        })
        .collect();
    g.add_color(members, Some(name.to_string()));
    Ok(())
}

fn parse_tuple(s: &str, arity: usize, n: usize) -> Result<Vec<Vertex>, String> {
    let t: Result<Vec<Vertex>, _> = s.split(',').map(|p| p.trim().parse()).collect();
    let t = t.map_err(|e| format!("bad tuple {s:?}: {e}"))?;
    if t.len() != arity {
        return Err(format!(
            "tuple {s:?} has arity {}, query has {arity}",
            t.len()
        ));
    }
    if let Some(&v) = t.iter().find(|&&v| (v as usize) >= n) {
        return Err(format!("vertex {v} out of range [0,{n})"));
    }
    Ok(t)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let mut g = match (&args.graph_spec, &args.graph_file) {
        (Some(spec), None) => build_graph(spec)?,
        (None, Some(path)) => {
            let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
            io::read_graph(std::io::BufReader::new(f)).map_err(|e| e.to_string())?
        }
        _ => return Err("provide exactly one of --graph / --graph-file (see --help)".into()),
    };
    for c in &args.colors {
        add_color(&mut g, c)?;
    }
    eprintln!(
        "graph: {} vertices, {} edges, {} colors",
        g.n(),
        g.m(),
        g.num_colors()
    );

    let query_src = args.query.ok_or("missing --query (see --help)")?;
    let q = parse_query(&query_src).map_err(|e| e.to_string())?;
    eprintln!("query: {q}");

    // Validate ε up front: a typed error here beats a panic mid-preparation.
    let epsilon = Epsilon::try_new(args.epsilon).map_err(|e| e.to_string())?;
    let opts = PrepareOpts {
        epsilon: epsilon.get(),
        allow_fallback: !args.no_fallback,
        budget: match args.budget_nodes {
            Some(cap) => Budget::UNLIMITED.with_node_expansions(cap),
            None => Budget::UNLIMITED,
        },
        ..PrepareOpts::default()
    };
    let t0 = Instant::now();
    let prepared = PreparedQuery::prepare(&g, &q, &opts).map_err(|e| e.to_string())?;
    eprintln!(
        "prepared in {:?} ({:?})",
        t0.elapsed(),
        prepared.engine_kind()
    );

    if args.stats {
        eprintln!("index: {:#?}", prepared.stats());
    }
    for t in &args.tests {
        let tuple = parse_tuple(t, q.arity(), g.n())?;
        let t0 = Instant::now();
        let ans = prepared.test(&tuple);
        println!("test {tuple:?} -> {ans}  ({:?})", t0.elapsed());
    }
    for t in &args.nexts {
        let tuple = parse_tuple(t, q.arity(), g.n())?;
        let t0 = Instant::now();
        let ans = prepared.next_solution(&tuple);
        println!("next {tuple:?} -> {ans:?}  ({:?})", t0.elapsed());
    }
    if args.count {
        let t0 = Instant::now();
        println!("count: {}  ({:?})", prepared.count(), t0.elapsed());
    }
    if let Some(limit) = args.enumerate {
        let t0 = Instant::now();
        let mut shown = 0;
        for sol in prepared.enumerate().take(limit) {
            println!("{sol:?}");
            shown += 1;
        }
        eprintln!("{shown} answers in {:?}", t0.elapsed());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
