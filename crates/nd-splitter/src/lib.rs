//! The **splitter game** (Definition 4.5) and its strategies.
//!
//! In the `(λ, r)`-splitter game on `G`, Connector picks a vertex `c`,
//! Splitter answers with a vertex `s` of the ball `N_r(c)`; play continues
//! on `G[N_r(c) \ {s}]`. Splitter wins when the arena becomes empty.
//! Theorem 4.6 (Grohe–Kreutzer–Siebertz) characterizes nowhere dense
//! classes: `C` is nowhere dense iff for every `r` there is a uniform bound
//! `λ(r)` on the number of rounds Splitter needs across all of `C`.
//!
//! The paper's preprocessing only uses one *move* of a winning strategy per
//! bag (Remark 4.7: computable in time `O(‖N_r(c)‖)`). We provide pluggable
//! heuristic strategies (the recursion in `nd-core` terminates regardless,
//! because every round removes a vertex, and falls back to a naive base
//! case below a size threshold — see DESIGN.md §2) and a game simulator
//! that *measures* λ per graph family (experiment E3).

use nd_graph::{BfsScratch, ColoredGraph, InducedSubgraph, Vertex};

/// A splitter strategy: given the induced ball `N_r^{G_i}(c)` (as a local
/// subgraph) and the local id of the connector's vertex, pick the vertex to
/// delete (local id).
pub trait SplitterStrategy {
    fn pick(&self, ball: &InducedSubgraph, center_local: Vertex, r: u32) -> Vertex;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Delete the connector's own vertex. Optimal on stars; a weak general
/// baseline.
pub struct TakeCenter;

impl SplitterStrategy for TakeCenter {
    fn pick(&self, _ball: &InducedSubgraph, center_local: Vertex, _r: u32) -> Vertex {
        center_local
    }
    fn name(&self) -> &'static str {
        "take-center"
    }
}

/// Delete the maximum-degree vertex of the ball — effective on graphs with
/// hub structure.
pub struct MaxDegree;

impl SplitterStrategy for MaxDegree {
    fn pick(&self, ball: &InducedSubgraph, _center_local: Vertex, _r: u32) -> Vertex {
        let g = &ball.graph;
        (0..g.n() as Vertex)
            .max_by_key(|&v| g.degree(v))
            .unwrap_or(0)
    }
    fn name(&self) -> &'static str {
        "max-degree"
    }
}

/// Delete (an approximation of) the ball's center: the midpoint of a
/// double-sweep diameter path. On trees this is the classical center and
/// yields a winning strategy whose round count shrinks the radius; on grids
/// it behaves like a balanced separator pick.
pub struct BallCenter;

impl SplitterStrategy for BallCenter {
    fn pick(&self, ball: &InducedSubgraph, center_local: Vertex, _r: u32) -> Vertex {
        let g = &ball.graph;
        if g.n() == 0 {
            return 0;
        }
        let mut scratch = BfsScratch::new(g.n());
        // Double sweep within the connected component of the center.
        scratch.run(g, center_local, u32::MAX);
        let u = *scratch.reached().last().unwrap_or(&center_local);
        scratch.run(g, u, u32::MAX);
        let w = *scratch.reached().last().unwrap_or(&u);
        let d_uw = scratch.dist(w);
        if d_uw == 0 {
            return u;
        }
        // Walk back from w towards u, stopping halfway.
        let mut cur = w;
        let mut remaining = d_uw / 2;
        while remaining > 0 {
            let dc = scratch.dist(cur);
            let next = g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&x| scratch.dist(x) + 1 == dc)
                .expect("BFS predecessor exists");
            cur = next;
            remaining -= 1;
        }
        cur
    }
    fn name(&self) -> &'static str {
        "ball-center"
    }
}

/// How Connector chooses vertices in the simulated game.
pub enum ConnectorStrategy {
    /// Always the smallest vertex (deterministic baseline).
    First,
    /// The vertex of maximum degree in the current arena.
    MaxDegree,
    /// Greedy adversary over a sample: the candidate with the largest
    /// `r`-ball among `samples` vertices (plus the max-degree vertex).
    SampledAdversary { samples: usize, seed: u64 },
}

impl ConnectorStrategy {
    fn pick(&self, g: &ColoredGraph, r: u32) -> Vertex {
        match self {
            ConnectorStrategy::First => 0,
            ConnectorStrategy::MaxDegree => (0..g.n() as Vertex)
                .max_by_key(|&v| g.degree(v))
                .unwrap_or(0),
            ConnectorStrategy::SampledAdversary { samples, seed } => {
                let n = g.n() as u64;
                let mut scratch = BfsScratch::new(g.n());
                let mut best = 0 as Vertex;
                let mut best_size = 0usize;
                let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
                let mut candidates: Vec<Vertex> = (0..*samples)
                    .map(|_| {
                        // splitmix64
                        state = state.wrapping_add(0x9e3779b97f4a7c15);
                        let mut z = state;
                        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                        ((z ^ (z >> 31)) % n.max(1)) as Vertex
                    })
                    .collect();
                candidates.push(
                    (0..g.n() as Vertex)
                        .max_by_key(|&v| g.degree(v))
                        .unwrap_or(0),
                );
                for c in candidates {
                    scratch.run(g, c, r);
                    let size = scratch.reached().len();
                    if size > best_size {
                        best_size = size;
                        best = c;
                    }
                }
                best
            }
        }
    }
}

/// Outcome of a simulated game.
#[derive(Clone, Debug)]
pub struct GameResult {
    /// Rounds played until the arena was empty.
    pub rounds: usize,
    /// Arena sizes after each round (strictly decreasing to 0).
    pub arena_sizes: Vec<usize>,
}

/// Play the `(∞, r)`-splitter game to completion and report how many rounds
/// Splitter needed — the empirical `λ(r)` of Theorem 4.6.
pub fn play_game(
    g: &ColoredGraph,
    r: u32,
    splitter: &dyn SplitterStrategy,
    connector: &ConnectorStrategy,
) -> GameResult {
    let all: Vec<Vertex> = g.vertices().collect();
    let mut arena = InducedSubgraph::new_uncolored(g, &all);
    let mut rounds = 0;
    let mut arena_sizes = Vec::new();
    let mut scratch = BfsScratch::new(g.n());
    while arena.n() > 0 {
        rounds += 1;
        let c = connector.pick(&arena.graph, r);
        scratch.ensure(arena.n());
        let ball_local = scratch.ball_sorted(&arena.graph, c, r);
        let ball = InducedSubgraph::new_uncolored(&arena.graph, &ball_local);
        let c_in_ball = ball.to_local(c).expect("center in own ball");
        let s = splitter.pick(&ball, c_in_ball, r);
        // Next arena: the ball minus splitter's vertex, in *global* ids of
        // the current arena, then re-induced.
        let mut next: Vec<Vertex> = (0..ball.n() as Vertex)
            .filter(|&v| v != s)
            .map(|v| arena.to_global(ball.to_global(v)))
            .collect();
        next.sort_unstable();
        arena_sizes.push(next.len());
        arena = InducedSubgraph::new_uncolored(g, &next);
    }
    GameResult {
        rounds,
        arena_sizes,
    }
}

/// One splitter move for the preprocessing phases (Step 3 of Section 4.2.1
/// / Step 8 of Section 5.2.1): given the bag subgraph and the local id of
/// its center, return the local id of Splitter's answer `s_X`.
pub fn splitter_move(bag: &InducedSubgraph, center_local: Vertex, r: u32) -> Vertex {
    BallCenter.pick(bag, center_local, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;

    fn rounds(g: &ColoredGraph, r: u32, s: &dyn SplitterStrategy) -> usize {
        play_game(g, r, s, &ConnectorStrategy::MaxDegree).rounds
    }

    #[test]
    fn edgeless_graph_needs_one_round() {
        // λ = 1 characterizes edgeless graphs (the induction base of
        // Prop 4.2): the ball is {c}, splitter deletes it... but the game as
        // defined continues on the rest? No: the arena becomes N_r(c)\{s} =
        // ∅ immediately only if the graph is a single vertex. On an edgeless
        // graph with many vertices each round kills one isolated ball.
        let g = generators::path(1);
        assert_eq!(rounds(&g, 2, &TakeCenter), 1);
    }

    #[test]
    fn star_two_rounds_with_center() {
        let g = generators::star(50);
        // Round 1: connector picks anywhere; ball contains hub; splitter
        // deletes the hub (max degree), leaving isolated leaves; round 2
        // kills the remaining ball (a single leaf... the arena is the ball
        // minus s, so leaves outside the first ball vanish too).
        assert!(rounds(&g, 2, &MaxDegree) <= 3);
    }

    #[test]
    fn paths_few_rounds() {
        let g = generators::path(200);
        let r = rounds(&g, 2, &BallCenter);
        assert!(r <= 4, "path should fall in ≤4 rounds, took {r}");
    }

    #[test]
    fn trees_bounded_rounds() {
        for seed in 0..3 {
            let g = generators::random_tree(150, seed);
            let r = rounds(&g, 2, &BallCenter);
            assert!(r <= 8, "tree seed {seed} took {r} rounds");
        }
    }

    #[test]
    fn grid_bounded_rounds() {
        let g = generators::grid(15, 15);
        let r = rounds(&g, 1, &BallCenter);
        assert!(r <= 8, "grid took {r} rounds at radius 1");
    }

    #[test]
    fn arena_strictly_shrinks() {
        let g = generators::grid(8, 8);
        let res = play_game(&g, 2, &BallCenter, &ConnectorStrategy::First);
        let mut prev = g.n();
        for &s in &res.arena_sizes {
            assert!(s < prev, "arena must strictly shrink");
            prev = s;
        }
        assert_eq!(*res.arena_sizes.last().unwrap(), 0);
    }

    #[test]
    fn sampled_adversary_runs() {
        let g = generators::random_tree(100, 7);
        let res = play_game(
            &g,
            2,
            &BallCenter,
            &ConnectorStrategy::SampledAdversary {
                samples: 8,
                seed: 1,
            },
        );
        assert!(res.rounds >= 1);
    }

    #[test]
    fn splitter_move_is_in_bag() {
        let g = generators::grid(10, 10);
        let all: Vec<Vertex> = g.vertices().collect();
        let arena = InducedSubgraph::new_uncolored(&g, &all);
        let s = splitter_move(&arena, 55, 2);
        assert!((s as usize) < arena.n());
    }
}
