//! Game-level properties of the splitter machinery across strategies and
//! connector behaviours.

use nd_graph::{generators, ColoredGraph};
use nd_splitter::{
    play_game, BallCenter, ConnectorStrategy, GameResult, MaxDegree, SplitterStrategy, TakeCenter,
};

fn all_strategies() -> [&'static dyn SplitterStrategy; 3] {
    [&BallCenter, &MaxDegree, &TakeCenter]
}

fn all_connectors() -> [ConnectorStrategy; 3] {
    [
        ConnectorStrategy::First,
        ConnectorStrategy::MaxDegree,
        ConnectorStrategy::SampledAdversary {
            samples: 4,
            seed: 9,
        },
    ]
}

fn check_game_invariants(g: &ColoredGraph, res: &GameResult) {
    // The game always terminates with an empty arena and strictly
    // decreasing sizes.
    assert_eq!(res.rounds, res.arena_sizes.len());
    assert_eq!(
        res.arena_sizes.last().copied(),
        Some(0).filter(|_| res.rounds > 0)
    );
    let mut prev = g.n();
    for &s in &res.arena_sizes {
        assert!(
            s < prev,
            "arena must strictly shrink: {:?}",
            res.arena_sizes
        );
        prev = s;
    }
}

#[test]
fn every_strategy_pair_terminates() {
    for g in [
        generators::path(40),
        generators::star(25),
        generators::grid(7, 7),
        generators::random_tree(50, 2),
        generators::clique(12),
        generators::gnm(30, 80, 4),
        generators::path(1),
    ] {
        for s in all_strategies() {
            for c in all_connectors() {
                let res = play_game(&g, 2, s, &c);
                check_game_invariants(&g, &res);
                assert!(res.rounds <= g.n().max(1), "{} too many rounds", s.name());
            }
        }
    }
}

#[test]
fn radius_one_is_easier_than_radius_three() {
    // Larger radii give Connector bigger arenas, so Splitter needs at
    // least as many rounds (on these monotone families).
    let g = generators::grid(12, 12);
    let r1 = play_game(&g, 1, &BallCenter, &ConnectorStrategy::MaxDegree).rounds;
    let r3 = play_game(&g, 3, &BallCenter, &ConnectorStrategy::MaxDegree).rounds;
    assert!(
        r1 <= r3 + 1,
        "radius monotonicity wildly violated: {r1} vs {r3}"
    );
}

#[test]
fn clique_needs_n_rounds() {
    // On a clique every ball is the whole arena, and one vertex dies per
    // round — the signature of somewhere-denseness (Thm 4.6).
    let g = generators::clique(15);
    for s in all_strategies() {
        let res = play_game(&g, 1, s, &ConnectorStrategy::First);
        assert_eq!(res.rounds, 15, "{}", s.name());
    }
}

#[test]
fn deep_tree_beats_take_center() {
    // On a long path TakeCenter (deleting the connector's vertex) is a
    // poor strategy compared to BallCenter; both must still terminate.
    let g = generators::path(300);
    let bc = play_game(&g, 2, &BallCenter, &ConnectorStrategy::First).rounds;
    let tc = play_game(&g, 2, &TakeCenter, &ConnectorStrategy::First).rounds;
    assert!(
        bc <= tc,
        "ball-center ({bc}) should not lose to take-center ({tc})"
    );
}

#[test]
fn scale_free_hubs_favor_max_degree() {
    let g = generators::barabasi_albert(400, 3, 5);
    let md = play_game(&g, 1, &MaxDegree, &ConnectorStrategy::MaxDegree);
    check_game_invariants(&g, &md);
    // Deleting hubs should dismantle a BA graph in few rounds at r = 1.
    assert!(md.rounds <= 30, "max-degree took {} rounds", md.rounds);
}
