//! E10 — the relational reduction (Lemma 2.2): building `A'(D)` is linear
//! in the database size; rewriting is linear in the query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_graph::relational::{adjacency_graph, RelationalDb};
use nd_logic::parse_query;
use nd_logic::relational::rewrite_to_graph;

fn make_db(n: usize) -> RelationalDb {
    let mut db = RelationalDb::new(n);
    let mut tuples = Vec::new();
    for p in 1..n as u32 {
        tuples.push(vec![p, p / 2]);
        tuples.push(vec![p, (p.wrapping_mul(7) + 1) % p]);
    }
    db.add_relation("R", 2, tuples);
    db.add_relation(
        "S",
        1,
        (0..n as u32)
            .filter(|p| p % 3 == 0)
            .map(|p| vec![p])
            .collect(),
    );
    db
}

fn bench_adjacency_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational/adjacency_graph");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [2_000usize, 8_000, 32_000] {
        let db = make_db(n);
        group.throughput(Throughput::Elements(db.size() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &db, |b, db| {
            b.iter(|| adjacency_graph(db))
        });
    }
    group.finish();
}

fn bench_rewrite(c: &mut Criterion) {
    let mut group = c.benchmark_group("relational/rewrite");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let db = make_db(2_000);
    let (_, mapping) = adjacency_graph(&db);
    for src in [
        "R(x, y)",
        "R(x, y) && S(y)",
        "exists z. (R(x, z) && R(z, y))",
    ] {
        let q = parse_query(src).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(src), &q, |b, q| {
            b.iter(|| rewrite_to_graph(q, &mapping))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adjacency_graph, bench_rewrite);
criterion_main!(benches);
