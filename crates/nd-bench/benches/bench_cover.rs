//! E2 — neighborhood covers (Thm 4.4): pseudo-linear construction, constant
//! -time bag successor queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_bench::{GraphFamily, SPARSE_FAMILIES};
use nd_cover::Cover;

fn bench_cover_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &f in SPARSE_FAMILIES {
        for n in [4_000usize, 16_000, 64_000] {
            let g = f.build(n, 1);
            group.throughput(Throughput::Elements(g.n() as u64));
            group.bench_with_input(BenchmarkId::new(f.name(), g.n()), &g, |b, g| {
                b.iter(|| Cover::build(g, 2, 0.5))
            });
        }
    }
    group.finish();
}

fn bench_cover_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/radius");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let g = GraphFamily::Grid.build(16_000, 1);
    for r in [1u32, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| Cover::build(&g, r, 0.5))
        });
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/successor_in_bag");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [4_000usize, 64_000] {
        let g = GraphFamily::BoundedDegree4.build(n, 2);
        let cover = Cover::build(&g, 2, 0.5);
        let probes = nd_bench::random_vertices(g.n(), 1_024, 3);
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for &v in &probes {
                    std::hint::black_box(cover.successor_in_bag(cover.bag_of(v), v));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cover_build,
    bench_cover_radius,
    bench_membership
);
criterion_main!(benches);
