//! E5 — Theorem 2.3: `next_solution` flat in `n`; preprocessing pseudo-
//! linear.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_bench::{mix, GraphFamily, SPARSE_FAMILIES};
use nd_core::{PrepareOpts, PreparedQuery};
use nd_logic::parse_query;

fn bench_next_solution_flat(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_solution/query");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let q2 = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    let q3 = parse_query("q(x,y,z) := dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)").unwrap();
    for &f in SPARSE_FAMILIES {
        for n in [4_000usize, 16_000, 64_000] {
            let g = f.build_colored(n, 4);
            for (k, q) in [(2usize, &q2), (3, &q3)] {
                let pq = PreparedQuery::prepare(&g, q, &PrepareOpts::default()).unwrap();
                let probes: Vec<Vec<u32>> = (0..256u64)
                    .map(|i| {
                        (0..k)
                            .map(|c| (mix(i * k as u64 + c as u64, 17) % g.n() as u64) as u32)
                            .collect()
                    })
                    .collect();
                group.throughput(Throughput::Elements(probes.len() as u64));
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/k{k}", f.name()), g.n()),
                    &pq,
                    |b, pq| {
                        b.iter(|| {
                            for p in &probes {
                                std::hint::black_box(pq.next_solution(p));
                            }
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

fn bench_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("next_solution/prepare");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    for n in [4_000usize, 16_000, 64_000] {
        let g = GraphFamily::Grid.build_colored(n, 4);
        group.throughput(Throughput::Elements(g.n() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| PreparedQuery::prepare(g, &q, &PrepareOpts::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_next_solution_flat, bench_preparation);
criterion_main!(benches);
