//! E7 + A1 — Corollary 2.5: constant-delay enumeration vs the streaming
//! naive baseline, and the extendability-pruning ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_baseline::NaiveEnumerator;
use nd_bench::{GraphFamily, SPARSE_FAMILIES};
use nd_core::{PrepareOpts, PreparedQuery};
use nd_logic::parse_query;

const LIMIT: usize = 5_000;

fn bench_indexed_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate/indexed");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    for &f in SPARSE_FAMILIES {
        for n in [4_000usize, 16_000, 64_000] {
            let g = f.build_colored(n, 6);
            let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
            group.throughput(Throughput::Elements(LIMIT as u64));
            group.bench_with_input(BenchmarkId::new(f.name(), g.n()), &pq, |b, pq| {
                b.iter(|| {
                    let mut count = 0usize;
                    for sol in pq.enumerate().take(LIMIT) {
                        count += sol.len();
                    }
                    std::hint::black_box(count)
                })
            });
        }
    }
    group.finish();
}

fn bench_naive_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate/naive");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    for n in [4_000usize, 16_000] {
        let g = GraphFamily::Grid.build_colored(n, 6);
        group.throughput(Throughput::Elements(LIMIT as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut count = 0usize;
                for sol in NaiveEnumerator::new(g, q.clone()).take(LIMIT) {
                    count += sol.len();
                }
                std::hint::black_box(count)
            })
        });
    }
    group.finish();
}

fn bench_ablation_extendability(c: &mut Criterion) {
    // A1: rare solutions make unextendable prefixes common.
    let mut group = c.benchmark_group("enumerate/ablation_extend");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let mut g = GraphFamily::Grid.build(16_000, 9);
    let rare: Vec<u32> = (0..g.n() as u32).filter(|v| v % 301 == 7).collect();
    g.add_color(rare, Some("Blue".into()));
    let q = parse_query("Blue(x) && dist(x,y) > 4 && Blue(y) && dist(y,z) > 4 && Blue(z)").unwrap();
    let epsilon = nd_core::Epsilon::try_new(0.5).expect("valid accuracy");
    for check in [true, false] {
        let opts = PrepareOpts {
            epsilon: epsilon.get(),
            extendability_check: check,
            ..PrepareOpts::default()
        };
        let pq = PreparedQuery::prepare(&g, &q, &opts).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(check), &pq, |b, pq| {
            b.iter(|| std::hint::black_box(pq.enumerate().take(2_000).count()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_indexed_enumeration,
    bench_naive_enumeration,
    bench_ablation_extendability
);
criterion_main!(benches);
