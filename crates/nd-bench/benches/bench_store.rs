//! E1 / Figure 1 — the Storing Theorem (Thm 3.1).
//!
//! Claims benchmarked: constant-time lookup (flat across `n`), `O(n^ε)`
//! updates, `O(|Dom|·n^ε)` initialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_bench::mix;
use nd_store::{FnStore, StoreParams};
use std::hint::black_box;

fn keys(n: u64, k: usize, count: usize, seed: u64) -> Vec<Vec<u64>> {
    (0..count as u64)
        .map(|i| {
            (0..k)
                .map(|c| mix(i * k as u64 + c as u64, seed) % n)
                .collect()
        })
        .collect()
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/lookup");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for log_n in [12u32, 16, 20] {
        let n = 1u64 << log_n;
        let dom = keys(n, 2, 8_192, 3);
        let store = FnStore::from_pairs(
            StoreParams::new(n, 2, 0.25),
            dom.iter().map(|k| (k.as_slice(), 1u64)),
        );
        let probes = keys(n, 2, 1_024, 5);
        group.throughput(Throughput::Elements(probes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for p in &probes {
                    black_box(store.lookup(black_box(p)));
                }
            })
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/update");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for log_n in [12u32, 16, 20] {
        let n = 1u64 << log_n;
        let base = keys(n, 1, 4_096, 7);
        let extra = keys(n, 1, 512, 9);
        group.throughput(Throughput::Elements((extra.len() * 2) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || {
                    FnStore::from_pairs(
                        StoreParams::new(n, 1, 0.25),
                        base.iter().map(|k| (k.as_slice(), 1u64)),
                    )
                },
                |mut store| {
                    for k in &extra {
                        store.insert(k, 2);
                    }
                    for k in &extra {
                        store.remove(k);
                    }
                    store
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/init");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for dom_size in [1_000usize, 10_000, 100_000] {
        let n = 1u64 << 20;
        let dom = keys(n, 2, dom_size, 11);
        group.throughput(Throughput::Elements(dom_size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(dom_size), &dom_size, |b, _| {
            b.iter(|| {
                FnStore::from_pairs(
                    StoreParams::new(n, 2, 0.25),
                    dom.iter().map(|k| (k.as_slice(), 1u64)),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_insert_remove, bench_init);
criterion_main!(benches);
