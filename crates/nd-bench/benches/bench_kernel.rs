//! E9 — kernels (Lemma 5.7): `K_p(X)` in `O(p · ‖G[X]‖)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_bench::SPARSE_FAMILIES;
use nd_cover::{Cover, KernelIndex};

fn bench_kernel_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/index");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &f in SPARSE_FAMILIES {
        let g = f.build(16_000, 8);
        let cover = Cover::build(&g, 4, 0.5);
        for p in [1u32, 2, 4] {
            group.throughput(Throughput::Elements(cover.total_bag_size() as u64));
            group.bench_with_input(BenchmarkId::new(f.name(), p), &p, |b, &p| {
                b.iter(|| KernelIndex::build(&g, &cover, p))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernel_index);
criterion_main!(benches);
