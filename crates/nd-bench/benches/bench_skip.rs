//! E8 — skip pointers (Lemma 5.8): constant-time `SKIP` queries; build cost
//! `O(n · δ^k)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_bench::{random_vertices, GraphFamily, SPARSE_FAMILIES};
use nd_core::SkipPointers;
use nd_cover::{Cover, KernelIndex};

fn bench_skip_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("skip/query");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &f in SPARSE_FAMILIES {
        for n in [4_000usize, 16_000, 64_000] {
            let g = f.build(n, 7);
            let r = 2;
            let cover = Cover::build(&g, 2 * r, 0.5);
            let kernels = KernelIndex::build(&g, &cover, r);
            let list: Vec<u32> = (0..g.n() as u32).filter(|v| v % 3 == 0).collect();
            let sp = SkipPointers::build_with_cap(g.n(), &kernels, list, 2, 64 * g.n());
            let bs = random_vertices(g.n(), 512, 21);
            let anchors = random_vertices(g.n(), 1_024, 22);
            group.throughput(Throughput::Elements(bs.len() as u64));
            group.bench_with_input(BenchmarkId::new(f.name(), g.n()), &sp, |b, sp| {
                b.iter(|| {
                    for (i, &probe) in bs.iter().enumerate() {
                        let bags = [
                            cover.bag_of(anchors[2 * i]),
                            cover.bag_of(anchors[2 * i + 1]),
                        ];
                        std::hint::black_box(sp.skip(&kernels, probe, &bags));
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_skip_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("skip/build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [4_000usize, 16_000, 64_000] {
        let g = GraphFamily::Grid.build(n, 7);
        let cover = Cover::build(&g, 4, 0.5);
        let kernels = KernelIndex::build(&g, &cover, 2);
        let list: Vec<u32> = (0..g.n() as u32).collect();
        group.throughput(Throughput::Elements(g.n() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| SkipPointers::build_with_cap(g.n(), &kernels, list.clone(), 2, 64 * g.n()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skip_query, bench_skip_build);
criterion_main!(benches);
