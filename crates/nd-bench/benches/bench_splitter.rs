//! E3 — the splitter game (Thm 4.6): cost of playing the game to
//! completion and of single splitter moves (Remark 4.7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nd_bench::{GraphFamily, SPARSE_FAMILIES};
use nd_graph::{InducedSubgraph, Vertex};
use nd_splitter::{play_game, splitter_move, BallCenter, ConnectorStrategy};

fn bench_full_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitter/full_game");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &f in SPARSE_FAMILIES {
        let g = f.build(4_000, 3);
        group.bench_with_input(BenchmarkId::from_parameter(f.name()), &g, |b, g| {
            b.iter(|| play_game(g, 2, &BallCenter, &ConnectorStrategy::MaxDegree))
        });
    }
    group.finish();
}

fn bench_single_move(c: &mut Criterion) {
    // Remark 4.7: a splitter move must cost O(‖N_r(c)‖), i.e. be flat in
    // the total graph size for fixed ball sizes.
    let mut group = c.benchmark_group("splitter/single_move");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [4_000usize, 16_000, 64_000] {
        let g = GraphFamily::Grid.build(n, 1);
        let center = (g.n() / 2) as Vertex;
        let ball = nd_graph::bfs::ball(&g, center, 4);
        let sub = InducedSubgraph::new_uncolored(&g, &ball);
        let local = sub.to_local(center).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| splitter_move(&sub, local, 4))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_full_game, bench_single_move);
criterion_main!(benches);
