//! E4 + A2 — the distance oracle (Prop 4.2): constant-time tests vs the BFS
//! baseline, preprocessing scaling, and the splitter-recursion ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_baseline::BfsDistanceBaseline;
use nd_bench::{random_vertices, GraphFamily, SPARSE_FAMILIES};
use nd_core::dist::{DistOracle, DistOracleOpts};

fn bench_test_flatness(c: &mut Criterion) {
    // The headline claim: test time flat in n.
    let mut group = c.benchmark_group("dist/test");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for &f in SPARSE_FAMILIES {
        for n in [4_000usize, 16_000, 64_000] {
            let g = f.build(n, 2);
            let oracle = DistOracle::build(&g, 4, &DistOracleOpts::default());
            let a = random_vertices(g.n(), 1_024, 7);
            let b = random_vertices(g.n(), 1_024, 8);
            group.throughput(Throughput::Elements(a.len() as u64));
            group.bench_with_input(BenchmarkId::new(f.name(), g.n()), &g, |bch, _| {
                bch.iter(|| {
                    for i in 0..a.len() {
                        std::hint::black_box(oracle.test(a[i], b[i]));
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_bfs_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist/bfs_baseline");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [4_000usize, 16_000, 64_000] {
        let g = GraphFamily::Grid.build(n, 2);
        let a = random_vertices(g.n(), 256, 7);
        let b = random_vertices(g.n(), 256, 8);
        group.throughput(Throughput::Elements(a.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |bch, g| {
            let mut bfs = BfsDistanceBaseline::new(g);
            bch.iter(|| {
                for i in 0..a.len() {
                    std::hint::black_box(bfs.test(a[i], b[i], 4));
                }
            })
        });
    }
    group.finish();
}

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist/preprocess");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for n in [4_000usize, 16_000, 64_000] {
        // Grid: the locally-sparse regime the pseudo-linearity claim is
        // about (the expander family's radius-8 balls make preprocessing a
        // different, ball-size-bound story — see E4 in EXPERIMENTS.md).
        let g = GraphFamily::Grid.build(n, 3);
        group.throughput(Throughput::Elements(g.n() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| DistOracle::build(g, 4, &DistOracleOpts::default()))
        });
    }
    group.finish();
}

fn bench_ablation_splitter(c: &mut Criterion) {
    // A2: recursion (splitter) vs flat naive per-vertex balls.
    let mut group = c.benchmark_group("dist/ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let g = GraphFamily::Grid.build(16_000, 4);
    for (name, opts) in [
        ("recursive", DistOracleOpts::default()),
        (
            "flat",
            DistOracleOpts {
                max_rounds: 0,
                ..DistOracleOpts::default()
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, opts| {
            b.iter(|| DistOracle::build(&g, 6, opts))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_test_flatness,
    bench_bfs_baseline,
    bench_preprocessing,
    bench_ablation_splitter
);
criterion_main!(benches);
