//! E6 — Corollary 2.4: constant-time testing vs naive per-tuple evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nd_baseline::NaiveTester;
use nd_bench::{random_vertices, GraphFamily, SPARSE_FAMILIES};
use nd_core::{PrepareOpts, PreparedQuery};
use nd_logic::parse_query;

fn bench_indexed_testing(c: &mut Criterion) {
    let mut group = c.benchmark_group("testing/indexed");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    for &f in SPARSE_FAMILIES {
        for n in [4_000usize, 16_000, 64_000] {
            let g = f.build_colored(n, 5);
            let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
            let a = random_vertices(g.n(), 1_024, 3);
            let b = random_vertices(g.n(), 1_024, 4);
            group.throughput(Throughput::Elements(a.len() as u64));
            group.bench_with_input(BenchmarkId::new(f.name(), g.n()), &pq, |bch, pq| {
                bch.iter(|| {
                    for i in 0..a.len() {
                        std::hint::black_box(pq.test(&[a[i], b[i]]));
                    }
                })
            });
        }
    }
    group.finish();
}

fn bench_naive_testing(c: &mut Criterion) {
    let mut group = c.benchmark_group("testing/naive");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    for n in [4_000usize, 16_000] {
        let g = GraphFamily::Grid.build_colored(n, 5);
        let tester = NaiveTester::new(&g, q.clone());
        let a = random_vertices(g.n(), 64, 3);
        let b = random_vertices(g.n(), 64, 4);
        group.throughput(Throughput::Elements(a.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tester, |bch, tester| {
            bch.iter(|| {
                for i in 0..a.len() {
                    std::hint::black_box(tester.test(&[a[i], b[i]]));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indexed_testing, bench_naive_testing);
criterion_main!(benches);
