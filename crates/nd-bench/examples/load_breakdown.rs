//! Stage-by-stage breakdown of warm index load time, for tuning the
//! persistence hot path behind experiment A8.
//!
//! ```text
//! cargo run --release -p nd-bench --example load_breakdown
//! ```
//!
//! Set `LB_QUERY` to time a different fixture query.

use nd_bench::*;
use nd_core::{PrepareOpts, SharedPreparedQuery};
use nd_graph::graph::ColoredGraph;
use nd_logic::parse_query;

const E5_QUERY: &str = "dist(x,y) > 2 && Blue(y)";
use std::time::Instant;

fn main() {
    let query_src = std::env::var("LB_QUERY").unwrap_or_else(|_| E5_QUERY.to_string());
    let q = parse_query(&query_src).expect("fixture query parses");
    for (f, n) in [
        (GraphFamily::Grid, 2_000usize),
        (GraphFamily::BoundedDegree4, 2_000),
        (GraphFamily::DenseGnm, 800),
        (GraphFamily::DenseGnm, 1_600),
        (GraphFamily::DenseGnm, 2_400),
        (GraphFamily::DenseGnm, 3_200),
    ] {
        let g = f.build_colored(n, 16).into_shared();
        let t = Instant::now();
        let pq = SharedPreparedQuery::prepare(g, &q, &PrepareOpts::default())
            .expect("fixture prepare succeeds");
        let t_cold = t.elapsed();
        let bytes = pq
            .save_index_bytes(&q, &query_src)
            .expect("fixture save succeeds");

        let t = Instant::now();
        let c = nd_persist::parse_container(&bytes).expect("container parses");
        let t_container = t.elapsed();

        let t = Instant::now();
        let graph_payload = c.section(*b"GRPH").expect("graph section");
        let mut r = nd_persist::Reader::new(graph_payload);
        let decoded = ColoredGraph::read_from(&mut r).expect("graph decodes");
        let t_graph = t.elapsed();
        assert!(decoded.n() > 0);

        let t = Instant::now();
        let loaded = SharedPreparedQuery::load_index_bytes(&bytes).expect("index loads");
        let t_total = t.elapsed();
        assert_eq!(loaded.query, q);

        let engine_payload = c.section(*b"ENGN").expect("engine section");
        println!(
            "{:>6} n={n}: cold {:>8} | warm total {:>8} | container crc {:>8} | graph {:>8} ({} B) | engine+rest {:>8} ({} B) | file {} B",
            f.name(),
            fmt_dur(t_cold),
            fmt_dur(t_total),
            fmt_dur(t_container),
            fmt_dur(t_graph),
            graph_payload.len(),
            fmt_dur(t_total.saturating_sub(t_container).saturating_sub(t_graph)),
            engine_payload.len(),
            bytes.len(),
        );
    }
}
