//! Shared workloads and measurement utilities for the experiment harness
//! (`src/bin/experiments.rs`) and the criterion benches (`benches/`).
//!
//! Every experiment in EXPERIMENTS.md draws its graphs from
//! [`GraphFamily`], so the harness and the benches measure identical
//! workloads.

use nd_graph::{generators, ColoredGraph, Vertex};
use std::time::{Duration, Instant};

/// Graph families standing in for nowhere dense classes (plus dense
/// contrast families, marked `sparse() == false`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFamily {
    /// `√n × √n` grid — planar.
    Grid,
    /// Uniform random attachment tree.
    RandomTree,
    /// Random graph of maximum degree 4.
    BoundedDegree4,
    /// Grid with `n/20` random short chords — near-planar.
    PerturbedGrid,
    /// Scale-free preferential attachment (sparse with hubs).
    ScaleFree,
    /// Dense contrast: `G(n, m)` with `m = n^{1.5}/2`.
    DenseGnm,
    /// Dense contrast: the complete graph (tiny sizes only).
    Clique,
}

pub const SPARSE_FAMILIES: &[GraphFamily] = &[
    GraphFamily::Grid,
    GraphFamily::RandomTree,
    GraphFamily::BoundedDegree4,
    GraphFamily::PerturbedGrid,
];

pub const ALL_FAMILIES: &[GraphFamily] = &[
    GraphFamily::Grid,
    GraphFamily::RandomTree,
    GraphFamily::BoundedDegree4,
    GraphFamily::PerturbedGrid,
    GraphFamily::ScaleFree,
    GraphFamily::DenseGnm,
    GraphFamily::Clique,
];

impl GraphFamily {
    pub fn name(self) -> &'static str {
        match self {
            GraphFamily::Grid => "grid",
            GraphFamily::RandomTree => "tree",
            GraphFamily::BoundedDegree4 => "bdeg4",
            GraphFamily::PerturbedGrid => "pgrid",
            GraphFamily::ScaleFree => "ba3",
            GraphFamily::DenseGnm => "gnm1.5",
            GraphFamily::Clique => "clique",
        }
    }

    /// Is this family a nowhere-dense stand-in (vs. a dense contrast)?
    pub fn sparse(self) -> bool {
        !matches!(
            self,
            GraphFamily::DenseGnm | GraphFamily::Clique | GraphFamily::ScaleFree
        )
    }

    /// Build an instance with ~`n` vertices.
    pub fn build(self, n: usize, seed: u64) -> ColoredGraph {
        match self {
            GraphFamily::Grid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                generators::grid(side, side)
            }
            GraphFamily::RandomTree => generators::random_tree(n, seed),
            GraphFamily::BoundedDegree4 => generators::bounded_degree(n, 4, seed),
            GraphFamily::PerturbedGrid => {
                let side = (n as f64).sqrt().round().max(1.0) as usize;
                generators::perturbed_grid(side, side, n / 20, seed)
            }
            GraphFamily::ScaleFree => generators::barabasi_albert(n, 3, seed),
            GraphFamily::DenseGnm => {
                let m = ((n as f64).powf(1.5) / 2.0) as usize;
                generators::gnm(n, m, seed)
            }
            GraphFamily::Clique => generators::clique(n.min(300)),
        }
    }

    /// Build and attach the standard Blue (1/3) and Red (1/5) colors.
    pub fn build_colored(self, n: usize, seed: u64) -> ColoredGraph {
        standard_colors(self.build(n, seed), seed)
    }
}

/// Attach deterministic pseudo-random Blue (≈1/3) and Red (≈1/5) colors.
pub fn standard_colors(mut g: ColoredGraph, seed: u64) -> ColoredGraph {
    let n = g.n() as Vertex;
    let blue: Vec<Vertex> = (0..n)
        .filter(|v| mix(*v as u64, seed).is_multiple_of(3))
        .collect();
    let red: Vec<Vertex> = (0..n)
        .filter(|v| mix(*v as u64, seed ^ 0xdead) % 5 == 1)
        .collect();
    g.add_color(blue, Some("Blue".into()));
    g.add_color(red, Some("Red".into()));
    g
}

/// splitmix64-style deterministic hash for workload generation.
pub fn mix(v: u64, seed: u64) -> u64 {
    let mut z = v.wrapping_add(seed).wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Deterministic pseudo-random vertex stream.
pub fn random_vertices(n: usize, count: usize, seed: u64) -> Vec<Vertex> {
    (0..count as u64)
        .map(|i| (mix(i, seed) % n.max(1) as u64) as Vertex)
        .collect()
}

/// Wall-clock one closure.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Delay statistics of a streamed enumeration.
#[derive(Clone, Copy, Debug, Default)]
pub struct DelayStats {
    pub outputs: usize,
    pub total: Duration,
    pub max_delay: Duration,
    pub mean_delay_ns: f64,
}

/// Drain up to `limit` items from an iterator, recording inter-output
/// delays.
pub fn measure_delays<I: Iterator>(iter: I, limit: usize) -> DelayStats {
    let t_start = Instant::now();
    let mut last = t_start;
    let mut max_delay = Duration::ZERO;
    let mut outputs = 0usize;
    for _ in iter.take(limit) {
        let now = Instant::now();
        max_delay = max_delay.max(now - last);
        last = now;
        outputs += 1;
    }
    let total = t_start.elapsed();
    DelayStats {
        outputs,
        total,
        max_delay,
        mean_delay_ns: if outputs > 0 {
            total.as_nanos() as f64 / outputs as f64
        } else {
            0.0
        },
    }
}

/// Fixed-width table printing for the experiment harness.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    pub fn new(headers: &[&str], widths: &[usize]) -> Table {
        assert_eq!(headers.len(), widths.len());
        let t = Table {
            widths: widths.to_vec(),
        };
        t.row(headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        t
    }

    pub fn row<S: AsRef<str>>(&self, cells: &[S]) {
        let line: Vec<String> = cells
            .iter()
            .zip(&self.widths)
            .map(|(c, w)| format!("{:>w$}", c.as_ref(), w = w))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Machine-readable result emission for the experiment harness. When the
/// harness runs with `--json`, experiments mirror their table rows as
/// `@json {"experiment":...}` lines built with the workspace's serde-free
/// writer ([`nd_graph::json`]), so scripts scrape results by grepping
/// `^@json ` instead of parsing fixed-width tables.
pub fn emit_json(
    enabled: bool,
    experiment: &str,
    build: impl FnOnce(&mut nd_graph::json::JsonObject),
) {
    if !enabled {
        return;
    }
    let mut o = nd_graph::json::JsonObject::new();
    o.field_str("experiment", experiment);
    build(&mut o);
    println!("@json {}", o.finish());
}

/// Human-readable duration.
pub fn fmt_dur(d: Duration) -> String {
    if d.as_secs() >= 1 {
        format!("{:.2}s", d.as_secs_f64())
    } else if d.as_millis() >= 1 {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_build() {
        for f in ALL_FAMILIES {
            let g = f.build_colored(100, 1);
            assert!(g.n() > 0, "{}", f.name());
            assert_eq!(g.num_colors(), 2);
        }
    }

    #[test]
    fn deterministic_workloads() {
        assert_eq!(random_vertices(50, 5, 3), random_vertices(50, 5, 3));
        assert_ne!(random_vertices(50, 5, 3), random_vertices(50, 5, 4));
    }

    #[test]
    fn delay_measurement() {
        let s = measure_delays(0..100, 50);
        assert_eq!(s.outputs, 50);
        assert!(s.total >= s.max_delay);
    }
}
