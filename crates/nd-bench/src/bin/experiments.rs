//! The experiment harness: one sub-command per claim of the paper
//! (DESIGN.md §6, results recorded in EXPERIMENTS.md).
//!
//! ```sh
//! cargo run --release -p nd-bench --bin experiments            # all
//! cargo run --release -p nd-bench --bin experiments -- e1 e4   # subset
//! cargo run --release -p nd-bench --bin experiments -- --quick # smaller sweeps
//! cargo run --release -p nd-bench --bin experiments -- --json  # + @json lines
//! cargo run --release -p nd-bench --bin experiments -- a7 --smoke --json
//! cargo run --release -p nd-bench --bin experiments -- a8 --smoke   # warm restart
//! ```
//!
//! `--smoke` is an alias for `--quick` (CI-sized sweeps).

use nd_baseline::{BfsDistanceBaseline, NaiveEnumerator, NaiveTester};
use nd_bench::*;
use nd_core::dist::{DistOracle, DistOracleOpts};
use nd_core::{PrepareOpts, PreparedQuery, SkipPointers};
use nd_cover::{Cover, KernelIndex};
use nd_graph::stats::{degeneracy_ordering, max_weak_accessibility};
use nd_logic::parse_query;
use nd_splitter::{
    play_game, BallCenter, ConnectorStrategy, MaxDegree, SplitterStrategy, TakeCenter,
};
use nd_store::{FnStore, Lookup, StoreParams};
use std::time::Instant;

struct Config {
    quick: bool,
    /// Mirror table rows as `@json` lines (see [`nd_bench::emit_json`]).
    json: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let cfg = Config { quick, json };
    let all = selected.is_empty();
    let want = |name: &str| all || selected.iter().any(|s| s == name);

    println!("== nowhere-dense experiment harness ==");
    println!(
        "(mode: {}; see EXPERIMENTS.md for the claim each table validates)\n",
        if quick { "quick" } else { "full" }
    );

    if want("e1") {
        e1_storing(&cfg);
    }
    if want("e2") {
        e2_cover(&cfg);
    }
    if want("e3") {
        e3_splitter(&cfg);
    }
    if want("e4") {
        e4_dist_oracle(&cfg);
    }
    if want("e5") {
        e5_next_solution(&cfg);
    }
    if want("e6") {
        e6_testing(&cfg);
    }
    if want("e7") {
        e7_enumeration(&cfg);
    }
    if want("e8") {
        e8_skip(&cfg);
    }
    if want("e9") {
        e9_kernel(&cfg);
    }
    if want("e10") {
        e10_relational(&cfg);
    }
    if want("e11") {
        e11_dynamic(&cfg);
    }
    if want("a1") {
        a1_ablation_extend(&cfg);
    }
    if want("a2") {
        a2_ablation_splitter(&cfg);
    }
    if want("a3") {
        a3_sparse_vs_dense(&cfg);
    }
    if want("a4") {
        a4_budget_ladder(&cfg);
    }
    if want("a5") {
        a5_serving(&cfg);
    }
    if want("a6") {
        a6_conform(&cfg);
    }
    // A7 and A8 share one results document (`BENCH_prepare.json`):
    // whichever subset runs writes the sections it produced.
    let a7_doc = want("a7").then(|| a7_prepare(&cfg));
    let a8_doc = want("a8").then(|| a8_warm_start(&cfg));
    if a7_doc.is_some() || a8_doc.is_some() {
        write_bench_prepare(&cfg, a7_doc, a8_doc);
    }
}

/// Thread counts swept by A7; also decides `parallelism_limited` in the
/// written report.
const A7_THREADS: [usize; 3] = [1, 2, 4];

/// E1 — Storing Theorem (Thm 3.1): init ~ |Dom|·n^ε, lookup flat in n.
fn e1_storing(cfg: &Config) {
    println!("\n[E1] Storing Theorem (Thm 3.1): trie init/lookup/space vs n");
    let t = Table::new(
        &["k", "eps", "n", "|Dom|", "init", "ns/lookup", "regs/|Dom|"],
        &[3, 5, 9, 8, 9, 10, 10],
    );
    let tops: &[u32] = if cfg.quick {
        &[14, 18]
    } else {
        &[12, 14, 16, 18, 20]
    };
    for &k in &[1usize, 2] {
        for &log_n in tops {
            let n = 1u64 << log_n;
            let dom = (n / 4).min(1 << 16) as usize;
            let params = StoreParams::new(n, k, 0.25);
            let keys: Vec<Vec<u64>> = (0..dom as u64)
                .map(|i| {
                    (0..k)
                        .map(|c| mix(i * k as u64 + c as u64, 7) % n)
                        .collect()
                })
                .collect();
            let (store, init) = time_it(|| {
                let mut s = FnStore::new(params);
                for key in &keys {
                    s.insert(key, 1);
                }
                s
            });
            let probes: Vec<Vec<u64>> = (0..20_000u64)
                .map(|i| (0..k).map(|c| mix(i * 31 + c as u64, 9) % n).collect())
                .collect();
            let t0 = Instant::now();
            let mut found = 0usize;
            for p in &probes {
                if matches!(store.lookup(p), Lookup::Found(_)) {
                    found += 1;
                }
            }
            let per = t0.elapsed().as_nanos() as f64 / probes.len() as f64;
            std::hint::black_box(found);
            t.row(&[
                format!("{k}"),
                "0.25".into(),
                format!("{n}"),
                format!("{}", store.len()),
                fmt_dur(init),
                format!("{per:.0}"),
                format!(
                    "{:.1}",
                    store.registers() as f64 / store.len().max(1) as f64
                ),
            ]);
        }
    }
}

/// E2 — Neighborhood covers (Thm 4.4): pseudo-linear time, low degree on
/// sparse families, degradation on dense ones.
fn e2_cover(cfg: &Config) {
    println!("\n[E2] Neighborhood cover (Thm 4.4): build time and degree");
    let t = Table::new(
        &["family", "n", "r", "bags", "degree", "Σ|X|/n", "time"],
        &[7, 8, 3, 7, 7, 8, 9],
    );
    let sizes: &[usize] = if cfg.quick {
        &[4_000, 16_000]
    } else {
        &[4_000, 16_000, 64_000]
    };
    for &f in ALL_FAMILIES {
        for &n in sizes {
            if !f.sparse() && n > 4_000 {
                continue;
            }
            let g = f.build(n, 1);
            for &r in &[2u32, 4] {
                let (cover, dur) = time_it(|| Cover::build(&g, r, 0.5));
                t.row(&[
                    f.name().to_string(),
                    format!("{}", g.n()),
                    format!("{r}"),
                    format!("{}", cover.num_bags()),
                    format!("{}", cover.degree()),
                    format!("{:.2}", cover.total_bag_size() as f64 / g.n().max(1) as f64),
                    fmt_dur(dur),
                ]);
            }
        }
    }
}

/// E3 — Splitter game (Thm 4.6): rounds until Splitter wins, per family
/// and strategy.
fn e3_splitter(cfg: &Config) {
    println!("\n[E3] Splitter game (Thm 4.6): rounds to win (lower = sparser)");
    let t = Table::new(
        &["family", "n", "r", "strategy", "rounds"],
        &[7, 7, 3, 12, 7],
    );
    let n = if cfg.quick { 2_000 } else { 10_000 };
    let strategies: [&dyn SplitterStrategy; 3] = [&BallCenter, &MaxDegree, &TakeCenter];
    for &f in ALL_FAMILIES {
        let size = if f.sparse() { n } else { 400 };
        let g = f.build(size, 3);
        for &r in &[1u32, 2] {
            for s in strategies {
                let res = play_game(
                    &g,
                    r,
                    s,
                    &ConnectorStrategy::SampledAdversary {
                        samples: 8,
                        seed: 5,
                    },
                );
                t.row(&[
                    f.name().to_string(),
                    format!("{}", g.n()),
                    format!("{r}"),
                    s.name().to_string(),
                    format!("{}", res.rounds),
                ]);
            }
        }
    }
}

/// E4 — Distance oracle (Prop 4.2): prep scaling, O(1) tests, crossover vs
/// per-query BFS.
fn e4_dist_oracle(cfg: &Config) {
    println!("\n[E4] Distance oracle (Prop 4.2) vs BFS baseline");
    let t = Table::new(
        &["family", "n", "r", "prep", "ns/test", "ns/bfs", "speedup"],
        &[7, 8, 3, 9, 9, 9, 8],
    );
    let sizes: &[usize] = if cfg.quick {
        &[4_000, 16_000]
    } else {
        &[4_000, 16_000, 64_000]
    };
    let queries = 50_000usize;
    for &f in SPARSE_FAMILIES {
        for &n in sizes {
            let g = f.build(n, 2);
            for &r in &[4u32, 8] {
                let (oracle, prep) =
                    time_it(|| DistOracle::build(&g, r, &DistOracleOpts::default()));
                let a = random_vertices(g.n(), queries, 11);
                let b = random_vertices(g.n(), queries, 13);
                let t0 = Instant::now();
                let mut hits = 0usize;
                for i in 0..queries {
                    if oracle.test(a[i], b[i]) {
                        hits += 1;
                    }
                }
                let per_test = t0.elapsed().as_nanos() as f64 / queries as f64;
                let mut bfs = BfsDistanceBaseline::new(&g);
                let bfs_queries = queries / 10;
                let t0 = Instant::now();
                let mut hits_bfs = 0usize;
                for i in 0..bfs_queries {
                    if bfs.test(a[i], b[i], r) {
                        hits_bfs += 1;
                    }
                }
                let per_bfs = t0.elapsed().as_nanos() as f64 / bfs_queries as f64;
                std::hint::black_box((hits, hits_bfs));
                t.row(&[
                    f.name().to_string(),
                    format!("{}", g.n()),
                    format!("{r}"),
                    fmt_dur(prep),
                    format!("{per_test:.0}"),
                    format!("{per_bfs:.0}"),
                    format!("{:.1}x", per_bfs / per_test.max(1.0)),
                ]);
            }
        }
    }
}

const E5_QUERY: &str = "dist(x,y) > 2 && Blue(y)";
const E5_QUERY3: &str = "dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)";

/// E5 — Theorem 2.3: next_solution constant vs n after pseudo-linear prep.
fn e5_next_solution(cfg: &Config) {
    println!("\n[E5] next_solution (Thm 2.3): prep scaling + flat query time");
    let t = Table::new(&["family", "n", "k", "prep", "ns/next"], &[7, 8, 3, 9, 10]);
    let sizes: &[usize] = if cfg.quick {
        &[4_000, 16_000]
    } else {
        &[4_000, 16_000, 64_000]
    };
    for &f in SPARSE_FAMILIES {
        for &n in sizes {
            let g = f.build_colored(n, 4);
            for (k, src) in [(2, E5_QUERY), (3, E5_QUERY3)] {
                let q = parse_query(src).unwrap();
                let (pq, prep) =
                    time_it(|| PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap());
                let probes = 2_000usize;
                let t0 = Instant::now();
                for i in 0..probes {
                    let probe: Vec<u32> = (0..k)
                        .map(|c| (mix((i * k + c) as u64, 17) % g.n() as u64) as u32)
                        .collect();
                    std::hint::black_box(pq.next_solution(&probe));
                }
                let per = t0.elapsed().as_nanos() as f64 / probes as f64;
                t.row(&[
                    f.name().to_string(),
                    format!("{}", g.n()),
                    format!("{k}"),
                    fmt_dur(prep),
                    format!("{per:.0}"),
                ]);
            }
        }
    }
}

/// E6 — Corollary 2.4: O(1) testing vs naive per-tuple evaluation.
fn e6_testing(cfg: &Config) {
    println!("\n[E6] testing (Cor 2.4) vs naive evaluation");
    let t = Table::new(
        &["family", "n", "ns/test", "ns/naive", "speedup"],
        &[7, 8, 9, 10, 8],
    );
    let sizes: &[usize] = if cfg.quick {
        &[4_000]
    } else {
        &[4_000, 16_000, 64_000]
    };
    let q = parse_query(E5_QUERY).unwrap();
    for &f in SPARSE_FAMILIES {
        for &n in sizes {
            let g = f.build_colored(n, 5);
            let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
            let tester = NaiveTester::new(&g, q.clone());
            let probes = 20_000usize;
            let a = random_vertices(g.n(), probes, 3);
            let b = random_vertices(g.n(), probes, 4);
            let t0 = Instant::now();
            for i in 0..probes {
                std::hint::black_box(pq.test(&[a[i], b[i]]));
            }
            let per = t0.elapsed().as_nanos() as f64 / probes as f64;
            let naive_probes = probes / 20;
            let t0 = Instant::now();
            for i in 0..naive_probes {
                std::hint::black_box(tester.test(&[a[i], b[i]]));
            }
            let per_naive = t0.elapsed().as_nanos() as f64 / naive_probes as f64;
            t.row(&[
                f.name().to_string(),
                format!("{}", g.n()),
                format!("{per:.0}"),
                format!("{per_naive:.0}"),
                format!("{:.1}x", per_naive / per.max(1.0)),
            ]);
        }
    }
}

/// E7 — Corollary 2.5: constant delay vs n; naive delay grows.
///
/// Uses a *selective* query (rare color on both sides) so the naive
/// streaming enumerator's gaps between solutions grow with n while the
/// indexed delay stays flat.
fn e7_enumeration(cfg: &Config) {
    println!("\n[E7] enumeration (Cor 2.5): delay vs n, against streaming naive");
    let t = Table::new(
        &[
            "family",
            "n",
            "engine",
            "outputs",
            "mean ns/out",
            "max delay",
        ],
        &[7, 8, 8, 8, 12, 10],
    );
    let sizes: &[usize] = if cfg.quick {
        &[4_000, 16_000]
    } else {
        &[4_000, 16_000, 64_000]
    };
    let q = parse_query("Rare(x) && dist(x,y) > 2 && Rare(y)").unwrap();
    let limit = 20_000usize;
    for &f in SPARSE_FAMILIES {
        for &n in sizes {
            let mut g = f.build(n, 6);
            let rare: Vec<u32> = (0..g.n() as u32)
                .filter(|v| mix(*v as u64, 61).is_multiple_of(51))
                .collect();
            g.add_color(rare, Some("Rare".into()));
            let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
            let s = measure_delays(pq.enumerate(), limit);
            t.row(&[
                f.name().to_string(),
                format!("{}", g.n()),
                "indexed".into(),
                format!("{}", s.outputs),
                format!("{:.0}", s.mean_delay_ns),
                fmt_dur(s.max_delay),
            ]);
            // The naive stream pays ~51² candidate checks per output; keep
            // its output count small so the row finishes.
            let s = measure_delays(NaiveEnumerator::new(&g, q.clone()), limit / 10);
            t.row(&[
                f.name().to_string(),
                format!("{}", g.n()),
                "naive".into(),
                format!("{}", s.outputs),
                format!("{:.0}", s.mean_delay_ns),
                fmt_dur(s.max_delay),
            ]);
        }
    }
}

/// E8 — Lemma 5.8: SC(b) table size ~ n·δ^k; skip queries O(1).
fn e8_skip(cfg: &Config) {
    println!("\n[E8] skip pointers (Lemma 5.8): table size and query time");
    let t = Table::new(
        &["family", "n", "k", "entries", "entries/n", "ns/skip"],
        &[7, 8, 3, 9, 10, 9],
    );
    let sizes: &[usize] = if cfg.quick {
        &[4_000]
    } else {
        &[4_000, 16_000, 64_000]
    };
    for &f in SPARSE_FAMILIES {
        for &n in sizes {
            let g = f.build(n, 7);
            let r = 2;
            let cover = Cover::build(&g, 2 * r, 0.5);
            let kernels = KernelIndex::build(&g, &cover, r);
            for &k in &[2usize, 3] {
                let list: Vec<u32> = (0..g.n() as u32).filter(|v| v % 3 == 0).collect();
                let sp = SkipPointers::build_with_cap(g.n(), &kernels, list, k, 64 * g.n());
                let probes = 20_000usize;
                let bs = random_vertices(g.n(), probes, 21);
                let anchors = random_vertices(g.n(), probes * k, 22);
                let t0 = Instant::now();
                for i in 0..probes {
                    let bags: Vec<_> = (0..k).map(|c| cover.bag_of(anchors[i * k + c])).collect();
                    std::hint::black_box(sp.skip(&kernels, bs[i], &bags));
                }
                let per = t0.elapsed().as_nanos() as f64 / probes as f64;
                t.row(&[
                    f.name().to_string(),
                    format!("{}", g.n()),
                    format!("{k}"),
                    format!("{}", sp.table_len()),
                    format!("{:.2}", sp.table_len() as f64 / g.n() as f64),
                    format!("{per:.0}"),
                ]);
            }
        }
    }
}

/// E9 — Lemma 5.7: kernels in `O(p·‖G[X]‖)`.
fn e9_kernel(cfg: &Config) {
    println!("\n[E9] kernels (Lemma 5.7): time linear in p·Σ‖G[X]‖");
    let t = Table::new(
        &["family", "n", "p", "Σ|X|", "time", "ns/bag-vertex"],
        &[7, 8, 3, 9, 9, 14],
    );
    let sizes: &[usize] = if cfg.quick {
        &[16_000]
    } else {
        &[16_000, 64_000]
    };
    for &f in SPARSE_FAMILIES {
        for &n in sizes {
            let g = f.build(n, 8);
            let cover = Cover::build(&g, 4, 0.5);
            for &p in &[1u32, 2, 4] {
                let (ki, dur) = time_it(|| KernelIndex::build(&g, &cover, p));
                std::hint::black_box(ki.degree());
                let total = cover.total_bag_size();
                t.row(&[
                    f.name().to_string(),
                    format!("{}", g.n()),
                    format!("{p}"),
                    format!("{total}"),
                    fmt_dur(dur),
                    format!("{:.1}", dur.as_nanos() as f64 / total.max(1) as f64),
                ]);
            }
        }
    }
}

/// E10 — Lemma 2.2: reduction sizes and agreement.
fn e10_relational(cfg: &Config) {
    println!("\n[E10] relational reduction (Lemma 2.2): A'(D) blowup + agreement");
    use nd_graph::relational::{adjacency_graph, RelationalDb};
    use nd_logic::eval::materialize_db;
    use nd_logic::relational::rewrite_to_graph;
    let t = Table::new(
        &[
            "papers",
            "db size",
            "|A'(D)|",
            "‖A'(D)‖",
            "build",
            "answers",
            "agree",
        ],
        &[7, 8, 8, 9, 9, 8, 6],
    );
    let sizes: &[usize] = if cfg.quick { &[50] } else { &[50, 100] };
    for &n in sizes {
        let mut db = RelationalDb::new(n);
        let mut tuples = Vec::new();
        for p in 1..n as u32 {
            tuples.push(vec![p, p / 2]);
            tuples.push(vec![p, (p * 7 + 1) % p]);
        }
        db.add_relation("R", 2, tuples);
        db.add_relation(
            "S",
            1,
            (0..n as u32)
                .filter(|p| p % 3 == 0)
                .map(|p| vec![p])
                .collect(),
        );
        let phi = parse_query("R(x, y) && S(y)").unwrap();
        let ((g, mapping), build) = time_it(|| adjacency_graph(&db));
        let psi = rewrite_to_graph(&phi, &mapping);
        let want = materialize_db(&db, &phi);
        let pq = PreparedQuery::prepare(&g, &psi, &PrepareOpts::default()).unwrap();
        let got: Vec<_> = pq.enumerate().collect();
        t.row(&[
            format!("{n}"),
            format!("{}", db.size()),
            format!("{}", g.n()),
            format!("{}", g.size()),
            fmt_dur(build),
            format!("{}", want.len()),
            format!("{}", got == want),
        ]);
    }
}

/// E11 — dynamic far-query index (the conclusion's future-work direction):
/// update and query cost under churn, vs. rebuilding from scratch.
fn e11_dynamic(cfg: &Config) {
    use nd_core::DynamicFarQuery;
    println!("\n[E11] dynamic far index (future work): updates vs rebuilds");
    let t = Table::new(
        &["family", "n", "ns/update", "ns/skip1", "rebuild"],
        &[7, 8, 10, 9, 9],
    );
    let sizes: &[usize] = if cfg.quick {
        &[4_000, 16_000]
    } else {
        &[4_000, 16_000, 64_000]
    };
    for &f in SPARSE_FAMILIES {
        for &n in sizes {
            let g = f.build(n, 14);
            let witnesses: Vec<u32> = (0..g.n() as u32).filter(|v| v % 3 == 0).collect();
            let (mut q, rebuild) = time_it(|| DynamicFarQuery::new(&g, 2, &witnesses, 0.5));
            let updates = 20_000usize;
            let vs = random_vertices(g.n(), updates, 41);
            let t0 = Instant::now();
            for &v in &vs {
                q.toggle(v);
            }
            let per_update = t0.elapsed().as_nanos() as f64 / updates as f64;
            let queries = 20_000usize;
            let aa = random_vertices(g.n(), queries, 42);
            let bb = random_vertices(g.n(), queries, 43);
            let t0 = Instant::now();
            for i in 0..queries {
                std::hint::black_box(q.next_far_witness(aa[i], bb[i]));
            }
            let per_query = t0.elapsed().as_nanos() as f64 / queries as f64;
            t.row(&[
                f.name().to_string(),
                format!("{}", g.n()),
                format!("{per_update:.0}"),
                format!("{per_query:.0}"),
                fmt_dur(rebuild),
            ]);
        }
    }
}

/// A1 — ablation: extendability pruning on vs off (backtracking waste).
fn a1_ablation_extend(cfg: &Config) {
    println!("\n[A1] ablation: extendability pruning (Thm 5.1 induction) on/off");
    let t = Table::new(
        &["family", "n", "check", "outputs", "total", "max delay"],
        &[7, 8, 6, 8, 9, 10],
    );
    let n = if cfg.quick { 8_000 } else { 32_000 };
    // Rare solutions stress backtracking: far-far with a rare color.
    for &f in &[GraphFamily::Grid, GraphFamily::BoundedDegree4] {
        let mut g = f.build(n, 9);
        let rare: Vec<u32> = (0..g.n() as u32).filter(|v| v % 301 == 7).collect();
        g.add_color(rare, Some("Blue".into()));
        let q =
            parse_query("Blue(x) && dist(x,y) > 4 && Blue(y) && dist(y,z) > 4 && Blue(z)").unwrap();
        for check in [true, false] {
            let opts = PrepareOpts {
                extendability_check: check,
                ..PrepareOpts::default()
            };
            let pq = PreparedQuery::prepare(&g, &q, &opts).unwrap();
            let s = measure_delays(pq.enumerate(), 5_000);
            t.row(&[
                f.name().to_string(),
                format!("{}", g.n()),
                format!("{check}"),
                format!("{}", s.outputs),
                fmt_dur(s.total),
                fmt_dur(s.max_delay),
            ]);
        }
    }
}

/// A2 — ablation: distance oracle recursion depth (splitter) vs flat base.
fn a2_ablation_splitter(cfg: &Config) {
    println!("\n[A2] ablation: oracle with splitter recursion vs flat naive bags");
    let t = Table::new(
        &["family", "n", "variant", "prep", "index verts", "ns/test"],
        &[7, 8, 10, 9, 12, 9],
    );
    let n = if cfg.quick { 16_000 } else { 64_000 };
    for &f in &[GraphFamily::Grid, GraphFamily::RandomTree] {
        let g = f.build(n, 10);
        let r = 6;
        for (name, opts) in [
            ("recursive", DistOracleOpts::default()),
            (
                "flat",
                DistOracleOpts {
                    max_rounds: 0, // immediate naive base case: all balls
                    ..DistOracleOpts::default()
                },
            ),
        ] {
            let (oracle, prep) = time_it(|| DistOracle::build(&g, r, &opts));
            let probes = 50_000usize;
            let a = random_vertices(g.n(), probes, 31);
            let b = random_vertices(g.n(), probes, 32);
            let t0 = Instant::now();
            for i in 0..probes {
                std::hint::black_box(oracle.test(a[i], b[i]));
            }
            let per = t0.elapsed().as_nanos() as f64 / probes as f64;
            t.row(&[
                f.name().to_string(),
                format!("{}", g.n()),
                name.into(),
                fmt_dur(prep),
                format!("{}", oracle.stats().total_vertices),
                format!("{per:.0}"),
            ]);
        }
    }
}

/// A3 — sparse vs dense contrast: weak accessibility, cover degree,
/// prep time, delay all degrade on dense inputs.
fn a3_sparse_vs_dense(cfg: &Config) {
    println!("\n[A3] sparse vs dense contrast (nowhere-dense boundary)");
    let t = Table::new(
        &[
            "family",
            "n",
            "‖G‖/n",
            "weak-acc(2)",
            "cover deg",
            "prep",
            "mean ns/out",
        ],
        &[7, 7, 8, 12, 10, 9, 12],
    );
    let n = if cfg.quick { 1_000 } else { 3_000 };
    let q = parse_query(E5_QUERY).unwrap();
    for &f in ALL_FAMILIES {
        let size = if f.sparse() { n } else { n.min(800) };
        let g = f.build_colored(size, 12);
        let (_, ord) = degeneracy_ordering(&g);
        let ord: Vec<_> = ord.into_iter().rev().collect();
        let wa = max_weak_accessibility(&g, &ord, 2);
        let cover = Cover::build(&g, 4, 0.5);
        let (pq, prep) =
            time_it(|| PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap());
        let s = measure_delays(pq.enumerate(), 5_000);
        t.row(&[
            f.name().to_string(),
            format!("{}", g.n()),
            format!("{:.1}", g.size() as f64 / g.n().max(1) as f64),
            format!("{wa}"),
            format!("{}", cover.degree()),
            fmt_dur(prep),
            format!("{:.0}", s.mean_delay_ns),
        ]);
    }
}

/// A4 — preprocessing budgets and the degradation ladder: sweep the
/// node-expansion cap and report which rung the ladder lands on. A
/// `BudgetExceeded` is a measured outcome here (with its partial spend),
/// not a crash.
fn a4_budget_ladder(cfg: &Config) {
    use nd_core::{Budget, DegradationRung, PrepareError};

    println!("\n[A4] preprocessing budgets: ladder rung vs node-expansion cap");
    let t = Table::new(
        &["family", "n", "node cap", "outcome", "nodes spent", "prep"],
        &[7, 7, 12, 24, 12, 9],
    );
    let n = if cfg.quick { 500 } else { 2_000 };
    let q = parse_query(E5_QUERY).unwrap();
    for &f in ALL_FAMILIES {
        if !f.sparse() {
            continue;
        }
        let g = f.build_colored(n, 12);
        for cap in [u64::MAX, 1 << 22, 1 << 16, 1 << 10] {
            let opts = PrepareOpts {
                budget: if cap == u64::MAX {
                    Budget::UNLIMITED
                } else {
                    Budget::UNLIMITED.with_node_expansions(cap)
                },
                ..PrepareOpts::default()
            };
            let (res, prep) = time_it(|| PreparedQuery::prepare(&g, &q, &opts));
            let (outcome, spent) = match &res {
                Ok(pq) => {
                    let s = pq.stats();
                    let rung = match s.rung {
                        DegradationRung::Indexed => "indexed",
                        DegradationRung::CoarsenedEpsilon => "coarsened ε",
                        DegradationRung::NaiveFallback => "naive fallback",
                    };
                    (rung.to_string(), s.budget_nodes_spent)
                }
                Err(PrepareError::BudgetExceeded { exceeded, partial }) => (
                    format!("exceeded in {}", exceeded.phase),
                    partial.budget_nodes_spent,
                ),
                Err(e) => (format!("error: {e}"), 0),
            };
            t.row(&[
                f.name().to_string(),
                format!("{}", g.n()),
                if cap == u64::MAX {
                    "∞".into()
                } else {
                    format!("{cap}")
                },
                outcome.clone(),
                format!("{spent}"),
                fmt_dur(prep),
            ]);
            emit_json(cfg.json, "a4", |o| {
                o.field_str("family", f.name())
                    .field_u64("n", g.n() as u64)
                    .field_u64("node_cap", cap)
                    .field_str("outcome", &outcome)
                    .field_u64("nodes_spent", spent)
                    .field_f64("prep_s", prep.as_secs_f64());
            });
        }
    }
}

/// A5 — serving throughput (nd-serve): closed-loop clients submit batches
/// of `test` probes against one shared snapshot while the worker count is
/// swept. Validates that the prepare-once/probe-many serving runtime keeps
/// the paper's constant-time probes constant *under concurrency* — and
/// shows where worker scaling lands on the current host (on a single-core
/// host multi-worker rows can only tie the single-worker row).
fn a5_serving(cfg: &Config) {
    use nd_graph::Vertex;
    use nd_serve::{Request, ServeOpts, ServerPool, Snapshot};
    use std::sync::Arc;

    println!("\n[A5] serving throughput: worker scaling over one shared snapshot");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("(host cores: {cores}; closed loop, 4 clients x batches of 256 test probes)");
    let t = Table::new(
        &["family", "n", "workers", "req/s", "p50 ns", "p99 ns"],
        &[7, 7, 8, 12, 9, 9],
    );
    let n = if cfg.quick { 1_000 } else { 4_000 };
    let total_requests: u64 = if cfg.quick { 40_000 } else { 200_000 };
    let (clients, batch) = (4usize, 256usize);
    let q = parse_query(E5_QUERY).unwrap();
    for &f in &[GraphFamily::Grid, GraphFamily::RandomTree] {
        let g = f.build_colored(n, 12);
        let gn = g.n();
        let snap =
            Snapshot::build_owned(g, &q, &PrepareOpts::default()).expect("a5 snapshot build");
        for workers in [1usize, 2, 4] {
            let pool = Arc::new(ServerPool::start(
                snap.clone(),
                &ServeOpts {
                    workers,
                    ..Default::default()
                },
            ));
            // Pre-generate the batches so the timed section measures the
            // serving runtime, not the load generator.
            let per_client = total_requests / clients as u64;
            let all_batches: Vec<Vec<Vec<Request>>> = (0..clients)
                .map(|c| {
                    let seed = 0xa5 + c as u64;
                    let mut made = 0u64;
                    let mut batches = Vec::new();
                    while made < per_client {
                        let b = batch.min((per_client - made) as usize);
                        batches.push(
                            (0..b)
                                .map(|i| Request::Test {
                                    tuple: vec![
                                        (mix(made + i as u64, seed) % gn as u64) as Vertex,
                                        (mix(made + i as u64, seed ^ 0xffff) % gn as u64) as Vertex,
                                    ],
                                })
                                .collect(),
                        );
                        made += b as u64;
                    }
                    batches
                })
                .collect();
            let (completed, elapsed) = time_it(|| {
                std::thread::scope(|s| {
                    let handles: Vec<_> = all_batches
                        .into_iter()
                        .map(|batches| {
                            let pool = Arc::clone(&pool);
                            s.spawn(move || {
                                let mut ok = 0u64;
                                for reqs in batches {
                                    if let Ok(h) = pool.submit(reqs) {
                                        ok += h.wait().iter().filter(|r| r.is_ok()).count() as u64;
                                    }
                                }
                                ok
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
                })
            });
            assert_eq!(completed, per_client * clients as u64, "a5 lost requests");
            let rps = completed as f64 / elapsed.as_secs_f64().max(1e-9);
            let m = pool.metrics_snapshot();
            let lat = &m.kind(nd_serve::RequestKind::Test).latency;
            let fmt_q = |q: Option<u64>| q.map_or_else(|| "-".into(), |v| v.to_string());
            t.row(&[
                f.name().to_string(),
                format!("{gn}"),
                format!("{workers}"),
                format!("{rps:.0}"),
                fmt_q(lat.quantile_ns(0.50)),
                fmt_q(lat.quantile_ns(0.99)),
            ]);
            emit_json(cfg.json, "a5", |o| {
                o.field_str("family", f.name())
                    .field_u64("n", gn as u64)
                    .field_u64("host_cores", cores as u64)
                    .field_u64("workers", workers as u64)
                    .field_u64("completed", completed)
                    .field_f64("throughput_rps", rps);
                match lat.quantile_ns(0.50) {
                    Some(v) => o.field_u64("p50_ns", v),
                    None => o.field_null("p50_ns"),
                };
                match lat.quantile_ns(0.99) {
                    Some(v) => o.field_u64("p99_ns", v),
                    None => o.field_null("p99_ns"),
                };
            });
        }
    }
}

/// A6 — conformance throughput: the differential harness as an experiment.
/// Reports how many engine configurations and probes per second the
/// harness covers, per seed — and loudly fails the table if any
/// configuration ever disagrees with the naive-semantics oracle.
fn a6_conform(cfg: &Config) {
    use nd_conform::{protocol_fuzz, run, ConformOpts};

    println!("\n[A6] conformance: all engine configs vs the naive oracle");
    let t = Table::new(
        &[
            "seed", "cases", "configs", "probes", "skipped", "disagree", "time",
        ],
        &[6, 7, 8, 9, 8, 9, 9],
    );
    let cases = if cfg.quick { 40 } else { 200 };
    for seed in [42u64, 7, 0xbeef] {
        let opts = ConformOpts {
            seed,
            cases,
            ..ConformOpts::default()
        };
        let t0 = Instant::now();
        let mut report = run(&opts);
        let fuzz = protocol_fuzz::fuzz_protocol(seed, 200);
        report.probes += fuzz.probes;
        report.disagreements.extend(fuzz.disagreements);
        let dt = t0.elapsed();
        t.row(&[
            format!("{seed}"),
            format!("{cases}"),
            format!("{}", report.configs_checked),
            format!("{}", report.probes),
            format!("{}", report.skipped),
            format!("{}", report.disagreements.len()),
            fmt_dur(dt),
        ]);
        emit_json(cfg.json, "a6", |o| {
            o.field_u64("seed", seed)
                .field_u64("cases", cases as u64)
                .field_u64("configs_checked", report.configs_checked)
                .field_u64("probes", report.probes)
                .field_u64("skipped", report.skipped)
                .field_u64("disagreements", report.disagreements.len() as u64)
                .field_bool("ok", report.disagreements.is_empty())
                .field_f64("secs", dt.as_secs_f64());
        });
        for d in &report.disagreements {
            println!("  DISAGREEMENT {}", d.to_json());
        }
        assert!(
            report.disagreements.is_empty(),
            "A6: conformance disagreements found (seed {seed})"
        );
    }
}

/// Full-graph BFS from each source over the CSR adjacency, returning a
/// checksum so the traversal cannot be optimized away.
fn a7_bfs_csr(g: &nd_graph::ColoredGraph, sources: &[u32]) -> u64 {
    let mut dist = vec![u32::MAX; g.n()];
    let mut queue: Vec<u32> = Vec::with_capacity(g.n());
    let mut sum = 0u64;
    for &s in sources {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        queue.clear();
        dist[s as usize] = 0;
        queue.push(s);
        let mut head = 0usize;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let dv = dist[v as usize];
            for &w in g.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dv + 1;
                    sum += (dv + 1) as u64;
                    queue.push(w);
                }
            }
        }
    }
    sum
}

/// The same BFS over a `Vec<Vec<u32>>` adjacency (the layout the CSR core
/// replaces): one heap allocation per vertex, no cache-contiguous edges.
fn a7_bfs_vecvec(adj: &[Vec<u32>], sources: &[u32]) -> u64 {
    let mut dist = vec![u32::MAX; adj.len()];
    let mut queue: Vec<u32> = Vec::with_capacity(adj.len());
    let mut sum = 0u64;
    for &s in sources {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        queue.clear();
        dist[s as usize] = 0;
        queue.push(s);
        let mut head = 0usize;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let dv = dist[v as usize];
            for &w in &adj[v as usize] {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dv + 1;
                    sum += (dv + 1) as u64;
                    queue.push(w);
                }
            }
        }
    }
    sum
}

/// A7 — parallel pseudo-linear preprocessing: prepare wall clock at 1/2/4
/// worker threads over far-constraint queries (cover + kernels + skip
/// pointers all build), with the parallel index *asserted* structurally
/// identical to the sequential one, plus a CSR-vs-`Vec<Vec<_>>` adjacency
/// microbenchmark. Returns the `(runs, csr_microbench)` JSON fragments
/// for [`write_bench_prepare`].
///
/// Honesty: the report always carries `host_cores` and
/// `parallelism_limited` — on a single-core host the extra threads cannot
/// win, and the JSON says so rather than hiding the speedup column.
fn a7_prepare(cfg: &Config) -> (String, String) {
    use nd_graph::json::{JsonArray, JsonObject};

    println!("\n[A7] parallel prepare: wall clock vs threads (identical indexes)");
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let thread_counts = A7_THREADS;
    let max_threads = thread_counts.iter().copied().max().unwrap_or(1);
    let parallelism_limited = max_threads > cores;
    println!(
        "(host cores: {cores}{})",
        if parallelism_limited {
            "; thread counts above the core count cannot show real scaling"
        } else {
            ""
        }
    );
    let t = Table::new(
        &["family", "n", "threads", "prep", "speedup", "identical"],
        &[7, 8, 7, 9, 8, 9],
    );
    let n = if cfg.quick { 2_000 } else { 16_000 };
    let q = parse_query(E5_QUERY3).unwrap();
    let mut runs = JsonArray::new();
    let families = [
        GraphFamily::Grid,
        GraphFamily::RandomTree,
        GraphFamily::BoundedDegree4,
    ];
    for &f in &families {
        let g = f.build_colored(n, 15);
        // Untimed warm-up: the very first prepare pays first-touch page
        // faults and allocator growth that later runs reuse; without it
        // the threads=1 baseline looks slower than it is and the speedup
        // column overstates parallelism.
        std::hint::black_box(
            PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).expect("a7 warm-up"),
        );
        let mut baseline: Option<(nd_core::PrepareStats, f64)> = None;
        for &threads in &thread_counts {
            let opts = PrepareOpts {
                threads,
                ..PrepareOpts::default()
            };
            let (pq, prep) = time_it(|| PreparedQuery::prepare(&g, &q, &opts).expect("a7 prepare"));
            let stats = pq.stats();
            let secs = prep.as_secs_f64();
            let (identical, speedup) = match &baseline {
                None => {
                    baseline = Some((stats.structural(), secs));
                    (true, 1.0)
                }
                Some((base, base_secs)) => {
                    (stats.structural() == *base, base_secs / secs.max(1e-9))
                }
            };
            assert!(
                identical,
                "A7: parallel prepare (threads={threads}) diverged from sequential on {}",
                f.name()
            );
            t.row(&[
                f.name().to_string(),
                format!("{}", g.n()),
                format!("{threads}"),
                fmt_dur(prep),
                format!("{speedup:.2}x"),
                format!("{identical}"),
            ]);
            emit_json(cfg.json, "a7", |o| {
                o.field_str("family", f.name())
                    .field_u64("n", g.n() as u64)
                    .field_u64("threads", threads as u64)
                    .field_f64("prep_s", secs)
                    .field_f64("speedup_vs_1", speedup)
                    .field_bool("identical_to_sequential", identical);
            });
            let mut o = JsonObject::new();
            o.field_str("family", f.name())
                .field_u64("n", g.n() as u64)
                .field_str("query", E5_QUERY3)
                .field_u64("threads", threads as u64)
                .field_f64("prep_s", secs)
                .field_f64("speedup_vs_1", speedup)
                .field_bool("identical_to_sequential", identical)
                .field_raw("stats", &stats.to_json());
            runs.push_raw(&o.finish());
        }
    }

    // CSR-vs-Vec-of-Vec adjacency microbenchmark: the same BFS workload
    // the cover/kernel builders run, over both layouts of the same graph.
    println!("  csr microbench: full-graph BFS, CSR vs Vec<Vec<_>> adjacency");
    let tm = Table::new(
        &["family", "n", "csr", "vec-of-vec", "csr/vecvec"],
        &[7, 8, 9, 11, 10],
    );
    let sources_n = if cfg.quick { 8 } else { 32 };
    let mut micro = JsonArray::new();
    for &f in &families {
        let g = f.build(n, 15);
        let adj: Vec<Vec<u32>> = (0..g.n() as u32).map(|v| g.neighbors(v).to_vec()).collect();
        let sources = random_vertices(g.n(), sources_n, 51);
        // Warm both layouts once so neither pays first-touch page faults
        // inside the timed section.
        std::hint::black_box(a7_bfs_csr(&g, &sources));
        std::hint::black_box(a7_bfs_vecvec(&adj, &sources));
        let (csr_sum, csr_dur) = time_it(|| a7_bfs_csr(&g, &sources));
        let (vv_sum, vv_dur) = time_it(|| a7_bfs_vecvec(&adj, &sources));
        assert_eq!(csr_sum, vv_sum, "A7: CSR and Vec-of-Vec BFS disagree");
        let ratio = csr_dur.as_secs_f64() / vv_dur.as_secs_f64().max(1e-9);
        tm.row(&[
            f.name().to_string(),
            format!("{}", g.n()),
            fmt_dur(csr_dur),
            fmt_dur(vv_dur),
            format!("{ratio:.2}"),
        ]);
        let mut o = JsonObject::new();
        o.field_str("family", f.name())
            .field_u64("n", g.n() as u64)
            .field_u64("bfs_sources", sources_n as u64)
            .field_f64("csr_s", csr_dur.as_secs_f64())
            .field_f64("vecvec_s", vv_dur.as_secs_f64())
            .field_f64("csr_over_vecvec", ratio);
        micro.push_raw(&o.finish());
    }

    (runs.finish(), micro.finish())
}

/// A8 — warm restart (PR 6): cold prepare vs `--save`/`--load`, measured
/// to the *first answered probe* (the restart-latency a server operator
/// cares about). Loading a saved index skips the cover/kernel/skip-pointer
/// builds entirely and only pays decode + re-validation, so the win is
/// largest exactly where prepare is most expensive — the dense contrast
/// family. Asserted there: warm start is ≥10x faster than cold.
fn a8_warm_start(cfg: &Config) -> String {
    use nd_core::SharedPreparedQuery;
    use nd_graph::json::{JsonArray, JsonObject};
    use std::sync::Arc;

    println!("\n[A8] warm restart: cold prepare vs load-from-disk, to first probe");
    let t = Table::new(
        &["family", "n", "cold", "warm", "speedup", "bytes", "rung"],
        &[7, 8, 9, 9, 9, 10, 9],
    );
    let q = parse_query(E5_QUERY).unwrap();
    let n_sparse = if cfg.quick { 2_000 } else { 16_000 };
    // Dense prepare scales ~n^1.7 while the saved index (and hence warm
    // decode) scales ~n^2 bytes, so the contrast is sized where the gap is
    // widest without making the quick run crawl.
    let n_dense = 2_400;
    let families = [
        GraphFamily::Grid,
        GraphFamily::RandomTree,
        GraphFamily::BoundedDegree4,
        GraphFamily::DenseGnm,
    ];
    let mut runs = JsonArray::new();
    for &f in &families {
        let n = if f.sparse() { n_sparse } else { n_dense };
        let g = f.build_colored(n, 16).into_shared();
        let probe = [0u32, 1];
        // Untimed warm-up (first-touch page faults, allocator growth),
        // exactly as A7 does for its threads=1 baseline.
        std::hint::black_box(
            SharedPreparedQuery::prepare(Arc::clone(&g), &q, &PrepareOpts::default())
                .expect("a8 warm-up"),
        );
        // Cold start: build the index from the graph, answer one probe.
        let ((cold_pq, cold_first), cold) = time_it(|| {
            let pq = SharedPreparedQuery::prepare(Arc::clone(&g), &q, &PrepareOpts::default())
                .expect("a8 prepare");
            let first = pq.test(&probe);
            (pq, first)
        });
        let path =
            std::env::temp_dir().join(format!("nd-a8-{}-{}.idx", f.name(), std::process::id()));
        cold_pq.save_index(&q, E5_QUERY, &path).expect("a8 save");
        let bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
        // Warm start: load the saved index, answer the same probe.
        let ((loaded, warm_first), warm) = time_it(|| {
            let loaded = SharedPreparedQuery::load_index(&path).expect("a8 load");
            let first = loaded.prepared.test(&probe);
            (loaded, first)
        });
        std::fs::remove_file(&path).ok();
        assert_eq!(
            cold_first,
            warm_first,
            "A8: warm index diverged from cold on {}",
            f.name()
        );
        let rung = loaded.prepared.stats().rung.name().to_string();
        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        if !f.sparse() {
            assert!(
                speedup >= 10.0,
                "A8: warm start on {} only {speedup:.1}x faster than cold prepare \
                 (acceptance floor is 10x)",
                f.name()
            );
        }
        t.row(&[
            f.name().to_string(),
            format!("{n}"),
            fmt_dur(cold),
            fmt_dur(warm),
            format!("{speedup:.1}x"),
            format!("{bytes}"),
            rung.clone(),
        ]);
        emit_json(cfg.json, "a8", |o| {
            o.field_str("family", f.name())
                .field_u64("n", n as u64)
                .field_f64("cold_s", cold.as_secs_f64())
                .field_f64("warm_s", warm.as_secs_f64())
                .field_f64("warm_speedup", speedup)
                .field_u64("index_bytes", bytes)
                .field_str("rung", &rung);
        });
        let mut o = JsonObject::new();
        o.field_str("family", f.name())
            .field_u64("n", n as u64)
            .field_str("query", E5_QUERY)
            .field_f64("cold_s", cold.as_secs_f64())
            .field_f64("warm_s", warm.as_secs_f64())
            .field_f64("warm_speedup", speedup)
            .field_u64("index_bytes", bytes)
            .field_str("rung", &rung)
            .field_bool("dense", !f.sparse())
            .field_bool("first_probe_identical", cold_first == warm_first);
        runs.push_raw(&o.finish());
    }
    runs.finish()
}

/// Write `BENCH_prepare.json`: host facts plus whichever of the A7
/// (`runs`, `csr_microbench`) and A8 (`warm_start`) sections ran.
fn write_bench_prepare(cfg: &Config, a7: Option<(String, String)>, a8: Option<String>) {
    use nd_graph::json::JsonObject;

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let max_threads = A7_THREADS.iter().copied().max().unwrap_or(1);
    let mut doc = JsonObject::new();
    doc.field_str("bench", "prepare")
        .field_u64("host_cores", cores as u64)
        .field_bool("parallelism_limited", max_threads > cores)
        .field_bool("quick", cfg.quick);
    if let Some((runs, micro)) = a7 {
        doc.field_raw("runs", &runs)
            .field_raw("csr_microbench", &micro);
    }
    if let Some(warm) = a8 {
        doc.field_raw("warm_start", &warm);
    }
    let path = "BENCH_prepare.json";
    match std::fs::write(path, doc.finish() + "\n") {
        Ok(()) => println!("\n  wrote {path}"),
        Err(e) => println!("\n  WARNING: could not write {path}: {e}"),
    }
}
