//! Multi-threaded stress: N reader threads hammer one shared snapshot
//! (directly and through the pool) and every one of them must observe
//! exactly the answers single-threaded enumeration produces.
//!
//! The snapshot is immutable plain data, so this is the executable proof
//! of the `Send + Sync` audit: no interleaving may change an answer.

use nd_core::PrepareOpts;
use nd_graph::{generators, Vertex};
use nd_logic::parse_query;
use nd_serve::{Request, Response, ServeOpts, ServerPool, Snapshot};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::thread;

fn snapshot(n_side: usize) -> Snapshot {
    let mut g = generators::grid(n_side, n_side);
    let blue: Vec<Vertex> = (0..g.n() as Vertex).filter(|v| v % 3 == 0).collect();
    g.add_color(blue, Some("Blue".into()));
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    Snapshot::build_owned(g, &q, &PrepareOpts::default()).unwrap()
}

/// Walk the whole solution set through EnumeratePage requests.
fn page_walk(pool: &ServerPool, arity: usize, page: usize) -> Vec<Vec<Vertex>> {
    let mut out = Vec::new();
    let mut cursor = Some(vec![0; arity]);
    while let Some(from) = cursor {
        match pool
            .call(Request::EnumeratePage { from, limit: page })
            .unwrap()
        {
            Response::Page {
                solutions,
                next_from,
            } => {
                out.extend(solutions);
                cursor = next_from;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    out
}

#[test]
fn shared_snapshot_is_deterministic_across_threads() {
    let snap = snapshot(14);
    let reference: Vec<Vec<Vertex>> = snap.prepared().enumerate().collect();
    assert!(!reference.is_empty(), "workload must be non-trivial");
    let reference = Arc::new(reference);
    let pool = Arc::new(ServerPool::start(
        snap.clone(),
        &ServeOpts {
            workers: 4,
            ..Default::default()
        },
    ));

    let n = snap.graph().n() as Vertex;
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let snap = snap.clone();
            let pool = Arc::clone(&pool);
            let reference = Arc::clone(&reference);
            thread::spawn(move || {
                // (a) Full enumeration through the pool, page size varying
                // per thread so threads hit different request shapes.
                let via_pages = page_walk(&pool, snap.arity(), 7 + t * 13);
                assert_eq!(via_pages, *reference, "thread {t}: page walk diverged");

                // (b) Direct (no pool) enumeration on the shared snapshot.
                let direct: Vec<Vec<Vertex>> = snap.prepared().enumerate().collect();
                assert_eq!(
                    direct, *reference,
                    "thread {t}: direct enumeration diverged"
                );

                // (c) Random test/next_solution probes, checked against the
                // reference materialization.
                let mut rng = StdRng::seed_from_u64(0xbeef + t as u64);
                for _ in 0..300 {
                    let probe: Vec<Vertex> = (0..2).map(|_| rng.random_range(0..n)).collect();
                    let want_member = reference.binary_search(&probe).is_ok();
                    match pool.call(Request::Test {
                        tuple: probe.clone(),
                    }) {
                        Ok(Response::Test(got)) => {
                            assert_eq!(got, want_member, "thread {t}: test({probe:?})")
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                    let idx = reference.partition_point(|s| s < &probe);
                    match pool.call(Request::NextSolution {
                        from: probe.clone(),
                    }) {
                        Ok(Response::NextSolution(got)) => assert_eq!(
                            got,
                            reference.get(idx).cloned(),
                            "thread {t}: next_solution({probe:?})"
                        ),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("reader thread panicked");
    }

    // Metrics saw every pooled request and no rejections (admission was
    // unlimited).
    let m = pool.metrics_snapshot();
    assert_eq!(m.total_rejected(), 0);
    assert_eq!(m.kind(nd_serve::RequestKind::Test).completed, 8 * 300);
    assert_eq!(
        m.kind(nd_serve::RequestKind::NextSolution).completed,
        8 * 300
    );
    assert!(m.kind(nd_serve::RequestKind::EnumeratePage).completed >= 8);
    let json = pool.metrics_json();
    assert!(json.contains("\"requests\":{"));
    assert!(json.contains("\"p50_ns\":"));
}

#[test]
fn batched_submission_preserves_order_under_stealing() {
    let snap = snapshot(10);
    let pool = ServerPool::start(
        snap.clone(),
        &ServeOpts {
            workers: 4,
            ..Default::default()
        },
    );
    let n = snap.graph().n() as Vertex;
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..20 {
        let reqs: Vec<Request> = (0..64)
            .map(|_| Request::Test {
                tuple: vec![rng.random_range(0..n), rng.random_range(0..n)],
            })
            .collect();
        let want: Vec<Response> = reqs.iter().map(|r| snap.execute(r).unwrap()).collect();
        let got = pool.submit(reqs).unwrap().wait();
        let got: Vec<Response> = got.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, want);
    }
}
