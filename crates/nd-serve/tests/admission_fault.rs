//! Admission-control fault injection: saturate the pool and assert the
//! runtime sheds load with *typed* rejections — and that the metrics
//! layer records every shed request — instead of queueing unboundedly.

use nd_core::PrepareOpts;
use nd_graph::budget::{Budget, Phase, Resource};
use nd_graph::{generators, Vertex};
use nd_logic::parse_query;
use nd_serve::{Request, ServeError, ServeOpts, ServerPool, Snapshot};
use std::time::Duration;

fn big_snapshot() -> Snapshot {
    // A dense-solution workload: full pages over dist<=2 keep a worker
    // busy for a long time relative to a submit call.
    let mut g = generators::grid(40, 40);
    let blue: Vec<Vertex> = (0..g.n() as Vertex).collect();
    g.add_color(blue, Some("Blue".into()));
    let q = parse_query("dist(x,y) <= 2 && Blue(y)").unwrap();
    Snapshot::build_owned(g, &q, &PrepareOpts::default()).unwrap()
}

fn slow_page() -> Request {
    Request::EnumeratePage {
        from: vec![0, 0],
        limit: 100_000,
    }
}

#[test]
fn saturated_pool_rejects_with_typed_overload() {
    let snap = big_snapshot();
    // One worker, at most 2 requests queued or in flight.
    let pool = ServerPool::start(
        snap,
        &ServeOpts {
            workers: 1,
            admission: Budget::UNLIMITED.with_node_expansions(2),
            ..Default::default()
        },
    );

    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..50 {
        match pool.submit(vec![slow_page()]) {
            Ok(h) => accepted.push(h),
            Err(ServeError::Overloaded(e)) => {
                // The typed rejection carries the governor's full context.
                assert_eq!(e.phase, Phase::Admission);
                assert_eq!(e.resource, Resource::NodeExpansions);
                assert_eq!(e.cap, 2);
                assert!(e.spent > e.cap);
                rejected += 1;
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    // Capacity is 2 and the first page keeps the only worker busy far
    // longer than the submit loop runs, so most of the 50 must bounce.
    assert!(rejected >= 40, "only {rejected} rejections");
    assert!(!accepted.is_empty());

    // Accepted work still completes correctly.
    for h in accepted {
        for r in h.wait() {
            r.expect("accepted request must complete");
        }
    }

    // Metrics recorded the shed load, kind-bucketed.
    let m = pool.metrics_snapshot();
    let page = m.kind(nd_serve::RequestKind::EnumeratePage);
    assert_eq!(page.rejected, rejected);
    assert_eq!(page.completed + page.rejected, 50);
    let json = pool.metrics_json();
    assert!(json.contains(&format!("\"rejected\":{rejected}")));

    // After the backlog drains, admission capacity is restored: the pool
    // accepts and serves again (backpressure, not a death spiral).
    let again = pool.submit(vec![slow_page()]).expect("capacity restored");
    for r in again.wait() {
        r.expect("post-overload request must complete");
    }
}

#[test]
fn oversized_batch_is_rejected_by_byte_cap() {
    let snap = big_snapshot();
    let pool = ServerPool::start(
        snap,
        &ServeOpts {
            workers: 1,
            admission: Budget::UNLIMITED.with_memory_bytes(1024),
            ..Default::default()
        },
    );
    // A single huge page request costs far more than 1 KiB of queue.
    let err = pool
        .submit(vec![Request::EnumeratePage {
            from: vec![0, 0],
            limit: 1_000_000,
        }])
        .unwrap_err();
    match err {
        ServeError::Overloaded(e) => {
            assert_eq!(e.phase, Phase::Admission);
            assert_eq!(e.resource, Resource::MemoryBytes);
        }
        other => panic!("unexpected error {other:?}"),
    }
    // Small requests still fit under the cap.
    pool.call(Request::Test { tuple: vec![0, 1] }).unwrap();
    let m = pool.metrics_snapshot();
    assert_eq!(m.kind(nd_serve::RequestKind::EnumeratePage).rejected, 1);
    assert_eq!(m.kind(nd_serve::RequestKind::Test).completed, 1);
}

#[test]
fn queued_work_past_deadline_is_shed() {
    let snap = big_snapshot();
    let pool = ServerPool::start(
        snap,
        &ServeOpts {
            workers: 1,
            ..Default::default()
        },
    );
    // Occupy the single worker, then queue a request whose deadline will
    // expire while it waits.
    let blocker = pool.submit(vec![slow_page(), slow_page()]).unwrap();
    let doomed = pool
        .submit_with_deadline(
            vec![Request::Test { tuple: vec![0, 1] }],
            Some(Duration::from_micros(1)),
        )
        .unwrap();
    let results = doomed.wait();
    match &results[0] {
        Err(ServeError::DeadlineExceeded { waited }) => {
            assert!(*waited >= Duration::from_micros(1));
        }
        other => panic!("expected deadline miss, got {other:?}"),
    }
    for r in blocker.wait() {
        r.expect("blocker batch completes");
    }
    let m = pool.metrics_snapshot();
    assert_eq!(m.kind(nd_serve::RequestKind::Test).deadline_missed, 1);
}
