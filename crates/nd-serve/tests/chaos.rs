//! Chaos harness for the serving runtime (DESIGN.md §9).
//!
//! The robustness contract under test: whatever faults fire — worker
//! panics, snapshot swaps mid-load, shutdown under load, corrupted index
//! files — the pool **always answers or typed-rejects every admitted
//! request, and never hangs**. Faults are injected deterministically
//! (`ServeOpts::chaos_panic_period`, byte-level file corruption), so a
//! failure here reproduces byte-for-byte.

use nd_core::{PrepareOpts, SharedPreparedQuery};
use nd_graph::generators;
use nd_graph::ColoredGraph;
use nd_logic::parse_query;
use nd_serve::{Reply, Request, Response, ServeError, ServeOpts, ServerPool, Session, Snapshot};
use std::path::PathBuf;
use std::time::Duration;

const QUERY: &str = "dist(x,y) <= 2 && Blue(y)";

fn chaos_graph() -> ColoredGraph {
    let mut g = generators::grid(8, 8);
    let members: Vec<_> = (0..g.n() as u32).filter(|v| v % 3 == 0).collect();
    g.add_color(members, Some("Blue".into()));
    g
}

fn snapshot() -> Snapshot {
    Snapshot::build_owned(
        chaos_graph(),
        &parse_query(QUERY).unwrap(),
        &PrepareOpts::default(),
    )
    .unwrap()
}

/// Save an index for `QUERY` over the chaos graph to a unique temp path.
fn saved_index(tag: &str) -> PathBuf {
    let q = parse_query(QUERY).unwrap();
    let prepared =
        SharedPreparedQuery::prepare(chaos_graph().into_shared(), &q, &PrepareOpts::default())
            .unwrap();
    let path = std::env::temp_dir().join(format!("nd-chaos-{tag}-{}.idx", std::process::id()));
    prepared.save_index(&q, QUERY, &path).unwrap();
    path
}

/// Total over all reply shapes, so assertions print what they got.
fn line(reply: Option<Reply>) -> String {
    match reply {
        Some(Reply::Line(s)) => s,
        Some(Reply::Quit) => "<quit>".to_string(),
        None => "<no reply>".to_string(),
    }
}

#[test]
fn injected_worker_panics_are_quarantined() {
    let snap = snapshot();
    let pool = ServerPool::start(
        snap.clone(),
        &ServeOpts {
            workers: 2,
            chaos_panic_period: 5,
            ..Default::default()
        },
    );
    let mut ok = 0u64;
    let mut panicked = 0u64;
    for round in 0..40u32 {
        let batch: Vec<Request> = (0..5)
            .map(|i| Request::Test {
                tuple: vec![(round + i) % 8, (round * 7 + i) % 64],
            })
            .collect();
        let results = pool.submit(batch.clone()).unwrap().wait();
        assert_eq!(results.len(), batch.len());
        for (req, res) in batch.iter().zip(results) {
            match res {
                // Untouched requests answer exactly as a clean snapshot.
                Ok(resp) => {
                    assert_eq!(resp, snap.execute(req).unwrap());
                    ok += 1;
                }
                // The panicking request is quarantined with a typed
                // error; its batch-mates above still succeeded.
                Err(ServeError::WorkerPanic(msg)) => {
                    assert!(msg.contains("chaos"), "{msg}");
                    panicked += 1;
                }
                Err(other) => unreachable!("unexpected error kind: {other:?}"),
            }
        }
    }
    // The tick counter is global and every request consumes one tick, so
    // exactly every 5th of the 200 requests panicked.
    assert_eq!((ok, panicked), (160, 40));
    assert_eq!(pool.worker_panics(), 40);
    // Liveness after 40 panics: the pool still answers promptly.
    let res = pool.call(Request::Test { tuple: vec![0, 1] });
    assert!(
        matches!(res, Ok(_) | Err(ServeError::WorkerPanic(_))),
        "{res:?}"
    );
}

#[test]
fn shutdown_under_load_answers_or_rejects_everything() {
    let pool = ServerPool::start(
        snapshot(),
        &ServeOpts {
            workers: 2,
            ..Default::default()
        },
    );
    // Pile up more page work than two workers clear instantly.
    let handles: Vec<_> = (0..64)
        .map(|_| {
            let batch = vec![
                Request::EnumeratePage {
                    from: vec![0, 0],
                    limit: 50,
                };
                4
            ];
            pool.submit(batch).unwrap()
        })
        .collect();
    // Zero deadline: whatever is still queued is typed-rejected.
    pool.shutdown_with_deadline(Duration::ZERO);
    let (mut answered, mut rejected) = (0u64, 0u64);
    for h in handles {
        for res in h.wait() {
            match res {
                Ok(Response::Page { .. }) => answered += 1,
                Ok(other) => unreachable!("page request answered {other:?}"),
                Err(ServeError::Shutdown) => rejected += 1,
                Err(other) => unreachable!("unexpected error kind: {other:?}"),
            }
        }
    }
    // The whole point: nothing was dropped and nothing hung.
    assert_eq!(answered + rejected, 64 * 4);
}

#[test]
fn begin_shutdown_rejects_new_submits_typed() {
    let pool = ServerPool::start(
        snapshot(),
        &ServeOpts {
            workers: 1,
            ..Default::default()
        },
    );
    pool.begin_shutdown();
    let res = pool.submit(vec![Request::Test { tuple: vec![0, 1] }]);
    assert!(matches!(res, Err(ServeError::Shutdown)), "{res:?}");
    assert!(pool.drain_with_deadline(Duration::from_secs(1)));
}

#[test]
fn shutdown_under_chaos_still_terminates() {
    let pool = ServerPool::start(
        snapshot(),
        &ServeOpts {
            workers: 2,
            chaos_panic_period: 3,
            ..Default::default()
        },
    );
    let handles: Vec<_> = (0..32)
        .map(|_| {
            pool.submit(vec![Request::Test { tuple: vec![0, 1] }; 4])
                .unwrap()
        })
        .collect();
    pool.shutdown_with_deadline(Duration::from_millis(50));
    for h in handles {
        for res in h.wait() {
            // Every admitted request resolves to an answer or a typed
            // rejection — panics included — and the join above returned,
            // so no worker hung.
            assert!(
                matches!(
                    res,
                    Ok(_)
                        | Err(ServeError::Shutdown)
                        | Err(ServeError::WorkerPanic(_))
                        | Err(ServeError::DeadlineExceeded { .. })
                ),
                "{res:?}"
            );
        }
    }
}

#[test]
fn swap_under_load_never_fails_inflight_requests() {
    let path = saved_index("swap");
    let mut session = Session::start(
        chaos_graph().into_shared(),
        &parse_query(QUERY).unwrap(),
        PrepareOpts::default(),
        ServeOpts {
            workers: 2,
            ..Default::default()
        },
        4,
    )
    .unwrap();
    let swap_cmd = format!("swap {}", path.display());
    for round in 1..=4u64 {
        // Queue real page work on the current pool...
        let handles: Vec<_> = (0..32)
            .map(|_| {
                let batch = vec![
                    Request::EnumeratePage {
                        from: vec![0, 0],
                        limit: 64,
                    };
                    4
                ];
                session.pool().submit(batch).unwrap()
            })
            .collect();
        // ...then hot-swap while those batches are queued or in flight.
        let reply = line(session.handle(&swap_cmd));
        assert!(
            reply.starts_with(&format!("swapped epoch={round} ")),
            "{reply}"
        );
        // Acceptance criterion: every request admitted before the swap
        // completes successfully on its old epoch — zero failures.
        for h in handles {
            for res in h.wait() {
                let resp = res.expect("in-flight request failed across a swap");
                assert!(matches!(resp, Response::Page { .. }), "{resp:?}");
            }
        }
    }
    assert_eq!(session.epoch(), 4);
    // The swapped-in snapshot serves probes.
    let t = line(session.handle("test 0,3"));
    assert!(t == "true" || t == "false", "{t}");
    let m = line(session.handle("metrics"));
    assert!(m.contains("\"swaps\":4"), "{m}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_swap_files_yield_typed_errors_and_keep_serving() {
    let path = saved_index("corrupt");
    let clean = std::fs::read(&path).unwrap();
    let mut session = Session::start(
        chaos_graph().into_shared(),
        &parse_query(QUERY).unwrap(),
        PrepareOpts::default(),
        ServeOpts {
            workers: 1,
            ..Default::default()
        },
        4,
    )
    .unwrap();
    let swap_cmd = format!("swap {}", path.display());

    // Flip one byte somewhere in every region of the file.
    for at in [0, 8, 16, clean.len() / 2, clean.len() - 1] {
        let mut bad = clean.clone();
        bad[at] ^= 0x40;
        std::fs::write(&path, &bad).unwrap();
        let reply = line(session.handle(&swap_cmd));
        assert!(reply.starts_with("err read:"), "byte {at}: {reply}");
    }
    // Truncations, including an empty file.
    for len in [0, 7, clean.len() / 3, clean.len() - 1] {
        std::fs::write(&path, &clean[..len]).unwrap();
        let reply = line(session.handle(&swap_cmd));
        assert!(reply.starts_with("err read:"), "len {len}: {reply}");
    }
    // A directory and a missing file are read errors, not panics.
    let dir_reply = line(session.handle(&format!("swap {}", std::env::temp_dir().display())));
    assert!(dir_reply.starts_with("err read:"), "{dir_reply}");
    std::fs::remove_file(&path).ok();
    let gone_reply = line(session.handle(&swap_cmd));
    assert!(gone_reply.starts_with("err read:"), "{gone_reply}");

    // No failed swap advanced the epoch, and the original index still
    // serves.
    assert_eq!(session.epoch(), 0);
    let t = line(session.handle("test 0,3"));
    assert!(t == "true" || t == "false", "{t}");
}
