//! The line protocol spoken by `ndq serve` — one command in, one reply
//! line out.
//!
//! Extracted from the CLI binary so that (a) stdin and TCP serving share
//! one implementation, and (b) the `nd-conform` harness can drive the
//! exact production parsing/formatting path in-process, as a
//! deterministic protocol fuzzer, without sockets or subprocesses.
//!
//! Grammar (whitespace-separated, one command per line):
//!
//! ```text
//! test a,b,..        # is the tuple a solution?          -> true | false
//! next a,b,..        # least solution >= tuple           -> a,b,.. | none
//! page a,b,.. LIMIT  # up to LIMIT solutions >= tuple    -> s1;s2;.. next=CURSOR|end
//! stats              # snapshot PrepareStats as JSON
//! metrics            # pool metrics as JSON
//! help               # print the command summary
//! quit | exit        # close the session
//! ```
//!
//! Robustness contract: malformed input yields an `err usage: ...` reply
//! line, engine/serving failures yield `err <kind>: ...` — a client
//! mistake never drops the connection and never panics the server.

use crate::error::ServeError;
use crate::pool::ServerPool;
use crate::request::{Request, Response};
use nd_graph::Vertex;

/// One-line command summary, echoed by `help` and on unknown commands.
pub const PROTOCOL_HELP: &str =
    "commands: test a,b,.. | next a,b,.. | page a,b,.. LIMIT | stats | metrics | help | quit";

/// The outcome of one protocol line.
pub enum Reply {
    /// Write this line back to the client.
    Line(String),
    /// Close the session (reply-less by design: `quit` on a half-closed
    /// socket must not error).
    Quit,
}

/// Render a solution tuple in wire format (`1,7,0`; empty for arity 0).
pub fn fmt_tuple(t: &[Vertex]) -> String {
    t.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parse a wire-format tuple. The empty string parses as a parse error
/// (an arity-0 probe is spelled as an empty tuple only via `page  LIMIT`,
/// which the grammar does not produce — sentences are served by `stats`
/// style requests, not probes).
pub fn parse_csv_tuple(s: &str) -> Result<Vec<Vertex>, String> {
    s.split(',')
        .map(|p| p.trim().parse::<Vertex>())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("bad tuple {s:?}: {e}"))
}

/// Render a successful response in wire format.
pub fn fmt_response(r: Response) -> String {
    match r {
        Response::Test(b) => b.to_string(),
        Response::NextSolution(None) => "none".into(),
        Response::NextSolution(Some(t)) => fmt_tuple(&t),
        Response::Page {
            solutions,
            next_from,
        } => {
            let next = next_from.map_or_else(|| "end".to_string(), |t| fmt_tuple(&t));
            if solutions.is_empty() {
                format!("next={next}")
            } else {
                let sols: Vec<String> = solutions.iter().map(|s| fmt_tuple(s)).collect();
                format!("{} next={next}", sols.join(";"))
            }
        }
    }
}

/// Render a serving failure in wire format: a stable machine-greppable
/// kind tag, then the human-readable detail.
pub fn fmt_serve_error(e: &ServeError) -> String {
    let kind = match e {
        ServeError::Overloaded(_) => "overloaded",
        ServeError::DeadlineExceeded { .. } => "deadline",
        ServeError::Query(_) => "query",
        ServeError::Shutdown => "shutdown",
        ServeError::WorkerPanic(_) => "panic",
    };
    format!("err {kind}: {e}")
}

/// Execute one protocol line against `pool`. Empty lines yield no reply;
/// client mistakes come back as `err usage: ...` lines, never as
/// connection drops.
pub fn handle_command(pool: &ServerPool, line: &str) -> Option<Reply> {
    let line = line.trim();
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None if line.is_empty() => return None,
        None => (line, ""),
    };
    let reply = match cmd {
        "quit" | "exit" => return Some(Reply::Quit),
        "help" => PROTOCOL_HELP.to_string(),
        "metrics" => pool.metrics_json(),
        "stats" => pool.snapshot().stats().to_json(),
        "test" | "next" => match parse_csv_tuple(rest) {
            Ok(tuple) => {
                let req = if cmd == "test" {
                    Request::Test { tuple }
                } else {
                    Request::NextSolution { from: tuple }
                };
                match pool.call(req) {
                    Ok(r) => fmt_response(r),
                    Err(e) => fmt_serve_error(&e),
                }
            }
            Err(e) => format!("err usage: {e}"),
        },
        "page" => {
            let parsed = match rest.rsplit_once(char::is_whitespace) {
                Some((tuple, limit)) => parse_csv_tuple(tuple.trim()).and_then(|from| {
                    let limit: usize = limit
                        .parse()
                        .map_err(|e| format!("bad page limit {limit:?}: {e}"))?;
                    Ok((from, limit))
                }),
                None => Err("expected: page a,b,.. LIMIT".to_string()),
            };
            match parsed {
                Ok((from, limit)) => match pool.call(Request::EnumeratePage { from, limit }) {
                    Ok(r) => fmt_response(r),
                    Err(e) => fmt_serve_error(&e),
                },
                Err(e) => format!("err usage: {e}"),
            }
        }
        other => format!("err usage: unknown command {other:?} ({PROTOCOL_HELP})"),
    };
    Some(Reply::Line(reply))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_round_trip() {
        assert_eq!(parse_csv_tuple("3, 1,4").unwrap(), vec![3, 1, 4]);
        assert_eq!(fmt_tuple(&[3, 1, 4]), "3,1,4");
        assert!(parse_csv_tuple("").is_err());
        assert!(parse_csv_tuple("1,,2").is_err());
        assert!(parse_csv_tuple("1,-2").is_err());
    }

    #[test]
    fn responses_render_stably() {
        assert_eq!(fmt_response(Response::Test(true)), "true");
        assert_eq!(fmt_response(Response::NextSolution(None)), "none");
        assert_eq!(
            fmt_response(Response::Page {
                solutions: vec![vec![0, 1], vec![0, 2]],
                next_from: Some(vec![0, 3]),
            }),
            "0,1;0,2 next=0,3"
        );
        assert_eq!(
            fmt_response(Response::Page {
                solutions: vec![],
                next_from: None,
            }),
            "next=end"
        );
    }
}
