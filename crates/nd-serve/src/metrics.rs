//! Lock-free serving metrics.
//!
//! Counters and latency histograms are plain relaxed atomics — recording
//! on the hot path is a handful of `fetch_add`s, no locks, no allocation.
//! [`Metrics::snapshot`] materializes a consistent-enough point-in-time
//! [`MetricsSnapshot`] (individual counters are exact; cross-counter skew
//! is bounded by in-flight requests) that renders itself to JSON via the
//! workspace's serde-free writer.
//!
//! Latencies land in log2-bucketed histograms: bucket `i` covers
//! `[2^(i-1), 2^i)` nanoseconds, so 40 buckets span 1 ns to ~9 minutes
//! with ≤ 2× relative error — plenty for p50/p95/p99 over constant-time
//! probes.

use crate::request::{RequestKind, REQUEST_KINDS};
use nd_graph::json::{JsonArray, JsonObject};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log2 latency buckets (1 ns .. ~2^39 ns ≈ 9 min).
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log2-bucketed latency histogram over nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Index of the bucket covering `ns`: `0` for 0–1 ns, else
    /// `min(64 - leading_zeros(ns), last)`.
    fn bucket_of(ns: u64) -> usize {
        let b = (64 - ns.leading_zeros()) as usize;
        b.min(HISTOGRAM_BUCKETS - 1)
    }

    pub fn record_ns(&self, ns: u64) {
        self.record_ns_many(ns, 1);
    }

    /// Record `n` samples that share one latency value with a single
    /// atomic op — the hot path for batch completions, where every
    /// request in the batch resolves at the same instant.
    pub fn record_ns_many(&self, ns: u64, n: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(n, Ordering::Relaxed);
    }

    pub fn counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Point-in-time copy of one histogram, with percentile estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub counts: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) in nanoseconds: the
    /// geometric midpoint of the bucket holding the `⌈q·total⌉`-th
    /// sample. `None` on an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Bucket i covers [2^(i-1), 2^i); midpoint ≈ 3·2^(i-2).
                // Buckets 0 and 1 are the degenerate {0} and {1}.
                let mid = match i {
                    0 => 0,
                    1 => 1,
                    i => 3u64 << (i - 2),
                };
                return Some(mid);
            }
        }
        None
    }

    fn to_json(&self) -> String {
        // Drop the empty tail so the JSON stays compact.
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        let mut arr = JsonArray::new();
        for &c in &self.counts[..last] {
            arr.push_u64(c);
        }
        arr.finish()
    }
}

/// Per-request-kind live counters.
#[derive(Debug, Default)]
struct KindMetrics {
    /// Requests admitted into the queue.
    admitted: AtomicU64,
    /// Requests completed successfully.
    completed: AtomicU64,
    /// Requests rejected by admission control.
    rejected: AtomicU64,
    /// Requests reaped because their deadline expired in the queue.
    deadline_missed: AtomicU64,
    /// Requests that failed with a client (query) error.
    client_errors: AtomicU64,
    /// Submit→completion latency of completed requests.
    latency: LatencyHistogram,
}

/// The serving runtime's observability hub. One instance per pool; all
/// recording is lock-free.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    kinds: [KindMetrics; 3],
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            kinds: std::array::from_fn(|_| KindMetrics::default()),
        }
    }
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn of(&self, kind: RequestKind) -> &KindMetrics {
        &self.kinds[kind as usize]
    }

    pub fn record_admitted(&self, kind: RequestKind, n: u64) {
        self.of(kind).admitted.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_rejected(&self, kind: RequestKind, n: u64) {
        self.of(kind).rejected.fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_deadline_missed(&self, kind: RequestKind, n: u64) {
        self.of(kind)
            .deadline_missed
            .fetch_add(n, Ordering::Relaxed);
    }

    pub fn record_client_error(&self, kind: RequestKind) {
        self.of(kind).client_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_completed(&self, kind: RequestKind, latency_ns: u64) {
        self.record_completed_many(kind, 1, latency_ns);
    }

    /// Record `n` completions sharing one latency (a whole batch) with
    /// two atomic ops instead of `2n`. Per-request recording makes the
    /// metric counters the scaling bottleneck: sub-µs probes executed by
    /// several workers ping-pong the counter cache lines and flatten
    /// multi-worker throughput.
    pub fn record_completed_many(&self, kind: RequestKind, n: u64, latency_ns: u64) {
        if n == 0 {
            return;
        }
        let k = self.of(kind);
        k.completed.fetch_add(n, Ordering::Relaxed);
        k.latency.record_ns_many(latency_ns, n);
    }

    /// Materialize a point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            kinds: REQUEST_KINDS.map(|kind| {
                let k = self.of(kind);
                KindSnapshot {
                    kind,
                    admitted: k.admitted.load(Ordering::Relaxed),
                    completed: k.completed.load(Ordering::Relaxed),
                    rejected: k.rejected.load(Ordering::Relaxed),
                    deadline_missed: k.deadline_missed.load(Ordering::Relaxed),
                    client_errors: k.client_errors.load(Ordering::Relaxed),
                    latency: HistogramSnapshot {
                        counts: k.latency.counts(),
                    },
                }
            }),
        }
    }
}

/// Point-in-time counters for one request kind.
#[derive(Clone, Debug)]
pub struct KindSnapshot {
    pub kind: RequestKind,
    pub admitted: u64,
    pub completed: u64,
    pub rejected: u64,
    pub deadline_missed: u64,
    pub client_errors: u64,
    pub latency: HistogramSnapshot,
}

impl KindSnapshot {
    fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("admitted", self.admitted)
            .field_u64("completed", self.completed)
            .field_u64("rejected", self.rejected)
            .field_u64("deadline_missed", self.deadline_missed)
            .field_u64("client_errors", self.client_errors);
        for (name, q) in [("p50_ns", 0.50), ("p95_ns", 0.95), ("p99_ns", 0.99)] {
            match self.latency.quantile_ns(q) {
                Some(ns) => o.field_u64(name, ns),
                None => o.field_null(name),
            };
        }
        o.field_raw("latency_log2_ns", &self.latency.to_json());
        o.finish()
    }
}

/// Everything [`Metrics`] knows, frozen. Rendered to JSON by
/// [`MetricsSnapshot::to_json`]; the pool's `metrics_snapshot` also
/// attaches prepare-phase stats from the snapshot under `"prepare"`.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    pub uptime_ms: u64,
    pub kinds: [KindSnapshot; 3],
}

impl MetricsSnapshot {
    pub fn kind(&self, kind: RequestKind) -> &KindSnapshot {
        &self.kinds[kind as usize]
    }

    pub fn total_completed(&self) -> u64 {
        self.kinds.iter().map(|k| k.completed).sum()
    }

    pub fn total_rejected(&self) -> u64 {
        self.kinds.iter().map(|k| k.rejected).sum()
    }

    /// Serde-free JSON rendering: `{"uptime_ms":..,"test":{...},...}`.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("uptime_ms", self.uptime_ms);
        for k in &self.kinds {
            o.field_raw(k.kind.name(), &k.to_json());
        }
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_powers() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = LatencyHistogram::default();
        for _ in 0..90 {
            h.record_ns(100); // bucket 7: [64, 128)
        }
        for _ in 0..10 {
            h.record_ns(10_000); // bucket 14: [8192, 16384)
        }
        let snap = HistogramSnapshot { counts: h.counts() };
        assert_eq!(snap.total(), 100);
        let p50 = snap.quantile_ns(0.50).unwrap();
        assert!((64..128).contains(&p50), "p50 = {p50}");
        let p99 = snap.quantile_ns(0.99).unwrap();
        assert!((8_192..16_384).contains(&p99), "p99 = {p99}");
        assert_eq!(HistogramSnapshot::default().quantile_ns(0.5), None);
    }

    #[test]
    fn snapshot_json_shape() {
        let m = Metrics::new();
        m.record_admitted(RequestKind::Test, 3);
        m.record_completed(RequestKind::Test, 500);
        m.record_rejected(RequestKind::EnumeratePage, 2);
        let j = m.snapshot().to_json();
        assert!(j.contains("\"test\":{\"admitted\":3,\"completed\":1"));
        assert!(j.contains("\"enumerate_page\":{\"admitted\":0,\"completed\":0,\"rejected\":2"));
        assert!(j.contains("\"latency_log2_ns\":["));
    }
}
