//! LRU cache of prepared-query snapshots.
//!
//! The paper's bargain is `O(n^{1+ε})` preprocessing buying constant-time
//! probes — which makes *re-preparing a query you already prepared* the
//! single most expensive avoidable operation in the serving runtime. The
//! [`PrepareCache`] memoizes [`Snapshot`]s behind a key of
//! (normalized query text, graph identity, prepare options), so a repeated
//! `prepare` in the line protocol is a map lookup plus an `Arc` bump
//! instead of a cover/kernel/store rebuild.
//!
//! Keying:
//!
//! * **Query** — the parsed query's canonical rendering (`Query::
//!   to_string`), so formatting differences in the source text
//!   (whitespace, redundant parens) still hit.
//! * **Graph** — the `Arc` pointer identity of the graph snapshot. This is
//!   sound *because the cache retains the snapshot, which co-owns the
//!   graph `Arc`*: while an entry is live its graph allocation cannot be
//!   freed, so the address cannot be reused by a different graph.
//! * **Options** — every semantic field of [`PrepareOpts`] (ε, distance
//!   oracle knobs, fallback/extendability flags, budget caps). The
//!   `threads` knob is deliberately excluded: the parallel prepare is
//!   bit-identical to the sequential one, so indexes built at different
//!   thread counts are interchangeable and must share one entry.
//!
//! Eviction is least-recently-used over a small capacity (a serving
//! process works with a handful of hot queries); the scan is O(capacity)
//! per insert, which is noise next to the prepare it replaces. Hit, miss
//! and eviction counters are relaxed atomics exported into the serving
//! metrics JSON.

use crate::snapshot::Snapshot;
use nd_core::{PrepareError, PrepareOpts};
use nd_graph::json::JsonObject;
use nd_graph::ColoredGraph;
use nd_logic::ast::Query;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of cached snapshots for a serving session.
pub const DEFAULT_CACHE_CAPACITY: usize = 8;

#[derive(Clone, Debug, PartialEq, Eq)]
struct CacheKey {
    query: String,
    graph_id: usize,
    opts_fp: String,
}

/// The semantic fingerprint of the prepare options. `threads` is excluded
/// on purpose — see the module docs.
fn opts_fingerprint(opts: &PrepareOpts) -> String {
    format!(
        "eps={:016x} dist={:?} budget={:?} fallback={} extend={}",
        opts.epsilon.to_bits(),
        opts.dist,
        opts.budget,
        opts.allow_fallback,
        opts.extendability_check,
    )
}

struct Entry {
    key: CacheKey,
    snapshot: Snapshot,
    last_used: u64,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
}

/// A thread-safe LRU cache of prepared snapshots. Capacity 0 disables
/// caching (every lookup is a miss and nothing is retained).
pub struct PrepareCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Point-in-time counters of a [`PrepareCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheCounters {
    pub capacity: usize,
    pub size: usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheCounters {
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("capacity", self.capacity as u64)
            .field_u64("size", self.size as u64)
            .field_u64("hits", self.hits)
            .field_u64("misses", self.misses)
            .field_u64("evictions", self.evictions);
        o.finish()
    }
}

impl PrepareCache {
    pub fn new(capacity: usize) -> PrepareCache {
        PrepareCache {
            capacity,
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                tick: 0,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the snapshot for `(q, graph, opts)`, building (and caching)
    /// it on a miss. Returns the snapshot and whether it was a hit.
    ///
    /// The build runs outside the cache lock, so a slow prepare never
    /// blocks concurrent lookups of other keys (two racing misses on the
    /// same key both build; the second insert wins, which is harmless —
    /// the indexes are identical by construction).
    pub fn get_or_prepare(
        &self,
        graph: &Arc<ColoredGraph>,
        q: &Query,
        opts: &PrepareOpts,
    ) -> Result<(Snapshot, bool), PrepareError> {
        let key = CacheKey {
            query: q.to_string(),
            graph_id: Arc::as_ptr(graph) as usize,
            opts_fp: opts_fingerprint(opts),
        };
        {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.entries.iter_mut().find(|e| e.key == key) {
                e.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((e.snapshot.clone(), true));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let snapshot = Snapshot::build(Arc::clone(graph), q, opts)?;
        if self.capacity > 0 {
            let mut inner = self.inner.lock().unwrap();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.entries.iter_mut().find(|e| e.key == key) {
                // Lost a race with an identical build; keep the incumbent.
                e.last_used = tick;
            } else {
                if inner.entries.len() >= self.capacity {
                    let lru = inner
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(i, _)| i)
                        .expect("capacity > 0 and entries full");
                    inner.entries.swap_remove(lru);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                inner.entries.push(Entry {
                    key,
                    snapshot: snapshot.clone(),
                    last_used: tick,
                });
            }
        }
        Ok((snapshot, false))
    }

    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            capacity: self.capacity,
            size: self.inner.lock().unwrap().entries.len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for PrepareCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = self.counters();
        f.debug_struct("PrepareCache")
            .field("capacity", &c.capacity)
            .field("size", &c.size)
            .field("hits", &c.hits)
            .field("misses", &c.misses)
            .field("evictions", &c.evictions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use nd_logic::parse_query;

    fn test_graph(seed: u64) -> Arc<ColoredGraph> {
        let mut g = generators::random_tree(40, seed);
        g.add_color((0..40).step_by(3).collect(), Some("Blue".into()));
        g.into_shared()
    }

    #[test]
    fn repeated_prepare_hits() {
        let cache = PrepareCache::new(4);
        let g = test_graph(1);
        let q = parse_query("dist(x,y) <= 2 && Blue(y)").unwrap();
        let opts = PrepareOpts::default();
        let (_, hit) = cache.get_or_prepare(&g, &q, &opts).unwrap();
        assert!(!hit);
        let (_, hit) = cache.get_or_prepare(&g, &q, &opts).unwrap();
        assert!(hit);
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.size), (1, 1, 1));
    }

    #[test]
    fn distinct_opts_and_graphs_miss() {
        let cache = PrepareCache::new(8);
        let g1 = test_graph(1);
        let g2 = test_graph(2);
        let q = parse_query("Blue(x)").unwrap();
        let opts = PrepareOpts::default();
        let coarse = PrepareOpts {
            epsilon: 0.9,
            ..PrepareOpts::default()
        };
        assert!(!cache.get_or_prepare(&g1, &q, &opts).unwrap().1);
        assert!(
            !cache.get_or_prepare(&g2, &q, &opts).unwrap().1,
            "new graph"
        );
        assert!(!cache.get_or_prepare(&g1, &q, &coarse).unwrap().1, "new ε");
        assert_eq!(cache.counters().misses, 3);
    }

    #[test]
    fn thread_count_shares_entries() {
        // The parallel prepare is bit-identical to the sequential one, so
        // the knob must not split the key space.
        let cache = PrepareCache::new(4);
        let g = test_graph(3);
        let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
        let seq = PrepareOpts::default();
        let par = PrepareOpts {
            threads: 4,
            ..PrepareOpts::default()
        };
        assert!(!cache.get_or_prepare(&g, &q, &seq).unwrap().1);
        assert!(cache.get_or_prepare(&g, &q, &par).unwrap().1);
    }

    #[test]
    fn lru_eviction() {
        let cache = PrepareCache::new(2);
        let g = test_graph(4);
        let opts = PrepareOpts::default();
        let qa = parse_query("Blue(x)").unwrap();
        let qb = parse_query("E(x,y)").unwrap();
        let qc = parse_query("dist(x,y) <= 2").unwrap();
        cache.get_or_prepare(&g, &qa, &opts).unwrap();
        cache.get_or_prepare(&g, &qb, &opts).unwrap();
        // Touch A so B is the LRU, then insert C: B must be evicted.
        assert!(cache.get_or_prepare(&g, &qa, &opts).unwrap().1);
        cache.get_or_prepare(&g, &qc, &opts).unwrap();
        let c = cache.counters();
        assert_eq!((c.size, c.evictions), (2, 1));
        assert!(cache.get_or_prepare(&g, &qa, &opts).unwrap().1, "A kept");
        assert!(cache.get_or_prepare(&g, &qc, &opts).unwrap().1, "C kept");
        assert!(
            !cache.get_or_prepare(&g, &qb, &opts).unwrap().1,
            "B evicted"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PrepareCache::new(0);
        let g = test_graph(5);
        let q = parse_query("Blue(x)").unwrap();
        let opts = PrepareOpts::default();
        assert!(!cache.get_or_prepare(&g, &q, &opts).unwrap().1);
        assert!(!cache.get_or_prepare(&g, &q, &opts).unwrap().1);
        let c = cache.counters();
        assert_eq!((c.size, c.misses, c.hits), (0, 2, 0));
    }
}
