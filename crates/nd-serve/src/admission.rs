//! Admission control: the PR-1 [`Budget`] governor, reused at serve time.
//!
//! Preprocessing budgets cap how much work *building* an index may cost;
//! admission control caps how much work may be *queued against* one. The
//! same [`Budget`] vocabulary maps onto the serving side:
//!
//! * `node_expansions` — maximum requests queued or in flight;
//! * `memory_bytes` — maximum approximate bytes of queued requests
//!   (see [`crate::request::Request::cost_bytes`]);
//! * `wall_clock` — the default per-request deadline.
//!
//! A submit that would exceed a cap is rejected *synchronously* with a
//! typed [`BudgetExceeded`] (wrapped in `ServeError::Overloaded`) — the
//! queue never grows unboundedly, and clients get backpressure they can
//! act on instead of silent latency collapse.
//!
//! Unlike the single-threaded `BudgetTracker` (`Cell` counters), the
//! governor here is shared across submitters and workers, so spend lives
//! in atomics. Release is RAII: an [`AdmissionPermit`] rides with the
//! batch through the queue and restores the spend when the batch is done
//! (or dropped on any error path).

use nd_graph::budget::{Budget, BudgetExceeded, Phase, Resource};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[derive(Debug, Default)]
struct Spend {
    requests: AtomicU64,
    bytes: AtomicU64,
}

/// Shared admission governor for one pool.
#[derive(Debug)]
pub struct Admission {
    max_requests: Option<u64>,
    max_bytes: Option<u64>,
    default_deadline: Option<Duration>,
    spend: Arc<Spend>,
}

impl Admission {
    /// Interpret `budget` as serving caps (see module docs).
    pub fn new(budget: Budget) -> Admission {
        Admission {
            max_requests: budget.node_expansions,
            max_bytes: budget.memory_bytes,
            default_deadline: budget.wall_clock,
            spend: Arc::new(Spend::default()),
        }
    }

    /// The per-request deadline implied by the budget's `wall_clock` cap.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    /// Requests currently queued or in flight.
    pub fn inflight_requests(&self) -> u64 {
        self.spend.requests.load(Ordering::Relaxed)
    }

    /// Try to admit a batch of `requests` totalling `bytes`. On success
    /// the returned permit holds the spend until dropped.
    pub fn try_admit(&self, requests: u64, bytes: u64) -> Result<AdmissionPermit, BudgetExceeded> {
        let spent_req = self.spend.requests.fetch_add(requests, Ordering::AcqRel) + requests;
        if let Some(cap) = self.max_requests {
            if spent_req > cap {
                self.spend.requests.fetch_sub(requests, Ordering::AcqRel);
                return Err(BudgetExceeded {
                    phase: Phase::Admission,
                    resource: Resource::NodeExpansions,
                    spent: spent_req,
                    cap,
                });
            }
        }
        let spent_bytes = self.spend.bytes.fetch_add(bytes, Ordering::AcqRel) + bytes;
        if let Some(cap) = self.max_bytes {
            if spent_bytes > cap {
                self.spend.requests.fetch_sub(requests, Ordering::AcqRel);
                self.spend.bytes.fetch_sub(bytes, Ordering::AcqRel);
                return Err(BudgetExceeded {
                    phase: Phase::Admission,
                    resource: Resource::MemoryBytes,
                    spent: spent_bytes,
                    cap,
                });
            }
        }
        Ok(AdmissionPermit {
            spend: Arc::clone(&self.spend),
            requests,
            bytes,
        })
    }
}

/// RAII spend held by an admitted batch; dropping it releases the
/// admission capacity (on completion, deadline reap, or panic unwind).
#[derive(Debug)]
pub struct AdmissionPermit {
    spend: Arc<Spend>,
    requests: u64,
    bytes: u64,
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.spend
            .requests
            .fetch_sub(self.requests, Ordering::AcqRel);
        self.spend.bytes.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_admits() {
        let a = Admission::new(Budget::UNLIMITED);
        let mut permits = Vec::new();
        for _ in 0..1000 {
            permits.push(a.try_admit(10, 1_000_000).unwrap());
        }
        assert_eq!(a.inflight_requests(), 10_000);
        drop(permits);
        assert_eq!(a.inflight_requests(), 0);
    }

    #[test]
    fn request_cap_rejects_and_rolls_back() {
        let a = Admission::new(Budget::UNLIMITED.with_node_expansions(5));
        let p1 = a.try_admit(4, 0).unwrap();
        let err = a.try_admit(2, 0).unwrap_err();
        assert_eq!(err.phase, Phase::Admission);
        assert_eq!(err.resource, Resource::NodeExpansions);
        assert_eq!(err.cap, 5);
        // The failed admit must not leak spend.
        assert_eq!(a.inflight_requests(), 4);
        drop(p1);
        let _p2 = a.try_admit(5, 0).unwrap();
    }

    #[test]
    fn byte_cap_rejects() {
        let a = Admission::new(Budget::UNLIMITED.with_memory_bytes(100));
        let _p = a.try_admit(1, 80).unwrap();
        let err = a.try_admit(1, 40).unwrap_err();
        assert_eq!(err.resource, Resource::MemoryBytes);
        assert_eq!(a.inflight_requests(), 1);
    }
}
