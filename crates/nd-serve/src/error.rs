//! Typed serving-layer errors.

use nd_core::QueryError;
use nd_graph::BudgetExceeded;
use std::fmt;
use std::time::Duration;

/// Why the serving runtime refused or failed a request.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeError {
    /// Admission control rejected the request: accepting it would push
    /// queued + in-flight work past the configured [`nd_graph::Budget`].
    /// Callers should back off and retry; the server never queues
    /// unboundedly.
    Overloaded(BudgetExceeded),
    /// The request's deadline expired before a worker started it.
    DeadlineExceeded {
        /// How long the request waited in the queue before being reaped.
        waited: Duration,
    },
    /// The request itself was malformed (wrong arity, vertex out of
    /// range) — a client error, not a server state.
    Query(QueryError),
    /// The pool is shutting down (or a worker disappeared mid-request).
    Shutdown,
    /// A worker panicked while executing this request. The panic was
    /// caught at the request boundary: the request is quarantined with
    /// this error, the rest of its batch still executes, and the worker
    /// keeps serving. The payload is the panic message.
    WorkerPanic(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded(e) => write!(f, "server overloaded: {e}"),
            ServeError::DeadlineExceeded { waited } => {
                write!(f, "deadline exceeded after queueing for {waited:?}")
            }
            ServeError::Query(e) => write!(f, "bad request: {e}"),
            ServeError::Shutdown => write!(f, "server shutting down"),
            ServeError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Overloaded(e) => Some(e),
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        ServeError::Query(e)
    }
}
