//! # nd-serve — a concurrent query-serving runtime
//!
//! The paper's economics are *prepare once, probe many*: after
//! `O(|G|^{1+ε})` preprocessing (Theorem 2.3), `test`/`next_solution`
//! answer in constant time and never mutate the index. That is exactly a
//! serving workload, and this crate is the runtime for it:
//!
//! * [`Snapshot`] — one graph + one prepared query behind an [`Arc`],
//!   immutable and `Send + Sync` (statically asserted below), shared by
//!   every worker and client thread with zero synchronization.
//! * [`ServerPool`] — a work-stealing pool of std threads executing
//!   batched [`Request`]s ([`Request::Test`] / [`Request::NextSolution`] /
//!   [`Request::EnumeratePage`]) with per-request deadlines.
//! * [`Admission`](admission::Admission) — the PR-1 [`nd_graph::Budget`]
//!   governor reinterpreted as admission control: bounded queues and typed
//!   [`ServeError::Overloaded`] backpressure instead of unbounded queueing.
//! * [`Metrics`] — lock-free counters and log2 latency histograms per
//!   request kind, exported as JSON through [`MetricsSnapshot::to_json`]
//!   together with prepare-phase timings.
//!
//! ```
//! use nd_serve::{Request, Response, ServeOpts, ServerPool, Snapshot};
//! use nd_core::PrepareOpts;
//! use nd_logic::parse_query;
//!
//! let mut g = nd_graph::generators::grid(6, 6);
//! g.add_color((0..36).step_by(3).collect(), Some("Blue".into()));
//! let q = parse_query("dist(x,y) <= 2 && Blue(y)").unwrap();
//! let snap = Snapshot::build_owned(g, &q, &PrepareOpts::default()).unwrap();
//!
//! let pool = ServerPool::start(snap, &ServeOpts { workers: 2, ..Default::default() });
//! match pool.call(Request::Test { tuple: vec![0, 3] }).unwrap() {
//!     Response::Test(hit) => println!("member: {hit}"),
//!     _ => unreachable!(),
//! }
//! ```
//!
//! Architecture rationale lives in DESIGN.md §5; `ndq serve` and
//! `ndq bench-serve` are the CLI front-ends.

pub mod admission;
pub mod cache;
pub mod error;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod request;
pub mod session;
pub mod snapshot;

pub use admission::{Admission, AdmissionPermit};
pub use cache::{CacheCounters, PrepareCache, DEFAULT_CACHE_CAPACITY};
pub use error::ServeError;
pub use metrics::{HistogramSnapshot, KindSnapshot, LatencyHistogram, Metrics, MetricsSnapshot};
pub use pool::{BatchHandle, ServeOpts, ServerPool, CHAOS_PANIC_MSG};
pub use protocol::{handle_command, Reply, PROTOCOL_HELP};
pub use request::{Request, RequestKind, Response, REQUEST_KINDS};
pub use session::{Session, SESSION_PROTOCOL_HELP};
pub use snapshot::Snapshot;

use std::sync::Arc;

// ---------------------------------------------------------------------
// Thread-safety audit, as compile-time facts. The whole value of a
// snapshot is that it can be shared across threads without locks; if a
// future change smuggles a `Cell`/`Rc` into the index structures, the
// build breaks here instead of the behavior breaking in production.
// ---------------------------------------------------------------------
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Snapshot>();
    assert_send_sync::<Arc<nd_graph::ColoredGraph>>();
    assert_send_sync::<nd_core::SharedPreparedQuery>();
    assert_send_sync::<ServerPool>();
    assert_send_sync::<Metrics>();
    assert_send_sync::<MetricsSnapshot>();
    assert_send_sync::<Admission>();
    assert_send_sync::<ServeError>();
    assert_send_sync::<Request>();
    assert_send_sync::<Response>();
    assert_send_sync::<PrepareCache>();
    assert_send_sync::<Session>();
    // Handles move to a waiting thread but are owned by one client.
    assert_send::<BatchHandle>();
    assert_send::<AdmissionPermit>();
};
