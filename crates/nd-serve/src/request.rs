//! The serving runtime's wire-level unit of work.
//!
//! Every request is one of the paper's three constant-time primitives;
//! batches of requests ride through the pool together so dispatch overhead
//! amortizes across the (sub-microsecond) per-probe work.

use nd_graph::Vertex;

/// One query-serving request against a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Corollary 2.4: is `tuple` a solution?
    Test { tuple: Vec<Vertex> },
    /// Theorem 2.3: smallest solution `≥ from`.
    NextSolution { from: Vec<Vertex> },
    /// Corollary 2.5, paged: up to `limit` solutions `≥ from`, plus the
    /// resume cursor.
    EnumeratePage { from: Vec<Vertex>, limit: usize },
}

/// Request kind, for metrics bucketing. `as usize` indexes metric arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestKind {
    Test = 0,
    NextSolution = 1,
    EnumeratePage = 2,
}

/// All request kinds, in metric-array order.
pub const REQUEST_KINDS: [RequestKind; 3] = [
    RequestKind::Test,
    RequestKind::NextSolution,
    RequestKind::EnumeratePage,
];

impl RequestKind {
    /// Stable machine-readable name (JSON keys, CLI output).
    pub fn name(self) -> &'static str {
        match self {
            RequestKind::Test => "test",
            RequestKind::NextSolution => "next_solution",
            RequestKind::EnumeratePage => "enumerate_page",
        }
    }
}

impl Request {
    pub fn kind(&self) -> RequestKind {
        match self {
            Request::Test { .. } => RequestKind::Test,
            Request::NextSolution { .. } => RequestKind::NextSolution,
            Request::EnumeratePage { .. } => RequestKind::EnumeratePage,
        }
    }

    /// Approximate queued footprint in bytes, charged against the
    /// admission budget's `memory_bytes` cap while the request waits.
    pub fn cost_bytes(&self) -> u64 {
        let tuple_bytes = |t: &Vec<Vertex>| (t.len() * std::mem::size_of::<Vertex>()) as u64;
        match self {
            Request::Test { tuple } => 32 + tuple_bytes(tuple),
            Request::NextSolution { from } => 32 + tuple_bytes(from),
            // A page holds its (future) result rows too; charge the
            // requested limit so huge pages count as huge queue entries.
            Request::EnumeratePage { from, limit } => 32 + tuple_bytes(from) * (1 + *limit as u64),
        }
    }
}

/// The answer to one [`Request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    Test(bool),
    NextSolution(Option<Vec<Vertex>>),
    /// One page of solutions plus the cursor to pass as the next `from`
    /// (`None` when enumeration is exhausted).
    Page {
        solutions: Vec<Vec<Vertex>>,
        next_from: Option<Vec<Vertex>>,
    },
}
