//! A serving session: one pool plus a prepared-query cache, with a
//! `prepare` command on top of the base line protocol.
//!
//! [`handle_command`](crate::protocol::handle_command) serves probes
//! against one fixed snapshot. A [`Session`] wraps that with query
//! *switching*: `prepare <query>` re-points the session at a (possibly
//! cached) snapshot of the same graph, restarting the worker pool over
//! it. Repeated `prepare`s of a query already in the [`PrepareCache`] are
//! O(1) — a lookup and an `Arc` bump instead of a cover/kernel/store
//! rebuild.
//!
//! The session also extends the `metrics` reply with the cache's
//! hit/miss/eviction counters under `"prepare_cache"`, and `help` with
//! the extended grammar.

use crate::cache::PrepareCache;
use crate::pool::{ServeOpts, ServerPool};
use crate::protocol::{handle_command, Reply};
use crate::snapshot::Snapshot;
use nd_core::{PrepareError, PrepareOpts};
use nd_graph::ColoredGraph;
use nd_logic::ast::Query;
use nd_logic::parse_query;
use std::sync::Arc;

/// Command summary for sessions (the base protocol plus `prepare`).
pub const SESSION_PROTOCOL_HELP: &str =
    "commands: prepare QUERY | test a,b,.. | next a,b,.. | page a,b,.. LIMIT | stats | metrics | help | quit";

/// One client-facing serving session over a shared graph.
pub struct Session {
    graph: Arc<ColoredGraph>,
    prepare_opts: PrepareOpts,
    serve_opts: ServeOpts,
    cache: PrepareCache,
    pool: ServerPool,
}

impl Session {
    /// Prepare the initial query (through the cache) and start serving.
    pub fn start(
        graph: Arc<ColoredGraph>,
        q: &Query,
        prepare_opts: PrepareOpts,
        serve_opts: ServeOpts,
        cache_capacity: usize,
    ) -> Result<Session, PrepareError> {
        let cache = PrepareCache::new(cache_capacity);
        let (snapshot, _) = cache.get_or_prepare(&graph, q, &prepare_opts)?;
        let pool = ServerPool::start(snapshot, &serve_opts);
        Ok(Session {
            graph,
            prepare_opts,
            serve_opts,
            cache,
            pool,
        })
    }

    /// The pool currently serving probes.
    pub fn pool(&self) -> &ServerPool {
        &self.pool
    }

    /// The session's prepare cache (counters for tests and metrics).
    pub fn cache(&self) -> &PrepareCache {
        &self.cache
    }

    /// Current snapshot convenience.
    pub fn snapshot(&self) -> &Snapshot {
        self.pool.snapshot()
    }

    /// The session's metrics document: the pool's metrics JSON extended
    /// with the prepare-cache counters.
    pub fn metrics_json(&self) -> String {
        self.pool
            .metrics_json_with(&[("prepare_cache", self.cache.counters().to_json())])
    }

    /// Execute one protocol line. `prepare`, `metrics` and `help` are
    /// handled here; everything else delegates to the base protocol
    /// against the current pool.
    pub fn handle(&mut self, line: &str) -> Option<Reply> {
        let trimmed = line.trim();
        let (cmd, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (trimmed, ""),
        };
        match cmd {
            "prepare" => Some(Reply::Line(self.prepare(rest))),
            "metrics" => Some(Reply::Line(self.metrics_json())),
            "help" => Some(Reply::Line(SESSION_PROTOCOL_HELP.to_string())),
            _ => handle_command(&self.pool, line),
        }
    }

    /// Switch the session to `query_src`, reusing a cached snapshot when
    /// one exists. Replies `prepared hit|miss arity=K rung=R` on success,
    /// `err usage:`/`err prepare:` on failure (the old snapshot keeps
    /// serving).
    fn prepare(&mut self, query_src: &str) -> String {
        if query_src.is_empty() {
            return format!("err usage: expected: prepare QUERY ({SESSION_PROTOCOL_HELP})");
        }
        let q = match parse_query(query_src) {
            Ok(q) => q,
            Err(e) => return format!("err usage: bad query: {e}"),
        };
        match self
            .cache
            .get_or_prepare(&self.graph, &q, &self.prepare_opts)
        {
            Ok((snapshot, hit)) => {
                let arity = snapshot.arity();
                let rung = snapshot.stats().rung.name();
                // Restart the workers over the new snapshot; the old pool
                // drains and joins on drop.
                let old = std::mem::replace(
                    &mut self.pool,
                    ServerPool::start(snapshot, &self.serve_opts),
                );
                old.shutdown();
                let tag = if hit { "hit" } else { "miss" };
                format!("prepared {tag} arity={arity} rung={rung}")
            }
            Err(e) => format!("err prepare: {e}"),
        }
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("query", &self.pool.snapshot().query_src())
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PROTOCOL_HELP;
    use nd_graph::generators;

    fn session() -> Session {
        let mut g = generators::grid(6, 6);
        g.add_color((0..36).step_by(3).collect(), Some("Blue".into()));
        Session::start(
            g.into_shared(),
            &parse_query("dist(x,y) <= 2 && Blue(y)").unwrap(),
            PrepareOpts::default(),
            ServeOpts {
                workers: 1,
                ..Default::default()
            },
            4,
        )
        .unwrap()
    }

    fn line(reply: Option<Reply>) -> String {
        match reply {
            Some(Reply::Line(s)) => s,
            other => panic!("expected a line reply, got {:?}", other.is_some()),
        }
    }

    #[test]
    fn repeated_prepare_is_a_cache_hit() {
        let mut s = session();
        let first = line(s.handle("prepare E(x,y) && Blue(x)"));
        assert!(first.starts_with("prepared miss"), "{first}");
        let second = line(s.handle("prepare E(x,y) && Blue(x)"));
        assert!(second.starts_with("prepared hit"), "{second}");
        // The initial query is still cached from Session::start.
        let back = line(s.handle("prepare dist(x,y) <= 2 && Blue(y)"));
        assert!(back.starts_with("prepared hit"), "{back}");
        // Probes keep working against the switched snapshot.
        let t = line(s.handle("test 0,3"));
        assert!(t == "true" || t == "false", "{t}");
    }

    #[test]
    fn metrics_include_cache_counters() {
        let mut s = session();
        s.handle("prepare E(x,y)");
        s.handle("prepare E(x,y)");
        let m = line(s.handle("metrics"));
        assert!(m.contains("\"prepare_cache\":{"), "{m}");
        assert!(m.contains("\"hits\":1"), "{m}");
        assert!(m.contains("\"misses\":2"), "{m}"); // initial + E(x,y)
        assert!(m.contains("\"requests\":{"), "{m}");
    }

    #[test]
    fn bad_prepare_keeps_serving() {
        let mut s = session();
        let err = line(s.handle("prepare ((("));
        assert!(err.starts_with("err usage: bad query"), "{err}");
        let empty = line(s.handle("prepare"));
        assert!(empty.starts_with("err usage: expected: prepare"), "{empty}");
        let t = line(s.handle("test 0,3"));
        assert!(t == "true" || t == "false", "{t}");
    }

    #[test]
    fn help_advertises_prepare() {
        let mut s = session();
        let h = line(s.handle("help"));
        assert!(h.contains("prepare QUERY"), "{h}");
        assert!(h.contains("page"), "{h}");
        // The base protocol help must stay a strict subset story.
        assert!(PROTOCOL_HELP.contains("page"));
    }
}
