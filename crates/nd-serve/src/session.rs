//! A serving session: one pool plus a prepared-query cache, with a
//! `prepare` command on top of the base line protocol.
//!
//! [`handle_command`](crate::protocol::handle_command) serves probes
//! against one fixed snapshot. A [`Session`] wraps that with query
//! *switching*: `prepare <query>` re-points the session at a (possibly
//! cached) snapshot of the same graph, restarting the worker pool over
//! it. Repeated `prepare`s of a query already in the [`PrepareCache`] are
//! O(1) — a lookup and an `Arc` bump instead of a cover/kernel/store
//! rebuild.
//!
//! The session also extends the `metrics` reply with the cache's
//! hit/miss/eviction counters under `"prepare_cache"`, and `help` with
//! the extended grammar.

use crate::cache::PrepareCache;
use crate::pool::{ServeOpts, ServerPool};
use crate::protocol::{handle_command, Reply};
use crate::snapshot::Snapshot;
use nd_core::{LoadedIndex, PrepareError, PrepareOpts, SharedPreparedQuery};
use nd_graph::json::JsonObject;
use nd_graph::ColoredGraph;
use nd_logic::ast::Query;
use nd_logic::parse_query;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Command summary for sessions (the base protocol plus `prepare`,
/// `swap` and `shutdown`).
pub const SESSION_PROTOCOL_HELP: &str =
    "commands: prepare QUERY | swap PATH | test a,b,.. | next a,b,.. | page a,b,.. LIMIT | stats | metrics | help | shutdown | quit";

/// How long `shutdown` waits for queued work before typed-rejecting it.
const SHUTDOWN_DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// One client-facing serving session over a shared graph.
pub struct Session {
    graph: Arc<ColoredGraph>,
    prepare_opts: PrepareOpts,
    serve_opts: ServeOpts,
    cache: PrepareCache,
    pool: ServerPool,
    /// Snapshot generation: bumped on every pool replacement (`prepare`
    /// or `swap`). In-flight work always finishes on the epoch it was
    /// admitted under — the replaced pool drains fully before joining.
    epoch: u64,
    /// How many of those replacements were `swap`s of a persisted index.
    swaps: u64,
    /// Set by `shutdown`: probes get typed `err shutdown:` replies, and
    /// `prepare`/`swap` refuse to resurrect the pool.
    closed: bool,
}

impl Session {
    /// Prepare the initial query (through the cache) and start serving.
    pub fn start(
        graph: Arc<ColoredGraph>,
        q: &Query,
        prepare_opts: PrepareOpts,
        serve_opts: ServeOpts,
        cache_capacity: usize,
    ) -> Result<Session, PrepareError> {
        let cache = PrepareCache::new(cache_capacity);
        let (snapshot, _) = cache.get_or_prepare(&graph, q, &prepare_opts)?;
        let pool = ServerPool::start(snapshot, &serve_opts);
        Ok(Session {
            graph,
            prepare_opts,
            serve_opts,
            cache,
            pool,
            epoch: 0,
            swaps: 0,
            closed: false,
        })
    }

    /// Start serving from an index loaded off disk (a warm start): no
    /// preprocessing runs. `load_ms` is the observed load wall-clock,
    /// reported as the snapshot's build time. Later `prepare` commands
    /// work as usual, against the loaded graph.
    pub fn start_loaded(
        loaded: LoadedIndex,
        prepare_opts: PrepareOpts,
        serve_opts: ServeOpts,
        cache_capacity: usize,
        load_ms: u64,
    ) -> Session {
        let graph = loaded.prepared.graph_shared();
        let snapshot = Snapshot::from_prepared(loaded.prepared, loaded.query_src, load_ms);
        let pool = ServerPool::start(snapshot, &serve_opts);
        Session {
            graph,
            prepare_opts,
            serve_opts,
            cache: PrepareCache::new(cache_capacity),
            pool,
            epoch: 0,
            swaps: 0,
            closed: false,
        }
    }

    /// The pool currently serving probes.
    pub fn pool(&self) -> &ServerPool {
        &self.pool
    }

    /// The session's prepare cache (counters for tests and metrics).
    pub fn cache(&self) -> &PrepareCache {
        &self.cache
    }

    /// Current snapshot convenience.
    pub fn snapshot(&self) -> &Snapshot {
        self.pool.snapshot()
    }

    /// The snapshot generation currently serving (see the `epoch` field).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `shutdown` has been issued.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// The session's metrics document: the pool's metrics JSON extended
    /// with the prepare-cache counters and the session's epoch state.
    pub fn metrics_json(&self) -> String {
        let mut session = JsonObject::new();
        session
            .field_u64("epoch", self.epoch)
            .field_u64("swaps", self.swaps)
            .field_bool("closed", self.closed);
        self.pool.metrics_json_with(&[
            ("prepare_cache", self.cache.counters().to_json()),
            ("session", session.finish()),
        ])
    }

    /// Execute one protocol line. `prepare`, `metrics` and `help` are
    /// handled here; everything else delegates to the base protocol
    /// against the current pool.
    pub fn handle(&mut self, line: &str) -> Option<Reply> {
        let trimmed = line.trim();
        let (cmd, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (trimmed, ""),
        };
        match cmd {
            "prepare" => Some(Reply::Line(self.prepare(rest))),
            "swap" => Some(Reply::Line(self.swap(rest))),
            "shutdown" => Some(Reply::Line(self.shutdown_cmd())),
            "metrics" => Some(Reply::Line(self.metrics_json())),
            "help" => Some(Reply::Line(SESSION_PROTOCOL_HELP.to_string())),
            _ => handle_command(&self.pool, line),
        }
    }

    /// Switch the session to `query_src`, reusing a cached snapshot when
    /// one exists. Replies `prepared hit|miss arity=K rung=R` on success,
    /// `err usage:`/`err prepare:` on failure (the old snapshot keeps
    /// serving).
    fn prepare(&mut self, query_src: &str) -> String {
        if self.closed {
            return "err shutdown: session is shut down".to_string();
        }
        if query_src.is_empty() {
            return format!("err usage: expected: prepare QUERY ({SESSION_PROTOCOL_HELP})");
        }
        let q = match parse_query(query_src) {
            Ok(q) => q,
            Err(e) => return format!("err usage: bad query: {e}"),
        };
        match self
            .cache
            .get_or_prepare(&self.graph, &q, &self.prepare_opts)
        {
            Ok((snapshot, hit)) => {
                let arity = snapshot.arity();
                let rung = snapshot.stats().rung.name();
                self.install(snapshot);
                let tag = if hit { "hit" } else { "miss" };
                format!("prepared {tag} arity={arity} rung={rung}")
            }
            Err(e) => format!("err prepare: {e}"),
        }
    }

    /// Hot-swap the serving index to one loaded from `path` (the
    /// `swap PATH` protocol verb). On success the epoch advances and the
    /// reply is `swapped epoch=N ..`; on any load failure — missing file,
    /// truncation, bit flips, version skew — the current snapshot keeps
    /// serving and the reply is a typed `err read:` line. Requests
    /// admitted before the swap all complete on the old epoch: the
    /// replaced pool drains its queues fully before joining, so a swap
    /// never fails in-flight work.
    fn swap(&mut self, path: &str) -> String {
        if self.closed {
            return "err shutdown: session is shut down".to_string();
        }
        if path.is_empty() {
            return format!("err usage: expected: swap PATH ({SESSION_PROTOCOL_HELP})");
        }
        let t0 = Instant::now();
        let loaded = match SharedPreparedQuery::load_index(Path::new(path)) {
            Ok(l) => l,
            Err(e) => return format!("err read: {e}"),
        };
        let load_ms = t0.elapsed().as_millis() as u64;
        // The loaded graph is a fresh allocation, so every cached snapshot
        // (keyed on graph identity) is stale: re-point the session's graph
        // and start a fresh cache for subsequent `prepare`s.
        self.graph = loaded.prepared.graph_shared();
        self.cache = PrepareCache::new(self.cache.counters().capacity);
        let snapshot = Snapshot::from_prepared(loaded.prepared, loaded.query_src, load_ms);
        let arity = snapshot.arity();
        let rung = snapshot.stats().rung.name().to_string();
        self.install(snapshot);
        self.swaps += 1;
        format!(
            "swapped epoch={} arity={arity} rung={rung} load_ms={load_ms}",
            self.epoch
        )
    }

    /// Replace the worker pool with one serving `snapshot`, advancing the
    /// epoch. The old pool drains and joins: every request it admitted is
    /// answered (or typed-rejected by its own deadline logic) before the
    /// replacement completes.
    fn install(&mut self, snapshot: Snapshot) {
        let old = std::mem::replace(
            &mut self.pool,
            ServerPool::start(snapshot, &self.serve_opts),
        );
        old.shutdown();
        self.epoch += 1;
    }

    /// Graceful shutdown (the `shutdown` protocol verb): stop admitting,
    /// drain queued work up to a deadline, typed-reject the remainder.
    /// The session object stays alive so further probes get typed
    /// `err shutdown:` replies instead of a dropped connection; `quit`
    /// ends the conversation.
    fn shutdown_cmd(&mut self) -> String {
        self.closed = true;
        self.pool.begin_shutdown();
        let drained = self.pool.drain_with_deadline(SHUTDOWN_DRAIN_DEADLINE);
        format!("shutdown drained={drained}")
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("query", &self.pool.snapshot().query_src())
            .field("cache", &self.cache)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::PROTOCOL_HELP;
    use nd_graph::generators;

    fn session() -> Session {
        let mut g = generators::grid(6, 6);
        g.add_color((0..36).step_by(3).collect(), Some("Blue".into()));
        Session::start(
            g.into_shared(),
            &parse_query("dist(x,y) <= 2 && Blue(y)").unwrap(),
            PrepareOpts::default(),
            ServeOpts {
                workers: 1,
                ..Default::default()
            },
            4,
        )
        .unwrap()
    }

    /// Total over all reply shapes: non-line replies come back as
    /// sentinel strings so downstream assertions report them legibly.
    fn line(reply: Option<Reply>) -> String {
        match reply {
            Some(Reply::Line(s)) => s,
            Some(Reply::Quit) => "<quit>".to_string(),
            None => "<no reply>".to_string(),
        }
    }

    #[test]
    fn repeated_prepare_is_a_cache_hit() {
        let mut s = session();
        let first = line(s.handle("prepare E(x,y) && Blue(x)"));
        assert!(first.starts_with("prepared miss"), "{first}");
        let second = line(s.handle("prepare E(x,y) && Blue(x)"));
        assert!(second.starts_with("prepared hit"), "{second}");
        // The initial query is still cached from Session::start.
        let back = line(s.handle("prepare dist(x,y) <= 2 && Blue(y)"));
        assert!(back.starts_with("prepared hit"), "{back}");
        // Probes keep working against the switched snapshot.
        let t = line(s.handle("test 0,3"));
        assert!(t == "true" || t == "false", "{t}");
    }

    #[test]
    fn metrics_include_cache_counters() {
        let mut s = session();
        s.handle("prepare E(x,y)");
        s.handle("prepare E(x,y)");
        let m = line(s.handle("metrics"));
        assert!(m.contains("\"prepare_cache\":{"), "{m}");
        assert!(m.contains("\"hits\":1"), "{m}");
        assert!(m.contains("\"misses\":2"), "{m}"); // initial + E(x,y)
        assert!(m.contains("\"requests\":{"), "{m}");
    }

    #[test]
    fn bad_prepare_keeps_serving() {
        let mut s = session();
        let err = line(s.handle("prepare ((("));
        assert!(err.starts_with("err usage: bad query"), "{err}");
        let empty = line(s.handle("prepare"));
        assert!(empty.starts_with("err usage: expected: prepare"), "{empty}");
        let t = line(s.handle("test 0,3"));
        assert!(t == "true" || t == "false", "{t}");
    }

    #[test]
    fn help_advertises_prepare() {
        let mut s = session();
        let h = line(s.handle("help"));
        assert!(h.contains("prepare QUERY"), "{h}");
        assert!(h.contains("swap PATH"), "{h}");
        assert!(h.contains("shutdown"), "{h}");
        assert!(h.contains("page"), "{h}");
        // The base protocol help must stay a strict subset story.
        assert!(PROTOCOL_HELP.contains("page"));
    }

    #[test]
    fn swap_errors_are_typed_and_keep_serving() {
        let mut s = session();
        let usage = line(s.handle("swap"));
        assert!(usage.starts_with("err usage: expected: swap"), "{usage}");
        let missing = line(s.handle("swap /nonexistent/nd-idx.bin"));
        assert!(missing.starts_with("err read:"), "{missing}");
        assert_eq!(s.epoch(), 0, "failed swap must not advance the epoch");
        let t = line(s.handle("test 0,3"));
        assert!(t == "true" || t == "false", "{t}");
    }

    #[test]
    fn shutdown_is_graceful_and_typed() {
        let mut s = session();
        let r = line(s.handle("shutdown"));
        assert_eq!(r, "shutdown drained=true");
        assert!(s.is_closed());
        // Probes, prepares and swaps now get typed rejections — the
        // session never drops the conversation or panics.
        let t = line(s.handle("test 0,3"));
        assert!(t.starts_with("err shutdown:"), "{t}");
        let p = line(s.handle("prepare E(x,y)"));
        assert!(p.starts_with("err shutdown:"), "{p}");
        let w = line(s.handle("swap idx.bin"));
        assert!(w.starts_with("err shutdown:"), "{w}");
        // Idempotent.
        let again = line(s.handle("shutdown"));
        assert!(again.starts_with("shutdown drained="), "{again}");
    }

    #[test]
    fn prepare_advances_epoch_and_metrics_report_it() {
        let mut s = session();
        assert_eq!(s.epoch(), 0);
        line(s.handle("prepare E(x,y)"));
        assert_eq!(s.epoch(), 1);
        let m = line(s.handle("metrics"));
        assert!(m.contains("\"session\":{"), "{m}");
        assert!(m.contains("\"epoch\":1"), "{m}");
        assert!(m.contains("\"swaps\":0"), "{m}");
        assert!(m.contains("\"worker_panics\":0"), "{m}");
    }
}
