//! Shared, immutable index snapshots.
//!
//! The paper's contract is *prepare once, probe forever*: after the
//! pseudo-linear preprocessing of Theorem 2.3, `test`/`next_solution`
//! answer in constant time and never mutate the index. A [`Snapshot`]
//! packages one graph and one prepared query behind an [`Arc`] so any
//! number of worker threads can serve probes against the same physical
//! index with zero synchronization — the whole structure is plain owned
//! data, `Send + Sync` by construction (statically asserted in
//! `lib.rs`).

use crate::error::ServeError;
use crate::request::{Request, Response};
use nd_core::{PrepareError, PrepareOpts, PrepareStats, SharedPreparedQuery};
use nd_graph::ColoredGraph;
use nd_logic::ast::Query;
use std::sync::Arc;
use std::time::Instant;

struct SnapshotInner {
    query: SharedPreparedQuery,
    stats: PrepareStats,
    query_src: String,
    /// Wall-clock of the whole `Snapshot::build` (parse excluded), for the
    /// metrics layer's prepare-phase timings.
    build_ms: u64,
}

/// An immutable, shareable (graph, prepared query) pair. `Clone` is an
/// `Arc` bump — hand copies to every worker and every client thread.
#[derive(Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

impl Snapshot {
    /// Prepare `q` over a shared graph. The graph `Arc` is co-owned by the
    /// returned snapshot, so the caller may drop (or keep sharing) its
    /// handle freely.
    pub fn build(
        graph: Arc<ColoredGraph>,
        q: &Query,
        opts: &PrepareOpts,
    ) -> Result<Snapshot, PrepareError> {
        let t0 = Instant::now();
        let query = SharedPreparedQuery::prepare(graph, q, opts)?;
        let stats = query.stats();
        Ok(Snapshot {
            inner: Arc::new(SnapshotInner {
                stats,
                query_src: q.to_string(),
                build_ms: t0.elapsed().as_millis() as u64,
                query,
            }),
        })
    }

    /// Wrap an already-prepared query — typically one deserialized from a
    /// persistent index file — in a snapshot without re-running the
    /// preprocessing. `build_ms` records whatever wall-clock produced the
    /// prepared query (the load time, for a warm start), so the metrics
    /// layer stays truthful about how this snapshot came to be.
    pub fn from_prepared(query: SharedPreparedQuery, query_src: String, build_ms: u64) -> Snapshot {
        let stats = query.stats();
        Snapshot {
            inner: Arc::new(SnapshotInner {
                stats,
                query_src,
                build_ms,
                query,
            }),
        }
    }

    /// Convenience over [`Snapshot::build`] for a graph not yet shared.
    pub fn build_owned(
        graph: ColoredGraph,
        q: &Query,
        opts: &PrepareOpts,
    ) -> Result<Snapshot, PrepareError> {
        Self::build(graph.into_shared(), q, opts)
    }

    pub fn graph(&self) -> &ColoredGraph {
        self.inner.query.graph()
    }

    /// The underlying prepared query, for direct (non-pooled) probing.
    pub fn prepared(&self) -> &SharedPreparedQuery {
        &self.inner.query
    }

    /// Index statistics captured at build time.
    pub fn stats(&self) -> &PrepareStats {
        &self.inner.stats
    }

    /// The query's source form (for logs and the metrics endpoint).
    pub fn query_src(&self) -> &str {
        &self.inner.query_src
    }

    /// Wall-clock milliseconds the snapshot build took.
    pub fn build_ms(&self) -> u64 {
        self.inner.build_ms
    }

    pub fn arity(&self) -> usize {
        self.inner.query.arity()
    }

    /// Execute one request. Pure read — safe from any thread, constant
    /// time per probe (plus output size for pages).
    pub fn execute(&self, req: &Request) -> Result<Response, ServeError> {
        let pq = &self.inner.query;
        match req {
            Request::Test { tuple } => Ok(Response::Test(pq.try_test(tuple)?)),
            Request::NextSolution { from } => {
                Ok(Response::NextSolution(pq.try_next_solution(from)?))
            }
            Request::EnumeratePage { from, limit } => {
                let solutions = pq.page(from, *limit)?;
                // A short page means enumeration is exhausted; a full page
                // resumes after its last row. `limit == 0` makes no
                // progress by definition — the cursor stays put.
                let next_from = if *limit == 0 {
                    Some(from.clone())
                } else if solutions.len() < *limit {
                    None
                } else {
                    solutions.last().and_then(|last| pq.lex_increment(last))
                };
                Ok(Response::Page {
                    solutions,
                    next_from,
                })
            }
        }
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("query", &self.inner.query_src)
            .field("n", &self.graph().n())
            .field("m", &self.graph().m())
            .field("arity", &self.arity())
            .field("rung", &self.inner.stats.rung)
            .finish()
    }
}
