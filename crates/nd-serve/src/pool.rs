//! The serving pool: work-stealing std-thread workers over one shared
//! [`Snapshot`].
//!
//! Architecture (DESIGN.md §5):
//!
//! * **Batches, not requests, are the unit of dispatch.** A probe is
//!   sub-microsecond; channel + queue overhead is not. Clients submit a
//!   `Vec<Request>` which travels the queue as one [`Job`] and is executed
//!   by one worker, so dispatch overhead amortizes across the batch.
//! * **Work stealing.** Each worker owns a deque; submits are spread
//!   round-robin. A worker pops its own deque from the front (FIFO — the
//!   oldest batch has the tightest deadline) and steals from the *back* of
//!   a victim's deque when idle, so skewed submit bursts rebalance.
//! * **Admission before enqueue.** The [`Admission`] governor (the PR-1
//!   `Budget`, reinterpreted) is charged synchronously at submit; an
//!   over-cap submit returns `ServeError::Overloaded` immediately and
//!   nothing is queued. Capacity is released by RAII when the job's
//!   permit drops.
//! * **Deadlines are reaped at dequeue.** A worker that picks up an
//!   expired job answers `DeadlineExceeded` without touching the index —
//!   under overload, stale work is shed instead of executed.

use crate::admission::{Admission, AdmissionPermit};
use crate::error::ServeError;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::request::{Request, Response, REQUEST_KINDS};
use crate::snapshot::Snapshot;
use nd_graph::json::JsonObject;
use nd_graph::Budget;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle worker sleeps between queue re-checks. The condvar is
/// notified on every submit, so this is only a lost-wakeup backstop.
const IDLE_PARK: Duration = Duration::from_millis(2);

/// Polling period of [`ServerPool::drain_with_deadline`]. The drain is a
/// shutdown-path operation, so a short sleep loop beats threading another
/// condvar through the hot submit path.
const DRAIN_POLL: Duration = Duration::from_micros(200);

/// Payload of chaos-injected worker panics (see
/// [`ServeOpts::chaos_panic_period`]).
pub const CHAOS_PANIC_MSG: &str = "chaos: injected worker panic";

/// Render a caught panic payload as a message for
/// [`ServeError::WorkerPanic`].
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Pool configuration.
#[derive(Clone, Debug)]
pub struct ServeOpts {
    /// Worker threads. `0` means one per available CPU.
    pub workers: usize,
    /// Admission-control budget: `node_expansions` caps queued+in-flight
    /// requests, `memory_bytes` caps queued request bytes, `wall_clock`
    /// is the default per-request deadline. [`Budget::UNLIMITED`] turns
    /// admission control off.
    pub admission: Budget,
    /// Chaos harness knob: when non-zero, every `chaos_panic_period`-th
    /// request (counted across all workers) panics *inside* the
    /// per-request recovery guard, exercising the
    /// [`ServeError::WorkerPanic`] quarantine path deterministically.
    /// `0` (the default) disables injection; production configs never set
    /// this.
    pub chaos_panic_period: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            workers: 0,
            admission: Budget::UNLIMITED,
            chaos_panic_period: 0,
        }
    }
}

type BatchResult = Vec<Result<Response, ServeError>>;

/// Per-kind request counts of a batch, skipping absent kinds — the metric
/// recording granularity.
fn count_by_kind(batch: &[Request]) -> impl Iterator<Item = (crate::request::RequestKind, u64)> {
    let mut counts = [0u64; REQUEST_KINDS.len()];
    for req in batch {
        counts[req.kind() as usize] += 1;
    }
    REQUEST_KINDS
        .into_iter()
        .zip(counts)
        .filter(|&(_, n)| n > 0)
}

struct Job {
    batch: Vec<Request>,
    submitted: Instant,
    deadline: Option<Instant>,
    tx: mpsc::Sender<BatchResult>,
    /// Held until the job finishes; dropping releases admission capacity.
    #[allow(dead_code)]
    permit: AdmissionPermit,
}

struct PoolShared {
    snapshot: Snapshot,
    queues: Vec<Mutex<VecDeque<Job>>>,
    idle: Mutex<()>,
    wake: Condvar,
    admission: Admission,
    metrics: Metrics,
    shutdown: AtomicBool,
    rr: AtomicUsize,
    /// Worker panics caught and converted to [`ServeError::WorkerPanic`]
    /// (or swallowed by the loop-level backstop). Relaxed: a counter, not
    /// a synchronization point.
    worker_panics: AtomicU64,
    /// See [`ServeOpts::chaos_panic_period`]; `0` = off.
    chaos_period: u64,
    chaos_ticks: AtomicU64,
}

impl PoolShared {
    /// Own queue front-first, then steal from victims back-first.
    fn find_job(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.queues[me].lock().ok()?.pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (me + off) % n;
            if let Some(job) = self.queues[victim].lock().ok()?.pop_back() {
                return Some(job);
            }
        }
        None
    }

    fn execute(&self, job: Job) {
        let Job {
            batch,
            submitted,
            deadline,
            tx,
            permit,
        } = job;
        // Metrics are recorded per *batch*, not per request: probes are
        // sub-µs, and per-request atomics on the shared counters become
        // the cross-worker scaling bottleneck (cache-line ping-pong).
        let results: BatchResult = if deadline.is_some_and(|d| Instant::now() >= d) {
            let waited = submitted.elapsed();
            for (kind, n) in count_by_kind(&batch) {
                self.metrics.record_deadline_missed(kind, n);
            }
            batch
                .iter()
                .map(|_| Err(ServeError::DeadlineExceeded { waited }))
                .collect()
        } else {
            let mut ok_by_kind = [0u64; REQUEST_KINDS.len()];
            let results: BatchResult = batch
                .iter()
                .map(|req| {
                    // Per-request recovery guard: a panic in the engine
                    // (or injected by the chaos knob) quarantines this
                    // request as a typed error; the rest of the batch
                    // still executes and the worker keeps serving.
                    let resp = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.maybe_inject_chaos();
                        self.snapshot.execute(req)
                    }))
                    .unwrap_or_else(|payload| {
                        self.worker_panics.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::WorkerPanic(panic_message(payload)))
                    });
                    match &resp {
                        Ok(_) => ok_by_kind[req.kind() as usize] += 1,
                        // Counted above, and not a client mistake.
                        Err(ServeError::WorkerPanic(_)) => {}
                        Err(_) => self.metrics.record_client_error(req.kind()),
                    }
                    resp
                })
                .collect();
            // Every request in the batch resolves when the batch does, so
            // one latency sample value covers them all.
            let latency_ns = submitted.elapsed().as_nanos() as u64;
            for (i, &n) in ok_by_kind.iter().enumerate() {
                self.metrics
                    .record_completed_many(REQUEST_KINDS[i], n, latency_ns);
            }
            results
        };
        // The client may have dropped its handle; that is not an error.
        let _ = tx.send(results);
        drop(permit);
    }

    /// Deterministic fault injection for the chaos harness: every
    /// `chaos_period`-th request panics. `panic_any` (not the macro) so
    /// the serving sources stay grep-clean of `panic!` outside tests.
    fn maybe_inject_chaos(&self) {
        if self.chaos_period > 0 {
            let tick = self.chaos_ticks.fetch_add(1, Ordering::Relaxed) + 1;
            if tick.is_multiple_of(self.chaos_period) {
                std::panic::panic_any(CHAOS_PANIC_MSG);
            }
        }
    }

    fn worker_loop(&self, me: usize) {
        loop {
            match self.find_job(me) {
                Some(job) => {
                    // Backstop for panics escaping the per-request guard
                    // (metrics, channel plumbing): the job's sender drops
                    // — its client sees `Shutdown` — but the worker
                    // thread survives and keeps draining the queues.
                    if std::panic::catch_unwind(AssertUnwindSafe(|| self.execute(job))).is_err() {
                        self.worker_panics.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => {
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Ok(guard) = self.idle.lock() {
                        // Timeout bounds the lost-wakeup window; spurious
                        // wakeups just re-poll the queues.
                        let _ = self.wake.wait_timeout(guard, IDLE_PARK);
                    }
                }
            }
        }
    }
}

/// Handle for one submitted batch; resolves to one result per request, in
/// submission order.
pub struct BatchHandle {
    rx: mpsc::Receiver<BatchResult>,
    len: usize,
}

impl std::fmt::Debug for BatchHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchHandle")
            .field("len", &self.len)
            .finish()
    }
}

impl BatchHandle {
    /// Block until the batch completes. If the pool shut down with the
    /// batch still queued, every slot reports [`ServeError::Shutdown`].
    pub fn wait(self) -> BatchResult {
        self.rx
            .recv()
            .unwrap_or_else(|_| vec![Err(ServeError::Shutdown); self.len])
    }
}

/// A running serving pool. Dropping (or [`ServerPool::shutdown`]) stops
/// the workers after they drain the queues.
pub struct ServerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerPool {
    /// Spin up the worker threads over a shared snapshot.
    pub fn start(snapshot: Snapshot, opts: &ServeOpts) -> ServerPool {
        let workers = if opts.workers > 0 {
            opts.workers
        } else {
            std::thread::available_parallelism().map_or(4, |p| p.get())
        };
        let shared = Arc::new(PoolShared {
            snapshot,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            admission: Admission::new(opts.admission),
            metrics: Metrics::new(),
            shutdown: AtomicBool::new(false),
            rr: AtomicUsize::new(0),
            worker_panics: AtomicU64::new(0),
            chaos_period: opts.chaos_panic_period,
            chaos_ticks: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nd-serve-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("spawn worker thread")
            })
            .collect();
        ServerPool {
            shared,
            workers: handles,
        }
    }

    /// Submit a batch with the admission budget's default deadline.
    pub fn submit(&self, batch: Vec<Request>) -> Result<BatchHandle, ServeError> {
        let deadline = self.shared.admission.default_deadline();
        self.submit_with_deadline(batch, deadline)
    }

    /// Submit a batch with an explicit per-batch deadline (measured from
    /// now; `None` = no deadline). Admission control runs synchronously:
    /// an over-budget submit rejects the whole batch with
    /// [`ServeError::Overloaded`] and queues nothing.
    pub fn submit_with_deadline(
        &self,
        batch: Vec<Request>,
        deadline: Option<Duration>,
    ) -> Result<BatchHandle, ServeError> {
        if self.shared.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let bytes: u64 = batch.iter().map(Request::cost_bytes).sum();
        let permit = match self.shared.admission.try_admit(batch.len() as u64, bytes) {
            Ok(p) => p,
            Err(e) => {
                for (kind, n) in count_by_kind(&batch) {
                    self.shared.metrics.record_rejected(kind, n);
                }
                return Err(ServeError::Overloaded(e));
            }
        };
        for (kind, n) in count_by_kind(&batch) {
            self.shared.metrics.record_admitted(kind, n);
        }
        let now = Instant::now();
        let (tx, rx) = mpsc::channel();
        let len = batch.len();
        let job = Job {
            batch,
            submitted: now,
            deadline: deadline.map(|d| now + d),
            tx,
            permit,
        };
        let q = self.shared.rr.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[q]
            .lock()
            .map_err(|_| ServeError::Shutdown)?
            .push_back(job);
        self.shared.wake.notify_one();
        Ok(BatchHandle { rx, len })
    }

    /// Single-request convenience: submit, wait, unwrap the one slot.
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        let mut results = self.submit(vec![req])?.wait();
        results.pop().unwrap_or(Err(ServeError::Shutdown))
    }

    pub fn snapshot(&self) -> &Snapshot {
        &self.shared.snapshot
    }

    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Point-in-time copy of the request counters and histograms.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Full observability document: server config + prepare-phase stats +
    /// per-request-kind metrics, as one JSON object.
    pub fn metrics_json(&self) -> String {
        self.metrics_json_with(&[])
    }

    /// [`ServerPool::metrics_json`] with extra pre-rendered JSON sections
    /// appended at the top level (e.g. the serving session's
    /// `prepare_cache` counters).
    pub fn metrics_json_with(&self, extra: &[(&str, String)]) -> String {
        let snap = &self.shared.snapshot;
        let mut server = JsonObject::new();
        server
            .field_u64("workers", self.workers.len() as u64)
            .field_str("query", snap.query_src())
            .field_u64("graph_n", snap.graph().n() as u64)
            .field_u64("graph_m", snap.graph().m() as u64)
            .field_u64("prepare_ms", snap.build_ms())
            .field_u64(
                "inflight_requests",
                self.shared.admission.inflight_requests(),
            )
            .field_u64("worker_panics", self.worker_panics());
        let mut o = JsonObject::new();
        o.field_raw("server", &server.finish())
            .field_raw("prepare", &snap.stats().to_json())
            .field_raw("requests", &self.metrics_snapshot().to_json());
        for (name, json) in extra {
            o.field_raw(name, json);
        }
        o.finish()
    }

    /// Worker panics caught so far (per-request quarantines plus
    /// loop-level backstops).
    pub fn worker_panics(&self) -> u64 {
        self.shared.worker_panics.load(Ordering::Relaxed)
    }

    /// Stop accepting work, drain the queues, and join the workers.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Stop admitting new work without consuming the pool: every submit
    /// from this point returns [`ServeError::Shutdown`]. Workers drain
    /// the already-admitted queue and then exit; dropping the pool joins
    /// them.
    pub fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
    }

    /// Wait up to `deadline` for the queues to empty, then typed-reject
    /// every job still queued with [`ServeError::Shutdown`] per request.
    /// Returns whether the queues drained fully within the deadline.
    /// Jobs a worker already picked up run to completion either way —
    /// admitted work is answered or typed-rejected, never lost.
    pub fn drain_with_deadline(&self, deadline: Duration) -> bool {
        let t0 = Instant::now();
        loop {
            let queued: usize = self
                .shared
                .queues
                .iter()
                .map(|q| q.lock().map_or(0, |g| g.len()))
                .sum();
            if queued == 0 {
                return true;
            }
            if t0.elapsed() >= deadline {
                for q in &self.shared.queues {
                    if let Ok(mut guard) = q.lock() {
                        for job in guard.drain(..) {
                            let n = job.batch.len();
                            let _ = job.tx.send(vec![Err(ServeError::Shutdown); n]);
                        }
                    }
                }
                return false;
            }
            std::thread::sleep(DRAIN_POLL);
        }
    }

    /// Graceful shutdown: stop admitting, drain queued work until
    /// `deadline`, typed-reject the remainder, join the workers. Returns
    /// whether the drain completed without rejections.
    pub fn shutdown_with_deadline(mut self, deadline: Duration) -> bool {
        self.begin_shutdown();
        let drained = self.drain_with_deadline(deadline);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        drained
    }

    fn stop_and_join(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerPool {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_core::PrepareOpts;
    use nd_graph::generators;
    use nd_logic::parse_query;

    fn small_snapshot() -> Snapshot {
        let mut g = generators::grid(8, 8);
        let members: Vec<_> = (0..g.n() as u32).filter(|v| v % 3 == 0).collect();
        g.add_color(members, Some("Blue".into()));
        let q = parse_query("dist(x,y) <= 2 && Blue(y)").unwrap();
        Snapshot::build_owned(g, &q, &PrepareOpts::default()).unwrap()
    }

    #[test]
    fn pool_answers_match_snapshot() {
        let snap = small_snapshot();
        let pool = ServerPool::start(
            snap.clone(),
            &ServeOpts {
                workers: 3,
                ..Default::default()
            },
        );
        let reqs: Vec<Request> = (0..40)
            .map(|i| Request::Test {
                tuple: vec![i % 8, (i * 7) % 64],
            })
            .collect();
        let results = pool.submit(reqs.clone()).unwrap().wait();
        for (req, res) in reqs.iter().zip(results) {
            assert_eq!(res.unwrap(), snap.execute(req).unwrap());
        }
        let m = pool.metrics_snapshot();
        assert_eq!(m.kind(crate::request::RequestKind::Test).completed, 40);
    }

    #[test]
    fn call_roundtrip_and_pages() {
        let snap = small_snapshot();
        let pool = ServerPool::start(
            snap.clone(),
            &ServeOpts {
                workers: 2,
                ..Default::default()
            },
        );
        // Walk the full enumeration through pages and compare to the
        // direct iterator.
        let mut via_pages = Vec::new();
        let mut cursor = Some(vec![0, 0]);
        while let Some(from) = cursor {
            let resp = pool
                .call(Request::EnumeratePage { from, limit: 17 })
                .unwrap();
            let Response::Page {
                solutions,
                next_from,
            } = resp
            else {
                unreachable!("page requests yield page responses, got {resp:?}")
            };
            via_pages.extend(solutions);
            cursor = next_from;
        }
        let direct: Vec<_> = snap.prepared().enumerate().collect();
        assert_eq!(via_pages, direct);
    }

    #[test]
    fn client_errors_are_typed_not_fatal() {
        let snap = small_snapshot();
        let pool = ServerPool::start(
            snap,
            &ServeOpts {
                workers: 1,
                ..Default::default()
            },
        );
        let res = pool.call(Request::Test { tuple: vec![0] });
        assert!(matches!(res, Err(ServeError::Query(_))), "{res:?}");
        // Pool still serves after a client error.
        assert!(pool.call(Request::Test { tuple: vec![0, 1] }).is_ok());
        let m = pool.metrics_snapshot();
        assert_eq!(m.kind(crate::request::RequestKind::Test).client_errors, 1);
    }

    #[test]
    fn expired_deadline_is_reaped() {
        let snap = small_snapshot();
        let pool = ServerPool::start(
            snap,
            &ServeOpts {
                workers: 1,
                ..Default::default()
            },
        );
        let handle = pool
            .submit_with_deadline(
                vec![Request::Test { tuple: vec![0, 1] }],
                Some(Duration::ZERO),
            )
            .unwrap();
        let results = handle.wait();
        assert!(
            matches!(results[0], Err(ServeError::DeadlineExceeded { .. })),
            "{results:?}"
        );
        let m = pool.metrics_snapshot();
        assert_eq!(m.kind(crate::request::RequestKind::Test).deadline_missed, 1);
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let snap = small_snapshot();
        let pool = ServerPool::start(
            snap,
            &ServeOpts {
                workers: 1,
                ..Default::default()
            },
        );
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        assert!(shared.shutdown.load(Ordering::Acquire));
    }
}
