//! Property tests for the graph substrate: CSR invariants, BFS metric
//! axioms, induced-subgraph faithfulness, and the adjacency-graph
//! reduction's structural guarantees.

use proptest::prelude::*;

use nd_graph::bfs::{ball, BfsScratch, UNREACHED};
use nd_graph::relational::{adjacency_graph, RelationalDb};
use nd_graph::{ColoredGraph, GraphBuilder, InducedSubgraph, Vertex};

fn arb_graph() -> impl Strategy<Value = ColoredGraph> {
    (2usize..40).prop_flat_map(|n| {
        let edges = prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..3 * n);
        edges.prop_map(move |es| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in es {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adjacency_is_symmetric_sorted_loopfree(g in arb_graph()) {
        for v in g.vertices() {
            let ns = g.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!ns.contains(&v));
            for &u in ns {
                prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
            }
        }
        let handshake: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(handshake, 2 * g.m());
    }

    #[test]
    fn bfs_satisfies_metric_axioms(g in arb_graph()) {
        let mut s = BfsScratch::new(g.n());
        let a = 0 as Vertex;
        s.run(&g, a, u32::MAX);
        // Triangle over edges: |d(u) - d(v)| ≤ 1 for every edge.
        for (u, v) in g.edges() {
            let (du, dv) = (s.dist(u), s.dist(v));
            if du != UNREACHED && dv != UNREACHED {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                prop_assert_eq!(du, dv, "one endpoint reached, the other not");
            }
        }
        // Every non-source reached vertex has a predecessor.
        for &v in s.reached() {
            if v != a {
                let dv = s.dist(v);
                prop_assert!(g.neighbors(v).iter().any(|&u| s.dist(u) + 1 == dv));
            }
        }
    }

    #[test]
    fn capped_distance_agrees_with_full_bfs(g in arb_graph(), r in 0u32..6) {
        let mut s = BfsScratch::new(g.n());
        let mut s2 = BfsScratch::new(g.n());
        s.run(&g, 0, r);
        for v in g.vertices() {
            let within = s.dist(v) != UNREACHED;
            prop_assert_eq!(
                s2.distance_capped(&g, 0, v, r).is_some(),
                within,
                "v={}, r={}", v, r
            );
        }
    }

    #[test]
    fn induced_subgraph_is_faithful(g in arb_graph(), keep_mod in 2u32..4) {
        let verts: Vec<Vertex> = g.vertices().filter(|v| v % keep_mod == 0).collect();
        let sub = InducedSubgraph::new(&g, &verts);
        for (i, &gv) in verts.iter().enumerate() {
            for (j, &gw) in verts.iter().enumerate() {
                prop_assert_eq!(
                    sub.graph.has_edge(i as Vertex, j as Vertex),
                    g.has_edge(gv, gw),
                    "({},{})", gv, gw
                );
            }
        }
        // new_small agrees with new on edges and colors.
        let sub2 = InducedSubgraph::new_small(&g, &verts);
        prop_assert_eq!(sub.graph.m(), sub2.graph.m());
    }

    #[test]
    fn balls_are_monotone_in_radius(g in arb_graph(), v in 0u32..2, r in 0u32..5) {
        let v = v % g.n() as u32;
        let small = ball(&g, v, r);
        let big = ball(&g, v, r + 1);
        for x in &small {
            prop_assert!(big.binary_search(x).is_ok());
        }
        prop_assert!(small.binary_search(&v).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn adjacency_graph_preserves_facts(
        n in 2usize..8,
        tuples in prop::collection::vec(prop::collection::vec(0u32..8, 2), 0..12)
    ) {
        let tuples: Vec<Vec<u32>> = tuples
            .into_iter()
            .map(|t| t.into_iter().map(|x| x % n as u32).collect())
            .collect();
        let mut db = RelationalDb::new(n);
        db.add_relation("R", 2, tuples.clone());
        let (g, map) = adjacency_graph(&db);

        // A fact R(a, b) holds iff there is a tuple node adjacent (via the
        // subdivision) to a at position 1 and b at position 2.
        let pr = map.relation_color("R").unwrap();
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let holds = g.color_members(pr).iter().any(|&t| {
                    let mut pos1 = false;
                    let mut pos2 = false;
                    for &z in g.neighbors(t) {
                        let elem = *g.neighbors(z).iter().find(|&&w| w != t).unwrap();
                        if g.has_color(z, map.position_color(1)) && elem == a {
                            pos1 = true;
                        }
                        if g.has_color(z, map.position_color(2)) && elem == b {
                            pos2 = true;
                        }
                    }
                    pos1 && pos2
                });
                prop_assert_eq!(holds, db.holds("R", &[a, b]), "R({},{})", a, b);
            }
        }
    }
}
