//! Minimal hand-rolled JSON emission — serde-free so the workspace stays
//! offline-buildable (no network, no proc-macro dependencies).
//!
//! The library's observability types ([`crate::budget`] spend reports,
//! `nd-core`'s `PrepareStats`, `nd-serve`'s `MetricsSnapshot`) and the
//! bench harness all need to print machine-readable snapshots; this module
//! gives them one shared writer instead of N ad-hoc `format!` dialects.
//!
//! Only emission is provided (no parsing): the workspace produces JSON for
//! external tooling, it never consumes it.
//!
//! ```
//! use nd_graph::json::JsonObject;
//! let mut o = JsonObject::new();
//! o.field_u64("count", 3).field_str("kind", "test");
//! assert_eq!(o.finish(), r#"{"count":3,"kind":"test"}"#);
//! ```

use std::fmt::Write as _;

/// Escape a string for inclusion inside JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (JSON has no NaN/Infinity: those are
/// emitted as `null`).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Incremental `{...}` builder.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    pub fn new() -> JsonObject {
        JsonObject { buf: String::new() }
    }

    fn key(&mut self, k: &str) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        let _ = write!(self.buf, "\"{}\":", escape(k));
        &mut self.buf
    }

    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    pub fn field_i64(&mut self, k: &str, v: i64) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        let n = number(v);
        self.key(k).push_str(&n);
        self
    }

    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        let _ = write!(self.key(k), "{v}");
        self
    }

    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        let s = format!("\"{}\"", escape(v));
        self.key(k).push_str(&s);
        self
    }

    pub fn field_null(&mut self, k: &str) -> &mut Self {
        self.key(k).push_str("null");
        self
    }

    /// Splice a pre-rendered JSON value (nested object or array).
    pub fn field_raw(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k).push_str(raw);
        self
    }

    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Incremental `[...]` builder.
#[derive(Debug, Default)]
pub struct JsonArray {
    buf: String,
}

impl JsonArray {
    pub fn new() -> JsonArray {
        JsonArray { buf: String::new() }
    }

    fn sep(&mut self) -> &mut String {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        &mut self.buf
    }

    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        let _ = write!(self.sep(), "{v}");
        self
    }

    pub fn push_f64(&mut self, v: f64) -> &mut Self {
        let n = number(v);
        self.sep().push_str(&n);
        self
    }

    pub fn push_str(&mut self, v: &str) -> &mut Self {
        let s = format!("\"{}\"", escape(v));
        self.sep().push_str(&s);
        self
    }

    /// Splice a pre-rendered JSON value.
    pub fn push_raw(&mut self, raw: &str) -> &mut Self {
        self.sep().push_str(raw);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn finish(self) -> String {
        format!("[{}]", self.buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_fields() {
        let mut o = JsonObject::new();
        o.field_u64("a", 1)
            .field_str("b", "x\"y\\z\n")
            .field_bool("c", true)
            .field_null("d")
            .field_f64("e", 1.5)
            .field_f64("nan", f64::NAN);
        assert_eq!(
            o.finish(),
            r#"{"a":1,"b":"x\"y\\z\n","c":true,"d":null,"e":1.5,"nan":null}"#
        );
    }

    #[test]
    fn nested_and_arrays() {
        let mut inner = JsonArray::new();
        inner.push_u64(1).push_u64(2).push_str("three");
        let mut o = JsonObject::new();
        o.field_raw("xs", &inner.finish());
        assert_eq!(o.finish(), r#"{"xs":[1,2,"three"]}"#);
        assert_eq!(JsonArray::new().finish(), "[]");
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn control_chars_escaped() {
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn keys_are_escaped_too() {
        let mut o = JsonObject::new();
        o.field_u64("a\"b\\c", 1);
        assert_eq!(o.finish(), r#"{"a\"b\\c":1}"#);
    }

    #[test]
    fn unicode_passes_through_raw() {
        // JSON strings carry raw UTF-8; only controls and "/\ are escaped.
        assert_eq!(escape("ε≤½ — naïve"), "ε≤½ — naïve");
        let mut o = JsonObject::new();
        o.field_str("query", "dist(x,y) ≤ 2 ∧ Blue(y)");
        assert_eq!(o.finish(), "{\"query\":\"dist(x,y) ≤ 2 ∧ Blue(y)\"}");
    }

    #[test]
    fn deep_nesting_via_raw_splices() {
        let mut leaf = JsonObject::new();
        leaf.field_str("note", "tab\there");
        let mut mid = JsonObject::new();
        mid.field_raw("leaf", &leaf.finish());
        let mut arr = JsonArray::new();
        arr.push_raw(&mid.finish()).push_u64(7);
        let mut root = JsonObject::new();
        root.field_raw("items", &arr.finish())
            .field_bool("ok", true);
        assert_eq!(
            root.finish(),
            r#"{"items":[{"leaf":{"note":"tab\there"}},7],"ok":true}"#
        );
    }

    #[test]
    fn numbers_render_as_json() {
        assert_eq!(number(-0.5), "-0.5");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(number(f64::NEG_INFINITY), "null");
        let mut o = JsonObject::new();
        o.field_i64("neg", -3).field_f64("tiny", 1e-9);
        assert_eq!(o.finish(), r#"{"neg":-3,"tiny":0.000000001}"#);
    }
}
