//! Typed errors for graph construction and validation.
//!
//! Every panic on a public construction path of this crate has a fallible
//! `try_*` twin returning [`GraphError`]; the panicking variants are kept as
//! documented conveniences for callers with pre-validated input.

use crate::graph::Vertex;
use std::fmt;

/// Errors raised while constructing or mutating a colored graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id does not fit in the graph's domain `0..n`.
    VertexOutOfRange { v: Vertex, n: usize },
    /// The requested vertex count does not fit the `u32` id space.
    TooManyVertices { n: usize },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} out of range for a graph on {n} vertices")
            }
            GraphError::TooManyVertices { n } => {
                write!(f, "vertex count {n} exceeds the u32 id space")
            }
        }
    }
}

impl std::error::Error for GraphError {}
