//! Order-preserving induced substructures `G[X]`.
//!
//! The preprocessing phases of Sections 4 and 5 repeatedly restrict the graph
//! to a bag `X` of a neighborhood cover and recurse. We materialize `G[X]` as
//! a fresh [`ColoredGraph`] with local vertex ids `0..|X|` together with the
//! sorted list of global ids. Because the renumbering is monotone, the
//! lexicographic order on local tuples agrees with the order on global
//! tuples — which is what keeps the "smallest next solution" semantics of
//! Theorem 2.3 consistent across recursion levels.

use crate::graph::{ColorId, ColoredGraph, Vertex};

/// An induced substructure together with its embedding into the parent graph.
pub struct InducedSubgraph {
    /// The materialized substructure with local ids `0..|X|`.
    pub graph: ColoredGraph,
    /// Sorted global ids; `global_ids[local] = global`.
    pub global_ids: Vec<Vertex>,
}

impl InducedSubgraph {
    /// Build `G[X]` for a **sorted, deduplicated** vertex set `X`.
    ///
    /// All colors of the parent are restricted to `X` (keeping their ids
    /// aligned: color `c` of the parent is color `c` of the substructure).
    pub fn new(g: &ColoredGraph, verts: &[Vertex]) -> Self {
        // Neighbor lists inherit sortedness: neighbors of `v` are globally
        // sorted and the renumbering is monotone.
        let mut sub = Self::new_uncolored(g, verts);
        let local = |v: Vertex| -> Option<u32> { verts.binary_search(&v).ok().map(|i| i as u32) };
        for c in 0..g.num_colors() {
            let members: Vec<Vertex> = g
                .color_members(ColorId(c as u32))
                .iter()
                .filter_map(|&v| local(v))
                .collect();
            let name = g.color_name(ColorId(c as u32)).map(str::to_owned);
            sub.graph.add_color(members, name);
        }
        sub
    }

    /// Like [`Self::new`], but restricts colors by per-vertex membership
    /// tests (`O(|X| · c · log)`) instead of scanning the full color lists
    /// (`O(Σ|C_i|)`). Preferable when `X` is a small ball of a large graph,
    /// e.g. in the per-vertex local evaluation of unary queries.
    pub fn new_small(g: &ColoredGraph, verts: &[Vertex]) -> Self {
        let mut sub = Self::new_uncolored(g, verts);
        for c in 0..g.num_colors() {
            let cid = ColorId(c as u32);
            let members: Vec<Vertex> = verts
                .iter()
                .enumerate()
                .filter(|(_, &v)| g.has_color(v, cid))
                .map(|(i, _)| i as Vertex)
                .collect();
            sub.graph
                .add_color(members, g.color_name(cid).map(str::to_owned));
        }
        sub
    }

    /// Induce only the edge relation, no colors.
    pub fn new_uncolored(g: &ColoredGraph, verts: &[Vertex]) -> Self {
        debug_assert!(
            verts.windows(2).all(|w| w[0] < w[1]),
            "verts must be sorted+dedup"
        );
        let local = |v: Vertex| -> Option<u32> { verts.binary_search(&v).ok().map(|i| i as u32) };
        let n = verts.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut adjacency = Vec::new();
        for &v in verts.iter() {
            for &w in g.neighbors(v) {
                if let Some(lw) = local(w) {
                    adjacency.push(lw);
                }
            }
            offsets.push(adjacency.len() as u32);
        }
        InducedSubgraph {
            graph: ColoredGraph {
                offsets,
                adjacency,
                color_members: Vec::new(),
                color_names: Vec::new(),
            },
            global_ids: verts.to_vec(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.global_ids.len()
    }

    /// Global id of a local vertex.
    #[inline]
    pub fn to_global(&self, local: Vertex) -> Vertex {
        self.global_ids[local as usize]
    }

    /// Local id of a global vertex, if it belongs to the substructure.
    /// `O(log |X|)`.
    #[inline]
    pub fn to_local(&self, global: Vertex) -> Option<Vertex> {
        self.global_ids
            .binary_search(&global)
            .ok()
            .map(|i| i as Vertex)
    }

    /// Append the substructure's binary encoding to `w` (DESIGN.md §9).
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        self.graph.write_into(w);
        w.u32_slice(&self.global_ids);
    }

    /// Decode a substructure, validating that the embedding is a strictly
    /// increasing global-id list aligned with the local vertex set (the
    /// property [`Self::to_local`]'s binary search relies on).
    pub fn read_from(
        r: &mut nd_persist::Reader<'_>,
    ) -> Result<InducedSubgraph, nd_persist::PersistError> {
        let graph = ColoredGraph::read_from(r)?;
        let global_ids = r.u32_slice("induced global ids")?;
        if global_ids.len() != graph.n() {
            return Err(nd_persist::malformed(
                "induced global-id list does not match the vertex count",
            ));
        }
        if global_ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(nd_persist::malformed(
                "induced global ids are not strictly increasing",
            ));
        }
        Ok(InducedSubgraph { graph, global_ids })
    }

    /// Smallest local vertex whose global id is `≥ global`, if any.
    ///
    /// Used by the answering phase (Section 5.2.2) to find `b_X`, the
    /// smallest element of a bag that is at least a given node.
    #[inline]
    pub fn local_successor(&self, global: Vertex) -> Option<Vertex> {
        match self.global_ids.binary_search(&global) {
            Ok(i) => Some(i as Vertex),
            Err(i) if i < self.global_ids.len() => Some(i as Vertex),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    #[test]
    fn induce_path_segment() {
        let g = generators::path(6);
        let sub = InducedSubgraph::new(&g, &[1, 2, 3, 5]);
        assert_eq!(sub.n(), 4);
        // Edges 1-2, 2-3 survive; 5 is isolated (4 missing).
        assert_eq!(sub.graph.m(), 2);
        assert!(sub.graph.has_edge(0, 1));
        assert!(sub.graph.has_edge(1, 2));
        assert_eq!(sub.graph.neighbors(3), &[] as &[u32]);
        assert_eq!(sub.to_global(3), 5);
        assert_eq!(sub.to_local(5), Some(3));
        assert_eq!(sub.to_local(4), None);
        assert_eq!(sub.local_successor(4), Some(3));
        assert_eq!(sub.local_successor(6), None);
        assert_eq!(sub.local_successor(0), Some(0));
    }

    #[test]
    fn codec_roundtrips_and_rejects_misaligned_embeddings() {
        let g = generators::grid(3, 3);
        let sub = InducedSubgraph::new(&g, &[0, 1, 4, 8]);
        let mut w = nd_persist::Writer::new();
        sub.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = nd_persist::Reader::new(&bytes);
        let back = InducedSubgraph::read_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.global_ids, sub.global_ids);
        assert_eq!(back.graph.m(), sub.graph.m());
        // Non-increasing embedding is rejected.
        let mut w = nd_persist::Writer::new();
        sub.graph.write_into(&mut w);
        w.u32_slice(&[3, 3, 4, 8]);
        let bytes = w.into_bytes();
        assert!(InducedSubgraph::read_from(&mut nd_persist::Reader::new(&bytes)).is_err());
        // Length mismatch is rejected.
        let mut w = nd_persist::Writer::new();
        sub.graph.write_into(&mut w);
        w.u32_slice(&[0, 1]);
        let bytes = w.into_bytes();
        assert!(InducedSubgraph::read_from(&mut nd_persist::Reader::new(&bytes)).is_err());
    }

    #[test]
    fn colors_restrict() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_color(vec![0, 2, 3], Some("Blue".into()));
        let g = b.build();
        let sub = InducedSubgraph::new(&g, &[0, 3]);
        assert_eq!(sub.graph.color_members(ColorId(0)), &[0, 1]);
        assert_eq!(sub.graph.color_name(ColorId(0)), Some("Blue"));
    }

    #[test]
    fn monotone_renumbering_preserves_order() {
        let g = generators::cycle(8);
        let verts = vec![1, 3, 4, 7];
        let sub = InducedSubgraph::new(&g, &verts);
        for w in sub.global_ids.windows(2) {
            assert!(w[0] < w[1]);
        }
        for (i, &gv) in verts.iter().enumerate() {
            assert_eq!(sub.to_local(gv), Some(i as u32));
        }
    }
}
