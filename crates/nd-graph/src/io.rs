//! Plain-text serialization of colored graphs.
//!
//! The format is a line-oriented edge list with color sections, designed
//! for reproducible experiment inputs and for importing external graphs
//! (road networks, social snapshots) into the library:
//!
//! ```text
//! # comments and blank lines ignored
//! n 7                 # vertex count (vertices are 0..n)
//! e 0 1               # an undirected edge
//! e 1 2
//! c Blue 0 2 5        # a named color and its members
//! c Red 1
//! ```

use crate::builder::GraphBuilder;
use crate::graph::{ColorId, ColoredGraph, Vertex};
use std::fmt;
use std::io::{BufRead, Write};

/// Errors raised while reading persisted inputs: the text graph format,
/// or the binary index container of DESIGN.md §9.
#[derive(Debug)]
pub enum ReadError {
    Io(std::io::Error),
    Parse {
        line: usize,
        message: String,
    },
    /// A binary index file failed to load (bad magic, version mismatch,
    /// checksum failure, truncation, or malformed content).
    Index(nd_persist::PersistError),
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            ReadError::Index(e) => write!(f, "index load error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse { .. } => None,
            ReadError::Index(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<nd_persist::PersistError> for ReadError {
    fn from(e: nd_persist::PersistError) -> Self {
        ReadError::Index(e)
    }
}

/// Write a graph in the text format.
pub fn write_graph(g: &ColoredGraph, mut w: impl Write) -> std::io::Result<()> {
    writeln!(w, "n {}", g.n())?;
    for (u, v) in g.edges() {
        writeln!(w, "e {u} {v}")?;
    }
    for c in 0..g.num_colors() {
        let cid = ColorId(c as u32);
        let name = g.color_name(cid).unwrap_or("C");
        write!(w, "c {name}")?;
        for &v in g.color_members(cid) {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Read a graph from the text format.
pub fn read_graph(r: impl BufRead) -> Result<ColoredGraph, ReadError> {
    let mut builder: Option<GraphBuilder> = None;
    let mut colors: Vec<(String, Vec<Vertex>)> = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| ReadError::Parse {
            line: lineno,
            message,
        };
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap();
        match tag {
            "n" => {
                let n: usize = parts
                    .next()
                    .ok_or_else(|| err("missing vertex count".into()))?
                    .parse()
                    .map_err(|e| err(format!("bad vertex count: {e}")))?;
                if builder.is_some() {
                    return Err(err("duplicate 'n' line".into()));
                }
                builder = Some(
                    GraphBuilder::try_new(n).map_err(|e| err(format!("bad vertex count: {e}")))?,
                );
            }
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| err("'e' before 'n'".into()))?;
                let mut next = |what: &str| -> Result<Vertex, ReadError> {
                    parts
                        .next()
                        .ok_or_else(|| ReadError::Parse {
                            line: lineno,
                            message: format!("missing {what}"),
                        })?
                        .parse()
                        .map_err(|e| ReadError::Parse {
                            line: lineno,
                            message: format!("bad {what}: {e}"),
                        })
                };
                let (u, v) = (next("endpoint")?, next("endpoint")?);
                if (u as usize) >= b.n() || (v as usize) >= b.n() {
                    return Err(err(format!("edge ({u},{v}) out of range")));
                }
                b.add_edge(u, v);
            }
            "c" => {
                let nv = builder
                    .as_ref()
                    .ok_or_else(|| err("'c' before 'n'".into()))?
                    .n();
                let name = parts
                    .next()
                    .ok_or_else(|| err("missing color name".into()))?
                    .to_string();
                let members: Result<Vec<Vertex>, _> = parts.map(str::parse).collect();
                let members = members.map_err(|e| err(format!("bad color member: {e}")))?;
                if let Some(&v) = members.iter().find(|&&v| (v as usize) >= nv) {
                    return Err(err(format!("color member {v} out of range [0,{nv})")));
                }
                colors.push((name, members));
            }
            other => return Err(err(format!("unknown line tag {other:?}"))),
        }
    }
    let builder = builder.ok_or(ReadError::Parse {
        line: 0,
        message: "missing 'n' line".into(),
    })?;
    let mut g = builder.build();
    for (name, members) in colors {
        g.add_color(members, Some(name));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn roundtrip() {
        let mut g = generators::grid(4, 3);
        g.add_color(vec![0, 5, 11], Some("Blue".into()));
        g.add_color(vec![], Some("Red".into()));
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        assert_eq!(g2.num_colors(), 2);
        assert_eq!(g2.color_members(ColorId(0)), g.color_members(ColorId(0)));
        assert_eq!(g2.color_by_name("Red"), Some(ColorId(1)));
        for v in g.vertices() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
    }

    #[test]
    fn comments_and_blanks() {
        let src = "# a graph\n\nn 3\ne 0 1\n# mid comment\ne 1 2\nc Blue 0 2\n";
        let g = read_graph(src.as_bytes()).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert!(g.has_color(2, ColorId(0)));
    }

    #[test]
    fn errors() {
        assert!(read_graph("e 0 1\n".as_bytes()).is_err()); // edge before n
        assert!(read_graph("n 2\ne 0 5\n".as_bytes()).is_err()); // out of range
        assert!(read_graph("n 2\nx 0 1\n".as_bytes()).is_err()); // bad tag
        assert!(read_graph("n 2\nn 3\n".as_bytes()).is_err()); // duplicate n
        assert!(read_graph("".as_bytes()).is_err()); // empty
        assert!(read_graph("n 2\ne 0\n".as_bytes()).is_err()); // missing endpoint
    }

    fn parse_error_on_line(src: &str, want_line: usize, want_substr: &str) {
        match read_graph(src.as_bytes()) {
            Err(ReadError::Parse { line, message }) => {
                assert_eq!(line, want_line, "wrong line for {src:?}: {message}");
                assert!(
                    message.contains(want_substr),
                    "message {message:?} missing {want_substr:?}"
                );
            }
            other => panic!("expected parse error for {src:?}, got {other:?}"),
        }
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        // Color member beyond the declared vertex count.
        parse_error_on_line("n 3\nc Blue 0 7\n", 2, "out of range");
        // Negative counts/ids fail integer parsing.
        parse_error_on_line("n -4\n", 1, "bad vertex count");
        parse_error_on_line("n 3\ne -1 0\n", 2, "bad endpoint");
        parse_error_on_line("n 3\nc Blue -2\n", 2, "bad color member");
        // A vertex count that overflows the u32 id space must not panic.
        parse_error_on_line("n 99999999999999999999\n", 1, "bad vertex count");
        parse_error_on_line(
            &format!("n {}\n", u32::MAX as u64 + 7),
            1,
            "bad vertex count",
        );
        // Duplicate header reports the second occurrence.
        parse_error_on_line("n 2\nn 2\n", 2, "duplicate 'n'");
    }

    #[test]
    fn roundtrip_with_empty_and_unnamed_colors() {
        let mut g = generators::path(6);
        g.add_color(vec![5, 0], None);
        g.add_color(vec![], Some("Empty".into()));
        let mut buf = Vec::new();
        write_graph(&g, &mut buf).unwrap();
        let g2 = read_graph(&buf[..]).unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        assert_eq!(g2.num_colors(), 2);
        assert_eq!(g2.color_members(ColorId(0)), &[0, 5]);
        assert_eq!(g2.color_members(ColorId(1)), &[] as &[Vertex]);
    }
}
