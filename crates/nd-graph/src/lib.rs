//! Colored graphs and supporting graph machinery for the nowhere-dense
//! first-order query enumeration library.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`ColoredGraph`] — an immutable CSR-encoded undirected graph whose
//!   vertices carry an extensible set of colors (unary predicates). Colored
//!   graphs are the structures of schema `σ_c = {E, C_1, …, C_c}` from
//!   Section 2 of the paper.
//! * [`bfs`] — bounded breadth-first searches with reusable scratch buffers
//!   (`r`-neighborhoods `N_r(v)`, multi-source distances, distance queries).
//! * [`induced`] — order-preserving induced substructures `G[X]`.
//! * [`generators`] — graph families standing in for nowhere dense classes
//!   (grids, trees, bounded-degree, …) plus dense contrast families.
//! * [`relational`] — relational databases, their adjacency graphs `A'(D)`
//!   and the reduction of Lemma 2.2.
//! * [`stats`] — degeneracy orderings, degree statistics and the
//!   weak-`r`-accessibility measure used to characterize nowhere dense
//!   classes empirically.
//! * [`budget`] — resource caps ([`Budget`]) and cooperative-cancellation
//!   trackers shared by every preprocessing phase of the upper crates.
//! * [`par`] — a deterministic scoped-thread `parallel_map` used to fan
//!   out the independent preprocessing units (branches, bags, positions)
//!   with bit-identical output to the sequential build.
//! * [`json`] — a minimal serde-free JSON writer shared by the workspace's
//!   observability surfaces (stats, metrics, bench artifacts).
//! * [`error`] — typed construction errors ([`GraphError`]).

pub mod bfs;
pub mod budget;
pub mod builder;
pub mod components;
pub mod error;
pub mod generators;
pub mod graph;
pub mod induced;
pub mod io;
pub mod json;
pub mod par;
pub mod relational;
pub mod stats;

pub use bfs::BfsScratch;
pub use budget::{Budget, BudgetExceeded, BudgetTracker, Phase, Resource};
pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{ColorId, ColoredGraph, Vertex};
pub use induced::InducedSubgraph;
pub use par::{parallel_map, resolve_threads, try_parallel_map};
