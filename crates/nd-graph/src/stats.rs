//! Sparsity statistics: degeneracy orderings and weak `r`-accessibility.
//!
//! The paper characterizes nowhere dense classes via weak `r`-accessibility
//! (Section 2): `C` is nowhere dense iff for all `r, ε` and large enough
//! `G ∈ C` there is a linear order under which every vertex weakly
//! `r`-accesses at most `|G|^ε` vertices. We use the degeneracy order as the
//! candidate order and *measure* the accessibility profile — this is how the
//! experiment harness classifies generated graph families as
//! empirically-sparse or not (experiment A3).

use crate::bfs::UNREACHED;
use crate::graph::{ColoredGraph, Vertex};

/// Degree statistics of a graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub min: usize,
    pub max: usize,
    pub mean: f64,
}

/// Compute min/max/mean degree.
pub fn degree_stats(g: &ColoredGraph) -> DegreeStats {
    let n = g.n();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
        };
    }
    let mut min = usize::MAX;
    let mut max = 0;
    let mut sum = 0usize;
    for v in g.vertices() {
        let d = g.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d;
    }
    DegreeStats {
        min,
        max,
        mean: sum as f64 / n as f64,
    }
}

/// Degeneracy of the graph together with a degeneracy ordering
/// (repeatedly remove a minimum-degree vertex; the ordering lists vertices
/// in removal order). Linear time via bucket queues.
pub fn degeneracy_ordering(g: &ColoredGraph) -> (usize, Vec<Vertex>) {
    let n = g.n();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut deg: Vec<usize> = (0..n as Vertex).map(|v| g.degree(v)).collect();
    let maxd = *deg.iter().max().unwrap();
    let mut buckets: Vec<Vec<Vertex>> = vec![Vec::new(); maxd + 1];
    for v in 0..n {
        buckets[deg[v]].push(v as Vertex);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0;
    let mut cur = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket (cur can only have decreased by 1
        // per removal, so rewinding by one keeps this linear overall).
        cur = cur.saturating_sub(1);
        loop {
            match buckets[cur].pop() {
                Some(v) if !removed[v as usize] && deg[v as usize] == cur => {
                    removed[v as usize] = true;
                    degeneracy = degeneracy.max(cur);
                    order.push(v);
                    for &w in g.neighbors(v) {
                        if !removed[w as usize] {
                            deg[w as usize] -= 1;
                            buckets[deg[w as usize]].push(w);
                        }
                    }
                    break;
                }
                Some(_) => continue, // stale entry
                None => {
                    cur += 1;
                    debug_assert!(cur <= maxd, "bucket scan ran off the end");
                }
            }
        }
    }
    (degeneracy, order)
}

/// For each vertex `a`, the number of vertices weakly `r`-accessible from
/// `a` under the given order (`rank[v]` = position of `v`): vertices `b`
/// with `rank[b] < rank[a]` reachable by a path of length `≤ r` whose
/// internal vertices all have rank `> rank[a]`.
///
/// Returns the maximum count over all vertices. Cost `O(Σ_v ‖N_r(v)‖)`.
pub fn max_weak_accessibility(g: &ColoredGraph, order: &[Vertex], r: u32) -> usize {
    let n = g.n();
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    let mut best = 0usize;
    // BFS restricted to vertices of rank > rank[a], counting lower-rank
    // vertices reachable as *endpoints*.
    let mut dist = vec![UNREACHED; n];
    let mut queue: Vec<Vertex> = Vec::new();
    let mut touched: Vec<Vertex> = Vec::new();
    for &a in order {
        let ra = rank[a as usize];
        for &v in &touched {
            dist[v as usize] = UNREACHED;
        }
        touched.clear();
        queue.clear();
        dist[a as usize] = 0;
        queue.push(a);
        touched.push(a);
        let mut count = 0usize;
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let du = dist[u as usize];
            if du >= r {
                continue;
            }
            for &w in g.neighbors(u) {
                if dist[w as usize] != UNREACHED {
                    continue;
                }
                dist[w as usize] = du + 1;
                touched.push(w);
                if rank[w as usize] < ra {
                    // Endpoint: count it, but do not continue the path
                    // through it (internal vertices must have larger rank).
                    count += 1;
                } else {
                    queue.push(w);
                }
            }
        }
        best = best.max(count);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degeneracy_of_families() {
        let (d, ord) = degeneracy_ordering(&generators::path(10));
        assert_eq!(d, 1);
        assert_eq!(ord.len(), 10);
        let (d, _) = degeneracy_ordering(&generators::cycle(10));
        assert_eq!(d, 2);
        let (d, _) = degeneracy_ordering(&generators::clique(6));
        assert_eq!(d, 5);
        let (d, _) = degeneracy_ordering(&generators::grid(8, 8));
        assert_eq!(d, 2);
        let (d, _) = degeneracy_ordering(&generators::random_tree(64, 1));
        assert_eq!(d, 1);
    }

    #[test]
    fn degeneracy_ordering_is_a_permutation() {
        let g = generators::bounded_degree(100, 5, 2);
        let (_, ord) = degeneracy_ordering(&g);
        let mut seen = vec![false; g.n()];
        for &v in &ord {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn weak_accessibility_tree_vs_clique() {
        let tree = generators::random_tree(200, 3);
        let (_, ord) = degeneracy_ordering(&tree);
        // reverse removal order: classic degeneracy order for accessibility
        let ord: Vec<_> = ord.into_iter().rev().collect();
        let wa_tree = max_weak_accessibility(&tree, &ord, 2);
        let k = generators::clique(40);
        let (_, ordk) = degeneracy_ordering(&k);
        let ordk: Vec<_> = ordk.into_iter().rev().collect();
        let wa_clique = max_weak_accessibility(&k, &ordk, 2);
        assert!(
            wa_tree < wa_clique,
            "tree {wa_tree} should be far sparser than clique {wa_clique}"
        );
        assert_eq!(wa_clique, 39);
    }

    #[test]
    fn degree_stats_grid() {
        let s = degree_stats(&generators::grid(3, 3));
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 4);
        assert!((s.mean - 24.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_stats() {
        let g = generators::path(0);
        assert_eq!(degree_stats(&g).max, 0);
        let (d, ord) = degeneracy_ordering(&g);
        assert_eq!(d, 0);
        assert!(ord.is_empty());
    }
}
