//! Deterministic scoped-thread parallel map.
//!
//! The preprocessing phases of the enumeration pipeline (per-branch index
//! builds, per-bag kernels, per-position skip pointers, per-radius distance
//! oracles) are *embarrassingly parallel by construction*: each work item
//! is a pure function of the immutable graph plus its own inputs, and the
//! merge step only concatenates results by item index. That makes the
//! parallel build **bit-identical** to the sequential one — determinism is
//! preserved by keeping every output in its input slot, not by controlling
//! execution order.
//!
//! [`try_parallel_map`] is the one shared primitive: a scoped worker pool
//! (plain `std::thread::scope`, no dependencies) pulling item indices off a
//! shared atomic counter. Error handling is deterministic too: if several
//! items fail, the error of the *smallest* item index wins, which is
//! exactly the error the sequential loop would have returned first.
//!
//! Budget semantics: callers share one [`crate::BudgetTracker`] (atomic
//! counters) across the closure invocations, so a single total spend cap
//! governs the whole fan-out — parallelism never multiplies the budget.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a thread-count knob: `0` means "use available parallelism",
/// anything else is taken literally (clamped to at least 1).
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Below this many items a fan-out never pays for thread spawns.
const MIN_ITEMS_PER_THREAD: usize = 2;

/// Map `f` over `items` on up to `threads` scoped worker threads, returning
/// outputs in input order, or the error of the smallest failing index.
///
/// Guarantees:
/// - **Deterministic output**: result `i` is `f(i, &items[i])`; ordering is
///   by input slot regardless of which worker ran which item.
/// - **Deterministic error**: on failure, the returned error is the one
///   produced for the smallest item index that failed — identical to what
///   a sequential `for` loop over `items` would report first. Workers stop
///   picking up new items once any error is recorded (items already in
///   flight run to completion).
/// - **Sequential fast path**: with `threads <= 1`, one item, or an empty
///   slice, no threads are spawned and `f` runs inline in input order —
///   the call is exactly the sequential loop.
///
/// `f` takes the item index alongside the item so callers can index into
/// sibling arrays without capturing per-item state.
pub fn try_parallel_map<T, U, E, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<U, E> + Sync,
{
    let threads = resolve_threads(threads)
        .min(items.len() / MIN_ITEMS_PER_THREAD)
        .max(1);
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    // Index of the smallest failing item seen so far; usize::MAX = none.
    // Workers use it both to record failures and as the stop signal.
    let first_err_idx = AtomicUsize::new(usize::MAX);
    let err_slot: Mutex<Option<(usize, E)>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() || first_err_idx.load(Ordering::Relaxed) < i {
                    return;
                }
                match f(i, &items[i]) {
                    Ok(v) => *slots[i].lock().unwrap() = Some(v),
                    Err(e) => {
                        first_err_idx.fetch_min(i, Ordering::Relaxed);
                        let mut slot = err_slot.lock().unwrap();
                        if slot.as_ref().is_none_or(|(j, _)| i < *j) {
                            *slot = Some((i, e));
                        }
                    }
                }
            });
        }
    });

    if let Some((_, e)) = err_slot.into_inner().unwrap() {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every slot filled when no error was recorded")
        })
        .collect())
}

/// Infallible variant of [`try_parallel_map`].
pub fn parallel_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let res: Result<Vec<U>, std::convert::Infallible> =
        try_parallel_map(threads, items, |i, item| Ok(f(i, item)));
    match res {
        Ok(v) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 0] {
            let out = parallel_map(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expect: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        let items: Vec<u32> = (0..100).rev().collect();
        let f = |i: usize, &x: &u32| -> Result<(usize, u32), ()> {
            Ok((i, x.wrapping_mul(2654435761)))
        };
        let seq = try_parallel_map(1, &items, f).unwrap();
        let par = try_parallel_map(4, &items, f).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn smallest_failing_index_wins() {
        let items: Vec<usize> = (0..512).collect();
        // Items 17, 40 and 300 fail; the sequential loop would report 17.
        let run = |threads| {
            try_parallel_map(threads, &items, |_, &x| {
                if x == 17 || x == 40 || x == 300 {
                    Err(x)
                } else {
                    Ok(x)
                }
            })
        };
        assert_eq!(run(1), Err(17));
        assert_eq!(run(4), Err(17));
    }

    #[test]
    fn tiny_inputs_stay_sequential() {
        // One item can't be split; this must not spawn (observable only as
        // "it works and preserves the single result").
        let out = parallel_map(8, &[42u8], |i, &x| (i, x));
        assert_eq!(out, vec![(0, 42)]);
        let empty: Vec<(usize, u8)> = parallel_map(8, &[], |i, &x: &u8| (i, x));
        assert!(empty.is_empty());
    }

    #[test]
    fn resolve_threads_zero_means_host() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
