//! Resource budgets for preprocessing phases.
//!
//! The paper's preprocessing is pseudo-linear *on nowhere dense classes*;
//! on adversarial or merely dense inputs the same algorithms can blow up
//! (cover construction on a clique, the skip-pointer closure, naive
//! materialization). A [`Budget`] caps wall-clock time, node expansions and
//! tracked memory; the long-running loops of the upper crates thread a
//! [`BudgetTracker`] through their phase boundaries and bail out with a
//! typed [`BudgetExceeded`] instead of hanging.
//!
//! This module lives in `nd-graph` — the root of the crate DAG — so that
//! `nd-cover` and `nd-core` can share one tracker without a dependency
//! cycle. Counters are relaxed atomics, so a single tracker can be shared
//! across the scoped worker threads of a parallel prepare (`nd_graph::par`)
//! while still enforcing one *total* spend cap — the degradation ladder
//! sees the same aggregate accounting whether the phases ran on one thread
//! or eight. Charges stay cheap: an uncontended `fetch_add` plus a branch,
//! with wall-clock only sampled every [`WALL_CHECK_PERIOD`] charges.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// How many charge calls between wall-clock samples (`Instant::now` is the
/// expensive part of a charge; counter checks are branch-and-add).
const WALL_CHECK_PERIOD: u64 = 1024;

/// Preprocessing phase in which a budget was charged or exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Evaluation of the `r`-independence sentences / sentence checks.
    SentenceCheck,
    /// Evaluation of unary subformulas into solution lists.
    UnaryEvaluation,
    /// Recursive construction of a distance oracle (Proposition 4.2).
    DistOracle,
    /// Greedy construction of the `(r, 2r)`-neighborhood cover.
    CoverConstruction,
    /// Kernel computation for every cover bag (Lemma 5.7).
    KernelConstruction,
    /// Closure of the skip-pointer function `SC(b)` (Lemma 5.8).
    SkipClosure,
    /// Storing-Theorem trie inserts.
    TrieBuild,
    /// Naive `O(n^k)` materialization fallback.
    NaiveMaterialize,
    /// Serving-runtime admission control (`nd-serve`): the budget is
    /// interpreted as caps on queued/in-flight work instead of
    /// preprocessing spend.
    Admission,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::SentenceCheck => "sentence check",
            Phase::UnaryEvaluation => "unary evaluation",
            Phase::DistOracle => "distance oracle",
            Phase::CoverConstruction => "cover construction",
            Phase::KernelConstruction => "kernel construction",
            Phase::SkipClosure => "skip-pointer closure",
            Phase::TrieBuild => "trie build",
            Phase::NaiveMaterialize => "naive materialization",
            Phase::Admission => "admission control",
        };
        f.write_str(s)
    }
}

/// Which resource ran out.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resource {
    WallClockMs,
    NodeExpansions,
    MemoryBytes,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::WallClockMs => "wall-clock ms",
            Resource::NodeExpansions => "node expansions",
            Resource::MemoryBytes => "memory bytes",
        };
        f.write_str(s)
    }
}

/// A budget cap was hit. Carries where, which resource, and how much had
/// been spent against the cap when the overrun was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    pub phase: Phase,
    pub resource: Resource,
    pub spent: u64,
    pub cap: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exceeded during {}: {} {} spent against a cap of {}",
            self.phase, self.spent, self.resource, self.cap
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Caps on preprocessing resources. `None` means unlimited; the default
/// budget is fully unlimited, so threading a budget through an API is
/// zero-cost for callers that never set one.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock cap across all phases.
    pub wall_clock: Option<Duration>,
    /// Cap on "node expansions" — the unit of combinatorial work (BFS
    /// visits, trie inserts, skip-pointer entries, tuples examined).
    pub node_expansions: Option<u64>,
    /// Cap on tracked auxiliary memory, in bytes (approximate: counts the
    /// dominant index allocations, not every `Vec`).
    pub memory_bytes: Option<u64>,
}

impl Budget {
    /// A budget with no caps.
    pub const UNLIMITED: Budget = Budget {
        wall_clock: None,
        node_expansions: None,
        memory_bytes: None,
    };

    pub fn is_unlimited(&self) -> bool {
        self.wall_clock.is_none() && self.node_expansions.is_none() && self.memory_bytes.is_none()
    }

    pub fn with_wall_clock(mut self, d: Duration) -> Budget {
        self.wall_clock = Some(d);
        self
    }

    pub fn with_node_expansions(mut self, cap: u64) -> Budget {
        self.node_expansions = Some(cap);
        self
    }

    pub fn with_memory_bytes(mut self, cap: u64) -> Budget {
        self.memory_bytes = Some(cap);
        self
    }

    /// Start the clock: create a tracker charging against this budget.
    pub fn start(&self) -> BudgetTracker {
        let now = Instant::now();
        BudgetTracker {
            started: now,
            deadline: self.wall_clock.map(|d| now + d),
            wall_cap_ms: self.wall_clock.map(|d| d.as_millis() as u64),
            node_cap: self.node_expansions,
            mem_cap: self.memory_bytes,
            nodes: AtomicU64::new(0),
            mem: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
        }
    }
}

/// Running spend against a [`Budget`]. Charge methods take `&self` so the
/// tracker can be shared down a call tree — or across scoped worker
/// threads — without threading `&mut` borrows through builders. All
/// counters are relaxed atomics: exact totals, no ordering guarantees
/// needed (an overrun detected one charge late on a racing thread is
/// within the cap semantics, which were already amortized).
#[derive(Debug)]
pub struct BudgetTracker {
    started: Instant,
    deadline: Option<Instant>,
    wall_cap_ms: Option<u64>,
    node_cap: Option<u64>,
    mem_cap: Option<u64>,
    nodes: AtomicU64,
    mem: AtomicU64,
    ticks: AtomicU64,
}

impl BudgetTracker {
    /// A tracker that never trips — for callers without a budget.
    pub fn unlimited() -> BudgetTracker {
        Budget::UNLIMITED.start()
    }

    /// Charge `count` node expansions in `phase`. Fails if the node cap is
    /// exceeded, or (every [`WALL_CHECK_PERIOD`] charges) if the wall clock
    /// ran out.
    #[inline]
    pub fn charge_nodes(&self, phase: Phase, count: u64) -> Result<(), BudgetExceeded> {
        let spent = self
            .nodes
            .fetch_add(count, Ordering::Relaxed)
            .saturating_add(count);
        if let Some(cap) = self.node_cap {
            if spent > cap {
                return Err(BudgetExceeded {
                    phase,
                    resource: Resource::NodeExpansions,
                    spent,
                    cap,
                });
            }
        }
        self.tick_wall(phase)
    }

    /// Charge `bytes` of tracked memory in `phase`.
    #[inline]
    pub fn charge_memory(&self, phase: Phase, bytes: u64) -> Result<(), BudgetExceeded> {
        let spent = self
            .mem
            .fetch_add(bytes, Ordering::Relaxed)
            .saturating_add(bytes);
        if let Some(cap) = self.mem_cap {
            if spent > cap {
                return Err(BudgetExceeded {
                    phase,
                    resource: Resource::MemoryBytes,
                    spent,
                    cap,
                });
            }
        }
        self.tick_wall(phase)
    }

    /// Release `bytes` of tracked memory (freed scratch space).
    #[inline]
    pub fn release_memory(&self, bytes: u64) {
        // fetch_update loops only under contention; release sites are rare
        // (phase teardown), so this never spins in practice.
        let _ = self
            .mem
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |m| {
                Some(m.saturating_sub(bytes))
            });
    }

    /// Forced check of every cap, including an unconditional wall-clock
    /// sample. Call at phase boundaries.
    pub fn checkpoint(&self, phase: Phase) -> Result<(), BudgetExceeded> {
        if let Some(cap) = self.node_cap {
            let spent = self.nodes.load(Ordering::Relaxed);
            if spent > cap {
                return Err(BudgetExceeded {
                    phase,
                    resource: Resource::NodeExpansions,
                    spent,
                    cap,
                });
            }
        }
        if let Some(cap) = self.mem_cap {
            let spent = self.mem.load(Ordering::Relaxed);
            if spent > cap {
                return Err(BudgetExceeded {
                    phase,
                    resource: Resource::MemoryBytes,
                    spent,
                    cap,
                });
            }
        }
        self.check_wall(phase)
    }

    /// Amortized wall-clock check: samples `Instant::now` every
    /// [`WALL_CHECK_PERIOD`] calls.
    #[inline]
    fn tick_wall(&self, phase: Phase) -> Result<(), BudgetExceeded> {
        if self.deadline.is_none() {
            return Ok(());
        }
        let t = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if t.is_multiple_of(WALL_CHECK_PERIOD) {
            self.check_wall(phase)
        } else {
            Ok(())
        }
    }

    fn check_wall(&self, phase: Phase) -> Result<(), BudgetExceeded> {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetExceeded {
                    phase,
                    resource: Resource::WallClockMs,
                    spent: self.started.elapsed().as_millis() as u64,
                    cap: self.wall_cap_ms.unwrap_or(0),
                });
            }
        }
        Ok(())
    }

    /// Node expansions charged so far.
    pub fn nodes_spent(&self) -> u64 {
        self.nodes.load(Ordering::Relaxed)
    }

    /// Tracked memory currently charged, in bytes.
    pub fn memory_spent(&self) -> u64 {
        self.mem.load(Ordering::Relaxed)
    }

    /// Time since the tracker was started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let t = BudgetTracker::unlimited();
        for _ in 0..10_000 {
            t.charge_nodes(Phase::CoverConstruction, 1_000_000).unwrap();
        }
        t.checkpoint(Phase::TrieBuild).unwrap();
        assert!(t.nodes_spent() >= 10_000 * 1_000_000);
    }

    #[test]
    fn node_cap_trips_with_context() {
        let t = Budget::default().with_node_expansions(10).start();
        t.charge_nodes(Phase::SkipClosure, 7).unwrap();
        let e = t.charge_nodes(Phase::SkipClosure, 7).unwrap_err();
        assert_eq!(e.phase, Phase::SkipClosure);
        assert_eq!(e.resource, Resource::NodeExpansions);
        assert_eq!(e.spent, 14);
        assert_eq!(e.cap, 10);
        assert!(e.to_string().contains("skip-pointer closure"));
    }

    #[test]
    fn memory_cap_and_release() {
        let t = Budget::default().with_memory_bytes(100).start();
        t.charge_memory(Phase::TrieBuild, 80).unwrap();
        t.release_memory(50);
        t.charge_memory(Phase::TrieBuild, 60).unwrap();
        assert!(t.charge_memory(Phase::TrieBuild, 50).is_err());
    }

    #[test]
    fn wall_clock_trips_on_checkpoint() {
        let t = Budget::default().with_wall_clock(Duration::ZERO).start();
        let e = t.checkpoint(Phase::NaiveMaterialize).unwrap_err();
        assert_eq!(e.resource, Resource::WallClockMs);
    }

    #[test]
    fn wall_clock_trips_amortized() {
        let t = Budget::default().with_wall_clock(Duration::ZERO).start();
        let mut tripped = false;
        for _ in 0..(WALL_CHECK_PERIOD * 2) {
            if t.charge_nodes(Phase::DistOracle, 1).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "amortized wall check never fired");
    }

    #[test]
    fn tracker_is_shareable_across_threads() {
        // Compile-time: parallel prepare shares one tracker by reference.
        const fn assert_sync<T: Sync + Send>() {}
        const _: () = assert_sync::<BudgetTracker>();

        // Runtime: concurrent charges aggregate exactly, and the shared
        // node cap trips once total spend (not per-thread spend) crosses it.
        let t = Budget::default().with_node_expansions(1000).start();
        let tripped: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        let mut hit = false;
                        for _ in 0..300 {
                            if t.charge_nodes(Phase::KernelConstruction, 1).is_err() {
                                hit = true;
                            }
                        }
                        hit
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(t.nodes_spent(), 1200);
        assert!(
            tripped.iter().any(|&b| b),
            "total spend 1200 > cap 1000 must trip on some thread"
        );
    }

    #[test]
    fn budget_builders() {
        let b = Budget::default()
            .with_wall_clock(Duration::from_secs(1))
            .with_node_expansions(5)
            .with_memory_bytes(6);
        assert!(!b.is_unlimited());
        assert!(Budget::UNLIMITED.is_unlimited());
        assert_eq!(b.node_expansions, Some(5));
        assert_eq!(b.memory_bytes, Some(6));
    }
}
