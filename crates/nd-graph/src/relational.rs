//! Relational databases and their reduction to colored graphs (Section 2,
//! Lemma 2.2 of the paper).
//!
//! A database `D` over a schema `σ = {R_1, …, R_m}` is turned into the
//! colored graph `A'(D)`:
//!
//! * one node per **element** of the domain of `D` (ids `0..|D|`, preserving
//!   the element order — this keeps the lexicographic order of answers
//!   consistent);
//! * one node per **tuple** occurring in a relation, carrying the color
//!   `P_R` of its relation;
//! * one node per (element, position, tuple) **incidence**, carrying the
//!   position color `C_i`, adjacent to both the element and the tuple node
//!   (this is the 1-subdivision of the adjacency graph `A(D)`).
//!
//! The companion query rewriting (turning `R(x_1,…,x_j)` into the
//! `∃t (P_R(t) ∧ ⋀_i ∃z (C_i(z) ∧ E(x_i,z) ∧ E(z,t)))` pattern) lives in
//! `nd-logic`, keyed by the [`AdjacencyMapping`] produced here.

use crate::builder::GraphBuilder;
use crate::graph::{ColorId, ColoredGraph, Vertex};

/// Schema of a single relation.
#[derive(Clone, Debug)]
pub struct RelationDef {
    pub name: String,
    pub arity: usize,
}

/// A finite relational structure with domain `0..domain_size`.
#[derive(Clone, Debug, Default)]
pub struct RelationalDb {
    pub domain_size: usize,
    pub relations: Vec<(RelationDef, Vec<Vec<u32>>)>,
}

impl RelationalDb {
    pub fn new(domain_size: usize) -> Self {
        RelationalDb {
            domain_size,
            relations: Vec::new(),
        }
    }

    /// Add a relation; tuples are deduplicated.
    pub fn add_relation(&mut self, name: &str, arity: usize, mut tuples: Vec<Vec<u32>>) {
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch in {name}");
            assert!(
                t.iter().all(|&a| (a as usize) < self.domain_size),
                "element out of domain in {name}"
            );
        }
        tuples.sort();
        tuples.dedup();
        self.relations.push((
            RelationDef {
                name: name.to_string(),
                arity,
            },
            tuples,
        ));
    }

    /// Maximum relation arity `k` of the schema.
    pub fn max_arity(&self) -> usize {
        self.relations
            .iter()
            .map(|(d, _)| d.arity)
            .max()
            .unwrap_or(0)
    }

    /// Does the database contain the given fact?
    pub fn holds(&self, relation: &str, tuple: &[u32]) -> bool {
        self.relations
            .iter()
            .find(|(d, _)| d.name == relation)
            .is_some_and(|(_, ts)| ts.binary_search_by(|t| t.as_slice().cmp(tuple)).is_ok())
    }

    /// Encoding size: domain plus total tuple cells.
    pub fn size(&self) -> usize {
        self.domain_size
            + self
                .relations
                .iter()
                .map(|(d, ts)| d.arity * ts.len())
                .sum::<usize>()
    }
}

/// Book-keeping for the `D ↦ A'(D)` reduction, consumed by the query
/// rewriting of Lemma 2.2.
#[derive(Clone, Debug)]
pub struct AdjacencyMapping {
    /// Number of domain elements of `D`; they occupy vertices `0..elements`.
    pub elements: usize,
    /// Maximum arity `k` of the schema.
    pub max_arity: usize,
    /// Position colors `C_1, …, C_k` (index `i-1` holds `C_i`).
    pub position_colors: Vec<ColorId>,
    /// One `P_R` color per relation, in schema order.
    pub relation_colors: Vec<(String, ColorId)>,
    /// Color marking the nodes that represent domain elements of `D`.
    ///
    /// Not part of the paper's `A'(D)` (there, answers are implicitly
    /// element nodes because free variables occur in relational atoms); we
    /// make the sort explicit so that the rewritten query can guard its free
    /// variables even when they occur only in equalities.
    pub element_color: ColorId,
}

impl AdjacencyMapping {
    /// Color `C_i` for position `i ∈ 1..=k`.
    pub fn position_color(&self, i: usize) -> ColorId {
        self.position_colors[i - 1]
    }

    /// Color `P_R` for a relation name.
    pub fn relation_color(&self, name: &str) -> Option<ColorId> {
        self.relation_colors
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, c)| c)
    }
}

/// Build the colored graph `A'(D)` and its mapping.
pub fn adjacency_graph(db: &RelationalDb) -> (ColoredGraph, AdjacencyMapping) {
    let k = db.max_arity();
    let n_elements = db.domain_size;
    let n_tuples: usize = db.relations.iter().map(|(_, ts)| ts.len()).sum();
    let n_incidences: usize = db.relations.iter().map(|(d, ts)| d.arity * ts.len()).sum();

    let mut b = GraphBuilder::new(n_elements + n_tuples + n_incidences);
    let mut position_members: Vec<Vec<Vertex>> = vec![Vec::new(); k];
    let mut relation_members: Vec<Vec<Vertex>> = Vec::with_capacity(db.relations.len());

    let mut tuple_node = n_elements as Vertex;
    let mut incidence_node = (n_elements + n_tuples) as Vertex;
    for (def, tuples) in &db.relations {
        let mut members = Vec::with_capacity(tuples.len());
        for t in tuples {
            members.push(tuple_node);
            for (i, &elem) in t.iter().enumerate() {
                // Subdivision vertex of color C_{i+1} between element and tuple.
                b.add_edge(elem, incidence_node);
                b.add_edge(incidence_node, tuple_node);
                position_members[i].push(incidence_node);
                incidence_node += 1;
            }
            tuple_node += 1;
        }
        let _ = def;
        relation_members.push(members);
    }

    let mut g = b.build();
    let mut position_colors = Vec::with_capacity(k);
    for (i, members) in position_members.into_iter().enumerate() {
        position_colors.push(g.add_color(members, Some(format!("@pos{}", i + 1))));
    }
    let mut relation_colors = Vec::with_capacity(db.relations.len());
    for ((def, _), members) in db.relations.iter().zip(relation_members) {
        let c = g.add_color(members, Some(format!("@rel:{}", def.name)));
        relation_colors.push((def.name.clone(), c));
    }
    let element_color = g.add_color(
        (0..n_elements as Vertex).collect(),
        Some("@elem".to_string()),
    );

    (
        g,
        AdjacencyMapping {
            elements: n_elements,
            max_arity: k,
            position_colors,
            relation_colors,
            element_color,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> RelationalDb {
        let mut db = RelationalDb::new(4);
        db.add_relation("R", 3, vec![vec![0, 1, 2], vec![1, 1, 3]]);
        db.add_relation("S", 1, vec![vec![2]]);
        db
    }

    #[test]
    fn db_basics() {
        let db = sample_db();
        assert_eq!(db.max_arity(), 3);
        assert!(db.holds("R", &[0, 1, 2]));
        assert!(!db.holds("R", &[2, 1, 0]));
        assert!(db.holds("S", &[2]));
        assert_eq!(db.size(), 4 + 6 + 1);
    }

    #[test]
    fn adjacency_graph_structure() {
        let db = sample_db();
        let (g, map) = adjacency_graph(&db);
        // 4 elements + 3 tuples + (3+3+1) incidences.
        assert_eq!(g.n(), 4 + 3 + 7);
        // Each incidence contributes 2 edges.
        assert_eq!(g.m(), 14);
        assert_eq!(map.elements, 4);
        assert_eq!(map.max_arity, 3);

        // Tuple (0,1,2) of R: its tuple node has color P_R and is connected
        // to elements 0, 1, 2 through C_1, C_2, C_3 incidence nodes.
        let pr = map.relation_color("R").unwrap();
        let tuple_nodes = g.color_members(pr);
        assert_eq!(tuple_nodes.len(), 2);
        let t = tuple_nodes[0];
        let mut seen = Vec::new();
        for &z in g.neighbors(t) {
            // z is an incidence node: its other neighbor is the element.
            let pos = (1..=3)
                .find(|&i| g.has_color(z, map.position_color(i)))
                .unwrap();
            let elem = *g.neighbors(z).iter().find(|&&w| w != t).unwrap();
            seen.push((pos, elem));
        }
        seen.sort();
        assert_eq!(seen, vec![(1, 0), (2, 1), (3, 2)]);
    }

    #[test]
    fn subdivision_means_bipartite_like_distances() {
        // Element and tuple nodes are at even distance; an element is at
        // distance 2 from each tuple node containing it.
        let db = sample_db();
        let (g, map) = adjacency_graph(&db);
        let pr = map.relation_color("R").unwrap();
        let t0 = g.color_members(pr)[0];
        assert!(crate::bfs::within_distance(&g, 0, t0, 2));
        assert!(!crate::bfs::within_distance(&g, 0, t0, 1));
    }
}
