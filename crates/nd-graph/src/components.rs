//! Connected components and simple connectivity utilities.
//!
//! The enumeration machinery treats each component independently (a cover
//! bag never spans components), and several generators/tests need
//! connectivity checks, so these live in the graph substrate.

use crate::graph::{ColoredGraph, Vertex};

/// Per-vertex component labels (`0..count`), labelled in order of each
/// component's smallest vertex.
pub struct Components {
    pub count: usize,
    labels: Vec<u32>,
}

impl Components {
    /// Linear-time BFS labelling.
    pub fn compute(g: &ColoredGraph) -> Components {
        let n = g.n();
        let mut labels = vec![u32::MAX; n];
        let mut count = 0u32;
        let mut queue = Vec::new();
        for start in 0..n as Vertex {
            if labels[start as usize] != u32::MAX {
                continue;
            }
            labels[start as usize] = count;
            queue.clear();
            queue.push(start);
            while let Some(u) = queue.pop() {
                for &w in g.neighbors(u) {
                    if labels[w as usize] == u32::MAX {
                        labels[w as usize] = count;
                        queue.push(w);
                    }
                }
            }
            count += 1;
        }
        Components {
            count: count as usize,
            labels,
        }
    }

    /// The component label of `v`.
    pub fn label(&self, v: Vertex) -> u32 {
        self.labels[v as usize]
    }

    /// Are `u` and `v` in the same component?
    pub fn same(&self, u: Vertex, v: Vertex) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// Members of each component, sorted.
    pub fn members(&self) -> Vec<Vec<Vertex>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &l) in self.labels.iter().enumerate() {
            out[l as usize].push(v as Vertex);
        }
        out
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.members().iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Is the graph connected (vacuously true when empty)?
pub fn is_connected(g: &ColoredGraph) -> bool {
    Components::compute(g).count <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_is_connected() {
        assert!(is_connected(&generators::path(10)));
        assert!(is_connected(&generators::path(0)));
        assert!(is_connected(&generators::path(1)));
    }

    #[test]
    fn forest_components() {
        let g = generators::random_forest(100, 0.5, 3);
        let c = Components::compute(&g);
        assert!(c.count > 1);
        let members = c.members();
        assert_eq!(members.iter().map(Vec::len).sum::<usize>(), 100);
        // Labels agree with membership and edges stay within components.
        for (l, m) in members.iter().enumerate() {
            for &v in m {
                assert_eq!(c.label(v), l as u32);
            }
        }
        for (u, v) in g.edges() {
            assert!(c.same(u, v));
        }
        assert!(c.largest() >= 1);
    }

    #[test]
    fn two_cliques() {
        let mut b = crate::builder::GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            b.add_edge(u, v);
        }
        let c = Components::compute(&b.build());
        assert_eq!(c.count, 2);
        assert!(c.same(0, 2));
        assert!(!c.same(0, 3));
    }
}
