//! Bounded breadth-first search with reusable scratch buffers.
//!
//! Distances and neighborhoods (`N_r(v)`, Section 2 of the paper) are the
//! workhorse of every preprocessing phase, so the scratch state is designed
//! to be reused across many searches without reallocation: `dist` is a dense
//! array reset lazily via the `touched` list.

use crate::graph::{ColoredGraph, Vertex};

/// Sentinel distance meaning "not reached".
pub const UNREACHED: u32 = u32::MAX;

/// Reusable BFS state sized for a graph with `n` vertices.
pub struct BfsScratch {
    dist: Vec<u32>,
    queue: Vec<Vertex>,
    touched: Vec<Vertex>,
}

impl BfsScratch {
    /// Scratch for graphs with at most `n` vertices.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            dist: vec![UNREACHED; n],
            queue: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// Grow the scratch to cover `n` vertices if needed.
    pub fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, UNREACHED);
        }
    }

    /// Distance of `v` from the sources of the last search, or [`UNREACHED`].
    #[inline]
    pub fn dist(&self, v: Vertex) -> u32 {
        self.dist[v as usize]
    }

    /// Vertices reached by the last search, in BFS (hence distance-monotone)
    /// order. Sources come first.
    #[inline]
    pub fn reached(&self) -> &[Vertex] {
        &self.touched
    }

    fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = UNREACHED;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// Multi-source BFS from `sources` up to radius `r` (inclusive).
    ///
    /// After the call, [`Self::dist`] and [`Self::reached`] describe the ball
    /// `N_r(sources)`.
    pub fn run_multi(&mut self, g: &ColoredGraph, sources: &[Vertex], r: u32) {
        self.ensure(g.n());
        self.reset();
        for &s in sources {
            if self.dist[s as usize] == UNREACHED {
                self.dist[s as usize] = 0;
                self.queue.push(s);
                self.touched.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            if du >= r {
                continue;
            }
            for &w in g.neighbors(u) {
                if self.dist[w as usize] == UNREACHED {
                    self.dist[w as usize] = du + 1;
                    self.queue.push(w);
                    self.touched.push(w);
                }
            }
        }
    }

    /// Single-source bounded BFS.
    pub fn run(&mut self, g: &ColoredGraph, source: Vertex, r: u32) {
        self.run_multi(g, &[source], r);
    }

    /// Sorted vertex set of the ball `N_r(v)`.
    pub fn ball_sorted(&mut self, g: &ColoredGraph, v: Vertex, r: u32) -> Vec<Vertex> {
        self.run(g, v, r);
        let mut out = self.touched.clone();
        out.sort_unstable();
        out
    }

    /// Distance between `a` and `b`, capped at `r` (returns `None` if the
    /// distance exceeds `r`).
    pub fn distance_capped(
        &mut self,
        g: &ColoredGraph,
        a: Vertex,
        b: Vertex,
        r: u32,
    ) -> Option<u32> {
        if a == b {
            return Some(0);
        }
        self.ensure(g.n());
        self.reset();
        self.dist[a as usize] = 0;
        self.queue.push(a);
        self.touched.push(a);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            if du >= r {
                continue;
            }
            for &w in g.neighbors(u) {
                if self.dist[w as usize] == UNREACHED {
                    if w == b {
                        return Some(du + 1);
                    }
                    self.dist[w as usize] = du + 1;
                    self.queue.push(w);
                    self.touched.push(w);
                }
            }
        }
        None
    }
}

/// Convenience: sorted ball `N_r(v)` with a fresh scratch.
pub fn ball(g: &ColoredGraph, v: Vertex, r: u32) -> Vec<Vertex> {
    BfsScratch::new(g.n()).ball_sorted(g, v, r)
}

/// Convenience: `dist(a, b) ≤ r`?
pub fn within_distance(g: &ColoredGraph, a: Vertex, b: Vertex, r: u32) -> bool {
    BfsScratch::new(g.n()).distance_capped(g, a, b, r).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_distances() {
        let g = generators::path(6);
        let mut s = BfsScratch::new(g.n());
        s.run(&g, 0, 3);
        assert_eq!(s.dist(0), 0);
        assert_eq!(s.dist(3), 3);
        assert_eq!(s.dist(4), UNREACHED);
        assert_eq!(s.reached().len(), 4);
    }

    #[test]
    fn multi_source() {
        let g = generators::path(7);
        let mut s = BfsScratch::new(g.n());
        s.run_multi(&g, &[0, 6], 2);
        assert_eq!(s.dist(2), 2);
        assert_eq!(s.dist(4), 2);
        assert_eq!(s.dist(3), UNREACHED);
    }

    #[test]
    fn capped_distance() {
        let g = generators::cycle(10);
        let mut s = BfsScratch::new(g.n());
        assert_eq!(s.distance_capped(&g, 0, 5, 10), Some(5));
        assert_eq!(s.distance_capped(&g, 0, 7, 10), Some(3));
        assert_eq!(s.distance_capped(&g, 0, 5, 4), None);
        assert_eq!(s.distance_capped(&g, 3, 3, 0), Some(0));
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let g = generators::path(5);
        let mut s = BfsScratch::new(g.n());
        s.run(&g, 0, 4);
        s.run(&g, 4, 1);
        assert_eq!(s.dist(0), UNREACHED);
        assert_eq!(s.dist(3), 1);
        assert_eq!(s.dist(4), 0);
    }

    #[test]
    fn ball_contents() {
        let g = generators::grid(4, 4);
        let b = ball(&g, 5, 1); // vertex (1,1)
        assert_eq!(b, vec![1, 4, 5, 6, 9]);
    }
}
