//! Mutable construction of [`ColoredGraph`]s.

use crate::error::GraphError;
use crate::graph::{ColoredGraph, Vertex};

/// Collects edges and colors, then freezes them into a CSR-encoded
/// [`ColoredGraph`]. Duplicate edges and self-loops are silently dropped.
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Vertex, Vertex)>,
    colors: Vec<(Vec<Vertex>, Option<String>)>,
}

impl GraphBuilder {
    /// A builder for a graph on vertices `0..n`.
    ///
    /// Panicking convenience; use [`GraphBuilder::try_new`] for untrusted
    /// vertex counts.
    pub fn new(n: usize) -> Self {
        Self::try_new(n).expect("vertex ids must fit in u32")
    }

    /// A builder for a graph on vertices `0..n`, rejecting counts that do
    /// not fit the `u32` id space.
    pub fn try_new(n: usize) -> Result<Self, GraphError> {
        if n >= u32::MAX as usize {
            return Err(GraphError::TooManyVertices { n });
        }
        Ok(GraphBuilder {
            n,
            edges: Vec::new(),
            colors: Vec::new(),
        })
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add an undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// Panicking convenience; use [`GraphBuilder::try_add_edge`] for
    /// untrusted endpoints.
    pub fn add_edge(&mut self, u: Vertex, v: Vertex) {
        self.try_add_edge(u, v).expect("vertex out of range");
    }

    /// Add an undirected edge `{u, v}`, rejecting out-of-range endpoints.
    /// Self-loops are ignored.
    pub fn try_add_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        for w in [u, v] {
            if (w as usize) >= self.n {
                return Err(GraphError::VertexOutOfRange { v: w, n: self.n });
            }
        }
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
        Ok(())
    }

    /// Add an edge if it is not already present (linear scan-free: dedup
    /// happens at build time anyway, so this is just `add_edge`).
    pub fn add_edge_dedup(&mut self, u: Vertex, v: Vertex) {
        self.add_edge(u, v);
    }

    /// Register a color with the given members.
    pub fn add_color(&mut self, members: Vec<Vertex>, name: Option<String>) {
        self.colors.push((members, name));
    }

    /// Freeze into an immutable graph.
    ///
    /// Panicking convenience; use [`GraphBuilder::try_build`] when color
    /// member lists are untrusted.
    pub fn build(self) -> ColoredGraph {
        self.try_build().expect("color member out of range")
    }

    /// Freeze into an immutable graph, rejecting out-of-range color members.
    pub fn try_build(mut self) -> Result<ColoredGraph, GraphError> {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.n;
        let mut degrees = vec![0u32; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adjacency = vec![0 as Vertex; acc as usize];
        for &(u, v) in &self.edges {
            adjacency[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Per-vertex lists are sorted because edges were globally sorted and
        // inserted in order of the *other* endpoint... which does not hold for
        // the second insertion. Sort each list to restore the invariant.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            adjacency[lo..hi].sort_unstable();
        }

        let mut g = ColoredGraph {
            offsets,
            adjacency,
            color_members: Vec::new(),
            color_names: Vec::new(),
        };
        for (members, name) in self.colors.drain(..) {
            g.try_add_color(members, name)?;
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let mut b = GraphBuilder::new(5);
        for (u, v) in [(4, 0), (4, 2), (4, 1), (0, 2), (3, 0)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        for v in g.vertices() {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted, no dups");
            for &u in ns {
                assert!(g.has_edge(u, v));
            }
        }
        assert_eq!(g.neighbors(4), &[0, 1, 2]);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }
}
