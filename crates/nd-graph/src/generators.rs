//! Graph families used as empirical stand-ins for nowhere dense classes.
//!
//! Nowhere denseness is a property of infinite *classes*; to exercise the
//! algorithms we generate members of concrete classes known to be nowhere
//! dense (planar grids, trees/forests, bounded-degree graphs, long-path
//! subdivisions) plus *dense contrast* families (`G(n,m)` with superlinear
//! `m`, cliques) on which the guarantees are expected to degrade — see
//! experiment A3 in DESIGN.md.

use crate::builder::GraphBuilder;
use crate::graph::{ColoredGraph, Vertex};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> ColoredGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as Vertex, v as Vertex);
    }
    b.build()
}

/// A cycle on `n ≥ 3` vertices (for `n < 3`, a path).
pub fn cycle(n: usize) -> ColoredGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge((v - 1) as Vertex, v as Vertex);
    }
    if n >= 3 {
        b.add_edge((n - 1) as Vertex, 0);
    }
    b.build()
}

/// A star with center `0` and `n-1` leaves.
pub fn star(n: usize) -> ColoredGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v as Vertex);
    }
    b.build()
}

/// The complete graph `K_n` (dense contrast family).
pub fn clique(n: usize) -> ColoredGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as Vertex, v as Vertex);
        }
    }
    b.build()
}

/// A `w × h` grid (planar, hence nowhere dense). Vertex `(x, y)` has id
/// `y*w + x`.
pub fn grid(w: usize, h: usize) -> ColoredGraph {
    let mut b = GraphBuilder::new(w * h);
    let id = |x: usize, y: usize| (y * w + x) as Vertex;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    b.build()
}

/// A complete binary tree with `n` vertices (vertex `v` has children
/// `2v+1`, `2v+2`).
pub fn binary_tree(n: usize) -> ColoredGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v as Vertex, ((v - 1) / 2) as Vertex);
    }
    b.build()
}

/// A uniformly random labelled tree on `n` vertices (random attachment:
/// vertex `v` attaches to a uniform earlier vertex).
pub fn random_tree(n: usize, seed: u64) -> ColoredGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        let p = rng.random_range(0..v);
        b.add_edge(v as Vertex, p as Vertex);
    }
    b.build()
}

/// A random forest: a random tree with each edge kept with probability
/// `keep`.
pub fn random_forest(n: usize, keep: f64, seed: u64) -> ColoredGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        if rng.random_bool(keep.clamp(0.0, 1.0)) {
            let p = rng.random_range(0..v);
            b.add_edge(v as Vertex, p as Vertex);
        }
    }
    b.build()
}

/// A random graph with maximum degree at most `d` (bounded degree ⊂ bounded
/// expansion ⊂ nowhere dense). Samples `n*d/2` candidate edges and keeps
/// those that respect the degree bound.
pub fn bounded_degree(n: usize, d: usize, seed: u64) -> ColoredGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deg = vec![0usize; n];
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let target = n * d / 2;
    let mut attempts = 0usize;
    let mut added = 0usize;
    let max_attempts = target * 8 + 64;
    let mut seen = std::collections::HashSet::new();
    while added < target && attempts < max_attempts {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v || deg[u] >= d || deg[v] >= d {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if !seen.insert(key) {
            continue;
        }
        deg[u] += 1;
        deg[v] += 1;
        b.add_edge(u as Vertex, v as Vertex);
        added += 1;
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: `m` uniformly random distinct edges (dense
/// contrast family when `m` is superlinear).
pub fn gnm(n: usize, m: usize, seed: u64) -> ColoredGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let max_m = n * (n - 1) / 2;
    let m = m.min(max_m);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v && seen.insert((u.min(v), u.max(v))) {
            b.add_edge(u as Vertex, v as Vertex);
        }
    }
    b.build()
}

/// A caterpillar: a spine path of length `spine` with `legs` pendant leaves
/// per spine vertex.
pub fn caterpillar(spine: usize, legs: usize) -> ColoredGraph {
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for v in 1..spine {
        b.add_edge((v - 1) as Vertex, v as Vertex);
    }
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            b.add_edge(s as Vertex, next as Vertex);
            next += 1;
        }
    }
    b.build()
}

/// The exact 1-subdivision of `K_n`: every edge of the clique replaced by a
/// path of length 2. Subdivided cliques are sparse (`‖G‖ = O(|G|)`) yet have
/// unbounded average "shallow" density at depth 1 — a classical example
/// separating degrees of sparseness.
pub fn subdivided_clique(n: usize) -> ColoredGraph {
    let edges = n * n.saturating_sub(1) / 2;
    let mut b = GraphBuilder::new(n + edges);
    let mut next = n;
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u as Vertex, next as Vertex);
            b.add_edge(v as Vertex, next as Vertex);
            next += 1;
        }
    }
    b.build()
}

/// A random "near-planar" graph: a grid with `extra` random chords of length
/// at most `chord_radius` in grid distance (locally perturbed planar graph;
/// stays in a bounded-expansion-like regime for small parameters).
pub fn perturbed_grid(w: usize, h: usize, extra: usize, seed: u64) -> ColoredGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = w * h;
    let mut b = GraphBuilder::new(n);
    let id = |x: usize, y: usize| (y * w + x) as Vertex;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    for _ in 0..extra {
        let x = rng.random_range(0..w);
        let y = rng.random_range(0..h);
        let dx = rng.random_range(0..3usize);
        let dy = rng.random_range(0..3usize);
        let (x2, y2) = ((x + dx).min(w - 1), (y + dy).min(h - 1));
        if (x, y) != (x2, y2) {
            b.add_edge(id(x, y), id(x2, y2));
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m` existing vertices chosen proportionally to their degree. Scale-free
/// degree distribution: sparse overall (`‖G‖ ≈ m·n`) but with high-degree
/// hubs, sitting between the uniform sparse families and the dense
/// contrasts — a stress test for cover/kernel degree.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> ColoredGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n == 0 {
        return b.build();
    }
    // Endpoint multiset: each edge contributes both endpoints, so sampling
    // uniformly from it is degree-proportional sampling.
    let mut endpoints: Vec<Vertex> = vec![0];
    for v in 1..n {
        let mut targets = std::collections::HashSet::new();
        let wanted = m.min(v);
        let mut guard = 0;
        while targets.len() < wanted && guard < 16 * m + 16 {
            guard += 1;
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if (t as usize) < v {
                targets.insert(t);
            }
        }
        for &t in &targets {
            b.add_edge(v as Vertex, t);
            endpoints.push(v as Vertex);
            endpoints.push(t);
        }
        if targets.is_empty() {
            endpoints.push(v as Vertex); // keep isolated vertices samplable
        }
    }
    b.build()
}

/// Assign `num_colors` random colors; every vertex gets each color
/// independently with probability `density`. Colors are named `C0`, `C1`, ….
pub fn with_random_colors(
    mut g: ColoredGraph,
    num_colors: usize,
    density: f64,
    seed: u64,
) -> ColoredGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    for c in 0..num_colors {
        let members: Vec<Vertex> = g
            .vertices()
            .filter(|_| rng.random_bool(density.clamp(0.0, 1.0)))
            .collect();
        g.add_color(members, Some(format!("C{c}")));
    }
    g
}

// ---------------------------------------------------------------------
// Metamorphic transforms (conformance testing).
//
// These are not graph *families* but seeded, structure-preserving (or
// deliberately structure-shrinking) rewrites of an existing instance. The
// `nd-conform` harness uses them to state invariants no single engine run
// can check: FO answers are equivariant under relabeling, and monotone
// queries only lose answers under vertex deletion.
// ---------------------------------------------------------------------

/// A seeded uniform permutation of `0..n` (Fisher–Yates over splitmix64).
pub fn random_permutation(n: usize, seed: u64) -> Vec<Vertex> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<Vertex> = (0..n as Vertex).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..i + 1);
        perm.swap(i, j);
    }
    perm
}

/// Relabel `g` by `perm`: vertex `v` of the input becomes `perm[v]` of the
/// output. Edges and colors (including names) are carried over, so for any
/// FO query `q`, `t ∈ q(g)` iff `perm(t) ∈ q(permuted(g, perm))`.
///
/// `perm` must be a permutation of `0..g.n()` (checked).
pub fn permuted(g: &ColoredGraph, perm: &[Vertex]) -> ColoredGraph {
    assert_eq!(perm.len(), g.n(), "permutation length mismatch");
    let mut seen = vec![false; g.n()];
    for &p in perm {
        assert!(
            (p as usize) < g.n() && !std::mem::replace(&mut seen[p as usize], true),
            "not a permutation"
        );
    }
    let mut b = GraphBuilder::new(g.n());
    for (u, v) in g.edges() {
        b.add_edge(perm[u as usize], perm[v as usize]);
    }
    let mut out = b.build();
    for c in 0..g.num_colors() {
        let id = crate::graph::ColorId(c as u32);
        let members = g
            .color_members(id)
            .iter()
            .map(|&v| perm[v as usize])
            .collect();
        out.add_color(members, g.color_name(id).map(str::to_owned));
    }
    out
}

/// Delete vertex `v`: the induced subgraph on the remaining vertices, with
/// ids compacted (`w > v` becomes `w - 1`) and colors carried over. The
/// compaction map is order-preserving, so lexicographic comparisons of
/// answer tuples survive the translation.
pub fn remove_vertex(g: &ColoredGraph, v: Vertex) -> ColoredGraph {
    assert!((v as usize) < g.n(), "vertex out of range");
    let shift = |w: Vertex| if w > v { w - 1 } else { w };
    let mut b = GraphBuilder::new(g.n() - 1);
    for (x, y) in g.edges() {
        if x != v && y != v {
            b.add_edge(shift(x), shift(y));
        }
    }
    let mut out = b.build();
    for c in 0..g.num_colors() {
        let id = crate::graph::ColorId(c as u32);
        let members = g
            .color_members(id)
            .iter()
            .filter(|&&w| w != v)
            .map(|&w| shift(w))
            .collect();
        out.add_color(members, g.color_name(id).map(str::to_owned));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_cycle() {
        assert_eq!(path(5).m(), 4);
        assert_eq!(cycle(5).m(), 5);
        assert_eq!(cycle(2).m(), 1);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 2 * 12 - 3 - 4); // 2wh - w - h
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(4), 4); // interior of 3x4: (1,1)=4
    }

    #[test]
    fn trees_are_trees() {
        for seed in 0..5 {
            let g = random_tree(50, seed);
            assert_eq!(g.m(), 49);
            // connectivity via BFS
            let b = crate::bfs::ball(&g, 0, 100);
            assert_eq!(b.len(), 50);
        }
    }

    #[test]
    fn bounded_degree_respects_bound() {
        let g = bounded_degree(200, 4, 7);
        assert!(g.max_degree() <= 4);
        assert!(g.m() > 100); // should get reasonably close to n*d/2 = 400
    }

    #[test]
    fn gnm_edge_count() {
        let g = gnm(50, 100, 3);
        assert_eq!(g.m(), 100);
        let g = gnm(5, 1000, 3);
        assert_eq!(g.m(), 10); // capped at complete graph
    }

    #[test]
    fn subdivided_clique_is_sparse() {
        let g = subdivided_clique(10);
        assert_eq!(g.n(), 10 + 45);
        assert_eq!(g.m(), 90);
        assert_eq!(g.max_degree(), 9);
    }

    #[test]
    fn caterpillar_shape() {
        let g = caterpillar(4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 + 8);
    }

    #[test]
    fn random_colors_density() {
        let g = with_random_colors(path(1000), 2, 0.5, 1);
        assert_eq!(g.num_colors(), 2);
        let c = g.color_members(crate::graph::ColorId(0)).len();
        assert!((300..700).contains(&c), "density far off: {c}");
        assert_eq!(g.color_by_name("C1"), Some(crate::graph::ColorId(1)));
    }

    #[test]
    fn barabasi_albert_shape() {
        let g = barabasi_albert(500, 3, 4);
        assert_eq!(g.n(), 500);
        // Roughly m edges per vertex (duplicate draws reduce slightly).
        assert!(g.m() > 2 * 500 / 2 && g.m() <= 3 * 500);
        // Scale-free: the hubs should far exceed the mean degree.
        let mean = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(g.max_degree() as f64 > 4.0 * mean, "no hubs emerged");
        // Connected by construction (every vertex attaches to an earlier one).
        assert_eq!(crate::bfs::ball(&g, 0, 1_000).len(), 500);
    }

    #[test]
    fn permutation_is_uniformly_valid() {
        for seed in 0..5 {
            let p = random_permutation(40, seed);
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..40).collect::<Vec<_>>());
        }
        assert_ne!(random_permutation(40, 1), random_permutation(40, 2));
    }

    #[test]
    fn permuted_preserves_structure() {
        let mut g = grid(4, 3);
        g.add_color(vec![0, 3, 7], Some("Blue".into()));
        let perm = random_permutation(g.n(), 9);
        let h = permuted(&g, &perm);
        assert_eq!(h.n(), g.n());
        assert_eq!(h.m(), g.m());
        for (u, v) in g.edges() {
            assert!(h.has_edge(perm[u as usize], perm[v as usize]));
        }
        let blue = h.color_by_name("Blue").unwrap();
        let mut want: Vec<Vertex> = [0u32, 3, 7].iter().map(|&v| perm[v as usize]).collect();
        want.sort_unstable();
        assert_eq!(h.color_members(blue), want.as_slice());
    }

    #[test]
    fn remove_vertex_compacts_ids() {
        let mut g = path(5); // 0-1-2-3-4
        g.add_color(vec![1, 3], Some("Blue".into()));
        let h = remove_vertex(&g, 2);
        assert_eq!(h.n(), 4);
        // Edges 0-1 and (3-4 shifted to) 2-3 survive; 1-2 and 2-3 die.
        assert_eq!(h.m(), 2);
        assert!(h.has_edge(0, 1) && h.has_edge(2, 3));
        let blue = h.color_by_name("Blue").unwrap();
        assert_eq!(h.color_members(blue), &[1, 2]);
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.m(), 6);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 3, 4]);
    }
}
