//! The central [`ColoredGraph`] type.
//!
//! A colored graph is a finite structure over the schema
//! `σ_c = {E, C_1, …, C_c}` where `E` is a symmetric binary relation and the
//! `C_i` are unary relations ("colors"). The vertex set is `0..n` and the
//! linear order on the domain (required by the paper for lexicographic
//! enumeration) is the natural order on vertex ids.
//!
//! The edge relation is immutable after construction (CSR layout); colors are
//! extensible because the Removal Lemma (Lemma 5.5) and the distance-oracle
//! recursion of Section 4 repeatedly *recolor* graphs to encode removed
//! vertices.

use std::fmt;

/// A vertex identifier. Vertices of a graph with `n` vertices are `0..n`.
pub type Vertex = u32;

/// Identifier of a color (unary relation `C_i`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ColorId(pub u32);

impl fmt::Display for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// An immutable undirected graph with extensible vertex colors.
///
/// Invariants:
/// * adjacency lists are sorted and contain no duplicates or self-loops;
/// * the graph is symmetric (`u ∈ adj(v)` iff `v ∈ adj(u)`);
/// * per-color membership lists are sorted.
#[derive(Clone)]
pub struct ColoredGraph {
    /// CSR offsets, length `n + 1`.
    pub(crate) offsets: Vec<u32>,
    /// CSR adjacency, length `2m`.
    pub(crate) adjacency: Vec<Vertex>,
    /// For each color, the sorted list of member vertices.
    pub(crate) color_members: Vec<Vec<Vertex>>,
    /// Optional human-readable color names (aligned with `color_members`).
    pub(crate) color_names: Vec<Option<String>>,
}

impl ColoredGraph {
    /// Number of vertices `|G|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Encoding size `‖G‖ = |V| + |E|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.n() + self.m()
    }

    /// Iterator over all vertices in increasing order.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.n() as Vertex
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.neighbors(v).len()
    }

    /// Whether `{u, v}` is an edge. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Number of colors currently registered.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.color_members.len()
    }

    /// Whether vertex `v` has color `c`. `O(log |C_c|)`.
    #[inline]
    pub fn has_color(&self, v: Vertex, c: ColorId) -> bool {
        self.color_members[c.0 as usize].binary_search(&v).is_ok()
    }

    /// Sorted members of color `c`.
    #[inline]
    pub fn color_members(&self, c: ColorId) -> &[Vertex] {
        &self.color_members[c.0 as usize]
    }

    /// Name of color `c`, if one was registered.
    pub fn color_name(&self, c: ColorId) -> Option<&str> {
        self.color_names[c.0 as usize].as_deref()
    }

    /// Look up a color by name.
    pub fn color_by_name(&self, name: &str) -> Option<ColorId> {
        self.color_names
            .iter()
            .position(|n| n.as_deref() == Some(name))
            .map(|i| ColorId(i as u32))
    }

    /// Register a new color with the given members (sorted and deduplicated
    /// here).
    ///
    /// This is the recoloring primitive used by the Removal Lemma: a
    /// `σ_{c'}`-expansion of the graph is obtained by adding colors.
    ///
    /// Panicking convenience; use [`ColoredGraph::try_add_color`] for
    /// untrusted member lists.
    pub fn add_color(&mut self, members: Vec<Vertex>, name: Option<String>) -> ColorId {
        self.try_add_color(members, name)
            .expect("color member out of range")
    }

    /// Register a new color, rejecting out-of-range members instead of
    /// silently corrupting membership queries.
    pub fn try_add_color(
        &mut self,
        mut members: Vec<Vertex>,
        name: Option<String>,
    ) -> Result<ColorId, crate::error::GraphError> {
        members.sort_unstable();
        members.dedup();
        if let Some(&v) = members.last() {
            if (v as usize) >= self.n() {
                return Err(crate::error::GraphError::VertexOutOfRange { v, n: self.n() });
            }
        }
        let id = ColorId(self.color_members.len() as u32);
        self.color_members.push(members);
        self.color_names.push(name);
        Ok(id)
    }

    /// Total number of (vertex, color) memberships — the size of the unary
    /// part of the encoding.
    pub fn color_size(&self) -> usize {
        self.color_members.iter().map(Vec::len).sum()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as Vertex)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// All edges as ordered pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Move the graph behind an [`std::sync::Arc`] so many threads (and the
    /// indexes prepared over it) can co-own one immutable copy. The graph
    /// is CSR-encoded plain data — `Send + Sync` is asserted below, so a
    /// shared graph never needs a lock.
    pub fn into_shared(self) -> std::sync::Arc<ColoredGraph> {
        std::sync::Arc::new(self)
    }
}

// The serving runtime shares one graph across worker threads; keep the
// thread-safety of the plain-data representation a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ColoredGraph>();
};

impl fmt::Debug for ColoredGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ColoredGraph")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("colors", &self.num_colors())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_isolated() -> ColoredGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_isolated();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.size(), 7);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[Vertex]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_isolated();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn colors_roundtrip() {
        let mut g = triangle_plus_isolated();
        let blue = g.add_color(vec![2, 0, 2], Some("Blue".into()));
        assert_eq!(g.color_members(blue), &[0, 2]);
        assert!(g.has_color(0, blue));
        assert!(!g.has_color(1, blue));
        assert_eq!(g.color_by_name("Blue"), Some(blue));
        assert_eq!(g.color_name(blue), Some("Blue"));
        assert_eq!(g.color_size(), 2);
    }
}
