//! The central [`ColoredGraph`] type.
//!
//! A colored graph is a finite structure over the schema
//! `σ_c = {E, C_1, …, C_c}` where `E` is a symmetric binary relation and the
//! `C_i` are unary relations ("colors"). The vertex set is `0..n` and the
//! linear order on the domain (required by the paper for lexicographic
//! enumeration) is the natural order on vertex ids.
//!
//! The edge relation is immutable after construction (CSR layout); colors are
//! extensible because the Removal Lemma (Lemma 5.5) and the distance-oracle
//! recursion of Section 4 repeatedly *recolor* graphs to encode removed
//! vertices.

use std::fmt;

/// A vertex identifier. Vertices of a graph with `n` vertices are `0..n`.
pub type Vertex = u32;

/// Identifier of a color (unary relation `C_i`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ColorId(pub u32);

impl fmt::Display for ColorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// An immutable undirected graph with extensible vertex colors.
///
/// Invariants:
/// * adjacency lists are sorted and contain no duplicates or self-loops;
/// * the graph is symmetric (`u ∈ adj(v)` iff `v ∈ adj(u)`);
/// * per-color membership lists are sorted.
#[derive(Clone)]
pub struct ColoredGraph {
    /// CSR offsets, length `n + 1`.
    pub(crate) offsets: Vec<u32>,
    /// CSR adjacency, length `2m`.
    pub(crate) adjacency: Vec<Vertex>,
    /// For each color, the sorted list of member vertices.
    pub(crate) color_members: Vec<Vec<Vertex>>,
    /// Optional human-readable color names (aligned with `color_members`).
    pub(crate) color_names: Vec<Option<String>>,
}

impl ColoredGraph {
    /// Number of vertices `|G|`.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Encoding size `‖G‖ = |V| + |E|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.n() + self.m()
    }

    /// Iterator over all vertices in increasing order.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = Vertex> + '_ {
        0..self.n() as Vertex
    }

    /// Sorted neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: Vertex) -> &[Vertex] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: Vertex) -> usize {
        self.neighbors(v).len()
    }

    /// Whether `{u, v}` is an edge. `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        u != v && self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Number of colors currently registered.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.color_members.len()
    }

    /// Whether vertex `v` has color `c`. `O(log |C_c|)`.
    #[inline]
    pub fn has_color(&self, v: Vertex, c: ColorId) -> bool {
        self.color_members[c.0 as usize].binary_search(&v).is_ok()
    }

    /// Sorted members of color `c`.
    #[inline]
    pub fn color_members(&self, c: ColorId) -> &[Vertex] {
        &self.color_members[c.0 as usize]
    }

    /// Name of color `c`, if one was registered.
    pub fn color_name(&self, c: ColorId) -> Option<&str> {
        self.color_names[c.0 as usize].as_deref()
    }

    /// Look up a color by name.
    pub fn color_by_name(&self, name: &str) -> Option<ColorId> {
        self.color_names
            .iter()
            .position(|n| n.as_deref() == Some(name))
            .map(|i| ColorId(i as u32))
    }

    /// Register a new color with the given members (sorted and deduplicated
    /// here).
    ///
    /// This is the recoloring primitive used by the Removal Lemma: a
    /// `σ_{c'}`-expansion of the graph is obtained by adding colors.
    ///
    /// Panicking convenience; use [`ColoredGraph::try_add_color`] for
    /// untrusted member lists.
    pub fn add_color(&mut self, members: Vec<Vertex>, name: Option<String>) -> ColorId {
        self.try_add_color(members, name)
            .expect("color member out of range")
    }

    /// Register a new color, rejecting out-of-range members instead of
    /// silently corrupting membership queries.
    pub fn try_add_color(
        &mut self,
        mut members: Vec<Vertex>,
        name: Option<String>,
    ) -> Result<ColorId, crate::error::GraphError> {
        members.sort_unstable();
        members.dedup();
        if let Some(&v) = members.last() {
            if (v as usize) >= self.n() {
                return Err(crate::error::GraphError::VertexOutOfRange { v, n: self.n() });
            }
        }
        let id = ColorId(self.color_members.len() as u32);
        self.color_members.push(members);
        self.color_names.push(name);
        Ok(id)
    }

    /// Total number of (vertex, color) memberships — the size of the unary
    /// part of the encoding.
    pub fn color_size(&self) -> usize {
        self.color_members.iter().map(Vec::len).sum()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n() as Vertex)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// All edges as ordered pairs `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (Vertex, Vertex)> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
            .filter(|&(u, v)| u < v)
    }

    /// Move the graph behind an [`std::sync::Arc`] so many threads (and the
    /// indexes prepared over it) can co-own one immutable copy. The graph
    /// is CSR-encoded plain data — `Send + Sync` is asserted below, so a
    /// shared graph never needs a lock.
    pub fn into_shared(self) -> std::sync::Arc<ColoredGraph> {
        std::sync::Arc::new(self)
    }
}

// The serving runtime shares one graph across worker threads; keep the
// thread-safety of the plain-data representation a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ColoredGraph>();
};

// ---------------------------------------------------------------------
// Binary persistence (DESIGN.md §9). Lives here because the CSR fields
// are crate-private; every accessor above assumes the construction
// invariants, so the decoder re-validates all of them before handing the
// graph out — a hostile byte stream can yield a typed error, never a
// graph that panics later.
// ---------------------------------------------------------------------

impl ColoredGraph {
    /// Append the graph's binary encoding (CSR arrays + color lists) to
    /// `w`.
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        w.u32_slice(&self.offsets);
        w.u32_slice(&self.adjacency);
        w.seq_len(self.color_members.len());
        for (members, name) in self.color_members.iter().zip(&self.color_names) {
            w.u32_slice(members);
            match name {
                Some(s) => {
                    w.bool(true);
                    w.str(s);
                }
                None => w.bool(false),
            }
        }
    }

    /// Decode a graph, re-validating every structural invariant the rest
    /// of the crate relies on (monotone offsets, sorted/deduplicated and
    /// symmetric adjacency without self-loops, sorted in-range color
    /// lists).
    pub fn read_from(
        r: &mut nd_persist::Reader<'_>,
    ) -> Result<ColoredGraph, nd_persist::PersistError> {
        use nd_persist::malformed;
        let offsets = r.u32_slice("graph offsets")?;
        let adjacency = r.u32_slice("graph adjacency")?;
        if offsets.first() != Some(&0) {
            return Err(malformed("graph offsets must start with 0"));
        }
        let n = offsets.len() - 1;
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(malformed("graph offsets are not monotone"));
        }
        if offsets[n] as usize != adjacency.len() {
            return Err(malformed("graph offsets do not cover the adjacency array"));
        }
        let mut g = ColoredGraph {
            offsets,
            adjacency,
            color_members: Vec::new(),
            color_names: Vec::new(),
        };
        for v in 0..n as Vertex {
            let ns = g.neighbors(v);
            // Strict sortedness makes the range check a last-element test
            // and turns the self-loop scan into one binary search.
            if ns.windows(2).any(|w| w[0] >= w[1]) {
                return Err(malformed(format!("adjacency list of {v} is not sorted")));
            }
            if ns.last().is_some_and(|&u| (u as usize) >= n) {
                return Err(malformed(format!("neighbor of {v} out of range [0,{n})")));
            }
            if ns.binary_search(&v).is_ok() {
                return Err(malformed(format!("self-loop on vertex {v}")));
            }
        }
        // Symmetry in O(n + m): walk every directed edge (v,u) in global
        // scan order and match it against a cursor into u's list. Out-
        // lists are strictly sorted and v ascends, so the in-edges of `u`
        // arrive exactly in list order iff every in-list equals the
        // corresponding out-list — i.e. iff the graph is symmetric. The
        // trailing degree check catches lists with unmatched tails.
        {
            let mut fill: Vec<u32> = g.offsets[..n].to_vec();
            for v in 0..n as Vertex {
                for &u in g.neighbors(v) {
                    let p = fill[u as usize] as usize;
                    if p >= g.offsets[u as usize + 1] as usize || g.adjacency[p] != v {
                        return Err(malformed(format!("edge ({v},{u}) is not symmetric")));
                    }
                    fill[u as usize] += 1;
                }
            }
            if (0..n).any(|u| fill[u] != g.offsets[u + 1]) {
                return Err(malformed("adjacency is not symmetric".to_string()));
            }
        }
        let colors = r.seq_len(9, "graph color count")?;
        for _ in 0..colors {
            let members = r.u32_slice_sorted(n as u32, "color members")?;
            let name = if r.bool("color name flag")? {
                Some(r.str("color name")?)
            } else {
                None
            };
            g.color_members.push(members);
            g.color_names.push(name);
        }
        Ok(g)
    }
}

impl fmt::Debug for ColoredGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ColoredGraph")
            .field("n", &self.n())
            .field("m", &self.m())
            .field("colors", &self.num_colors())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle_plus_isolated() -> ColoredGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.build()
    }

    #[test]
    fn basic_accessors() {
        let g = triangle_plus_isolated();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.size(), 7);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[Vertex]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(2, 2));
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_isolated();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn binary_codec_roundtrip() {
        let mut g = triangle_plus_isolated();
        g.add_color(vec![0, 2], Some("Blue".into()));
        g.add_color(vec![1], None);
        let mut w = nd_persist::Writer::new();
        g.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = nd_persist::Reader::new(&bytes);
        let g2 = ColoredGraph::read_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(g2.n(), g.n());
        assert_eq!(g2.m(), g.m());
        for v in g.vertices() {
            assert_eq!(g2.neighbors(v), g.neighbors(v));
        }
        assert_eq!(g2.color_members(ColorId(0)), &[0, 2]);
        assert_eq!(g2.color_name(ColorId(0)), Some("Blue"));
        assert_eq!(g2.color_name(ColorId(1)), None);
    }

    #[test]
    fn binary_codec_rejects_broken_invariants() {
        use nd_persist::{PersistError, Reader, Writer};
        let decode = |f: &dyn Fn(&mut Writer)| {
            let mut w = Writer::new();
            f(&mut w);
            let bytes = w.into_bytes();
            ColoredGraph::read_from(&mut Reader::new(&bytes))
        };
        // Offsets not starting at zero.
        let e = decode(&|w| {
            w.u32_slice(&[1, 1]);
            w.u32_slice(&[]);
            w.seq_len(0);
        });
        assert!(matches!(e, Err(PersistError::Malformed { .. })));
        // Non-monotone offsets.
        let e = decode(&|w| {
            w.u32_slice(&[0, 2, 1]);
            w.u32_slice(&[1, 0]);
            w.seq_len(0);
        });
        assert!(matches!(e, Err(PersistError::Malformed { .. })));
        // Asymmetric adjacency: 0 -> 1 without 1 -> 0.
        let e = decode(&|w| {
            w.u32_slice(&[0, 1, 1]);
            w.u32_slice(&[1]);
            w.seq_len(0);
        });
        assert!(matches!(e, Err(PersistError::Malformed { .. })));
        // Self loop.
        let e = decode(&|w| {
            w.u32_slice(&[0, 1]);
            w.u32_slice(&[0]);
            w.seq_len(0);
        });
        assert!(matches!(e, Err(PersistError::Malformed { .. })));
        // Color member out of range.
        let e = decode(&|w| {
            w.u32_slice(&[0, 0]);
            w.u32_slice(&[]);
            w.seq_len(1);
            w.u32_slice(&[7]);
            w.bool(false);
        });
        assert!(matches!(e, Err(PersistError::Malformed { .. })));
        // Truncated mid-stream.
        let e = decode(&|w| {
            w.u32_slice(&[0, 0]);
        });
        assert!(matches!(e, Err(PersistError::Truncated { .. })));
    }

    #[test]
    fn colors_roundtrip() {
        let mut g = triangle_plus_isolated();
        let blue = g.add_color(vec![2, 0, 2], Some("Blue".into()));
        assert_eq!(g.color_members(blue), &[0, 2]);
        assert!(g.has_color(0, blue));
        assert!(!g.has_color(1, blue));
        assert_eq!(g.color_by_name("Blue"), Some(blue));
        assert_eq!(g.color_name(blue), Some("Blue"));
        assert_eq!(g.color_size(), 2);
    }
}
