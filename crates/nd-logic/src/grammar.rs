//! A structured random-query grammar for conformance testing.
//!
//! The differential harness (`nd-conform`) needs a *seeded, deterministic*
//! stream of queries that (a) covers the distance-type fragment the indexed
//! engine compiles — unions of conjunctions of unary formulas and binary
//! constraints `dist ≤ d` / `dist > d` / `E` / `¬E` / `=` / `≠` — and
//! (b) occasionally steps outside the fragment so the naive fallback path
//! is exercised too. Queries are generated as ASTs (not source text), so
//! the grammar cannot drift from the parser; the `Display` form of a
//! generated query is still valid surface syntax for reports.
//!
//! Determinism matters more than statistical quality here: the same
//! `(seed, opts)` pair must regenerate the same query on any platform, so
//! the generator uses a self-contained splitmix64 stream instead of an RNG
//! dependency.

use crate::ast::{ColorRef, Formula, Query, VarId};

/// Shape knobs for [`random_query`]. The defaults match what the indexed
/// engine handles well at conformance-test graph sizes (tens of vertices).
#[derive(Clone, Debug)]
pub struct GrammarOpts {
    /// Maximum arity (inclusive). Arity is drawn from `0..=max_arity`,
    /// biased away from 0.
    pub max_arity: usize,
    /// Maximum number of union branches (inclusive, ≥ 1).
    pub max_union: usize,
    /// Maximum distance-atom radius (inclusive, ≥ 1).
    pub max_radius: u32,
    /// Color names the graph is known to have. Empty disables color atoms.
    pub colors: Vec<String>,
    /// With probability ~1/8, emit a conjunct outside the distance-type
    /// fragment (a two-variable common-neighbor pattern), forcing the
    /// naive-fallback rung.
    pub allow_non_fragment: bool,
}

impl Default for GrammarOpts {
    fn default() -> Self {
        GrammarOpts {
            max_arity: 3,
            max_union: 2,
            max_radius: 4,
            colors: vec!["Blue".into(), "Red".into()],
            allow_non_fragment: false,
        }
    }
}

/// Deterministic splitmix64 stream.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound ≥ 1`).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Generate one deterministic random query from `seed`.
///
/// The result's free variables are exactly `v0..v{k-1}` in positional
/// order, so answer tuples line up with the lexicographic contract of
/// Theorem 2.3 without any renaming.
pub fn random_query(seed: u64, opts: &GrammarOpts) -> Query {
    let mut s = Stream(seed ^ GRAMMAR_STREAM_SALT);
    // Arity: bias toward 2 (the paper's running examples); allow 0..=max.
    let k = match s.below(8) {
        0 => 0,
        1 => 1.min(opts.max_arity),
        2..=5 => 2.min(opts.max_arity),
        _ => opts.max_arity,
    };
    let free: Vec<VarId> = (0..k as u32).map(VarId).collect();

    let branches = 1 + s.below(opts.max_union.max(1) as u64) as usize;
    let parts: Vec<Formula> = (0..branches)
        .map(|_| random_branch(&mut s, k, opts))
        .collect();
    Query::new(Formula::or(parts), free)
}

/// One conjunctive branch: per-position unary conjuncts, pairwise binary
/// constraints, optionally a sentence, optionally a non-fragment conjunct.
fn random_branch(s: &mut Stream, k: usize, opts: &GrammarOpts) -> Formula {
    let mut conj: Vec<Formula> = Vec::new();

    // Unary conjuncts: color atoms, negated colors, guarded local exists.
    for j in 0..k {
        let v = VarId(j as u32);
        if s.chance(5, 8) {
            conj.push(random_unary(s, v, opts));
        }
    }

    // Binary constraints over position pairs (i < j).
    for j in 1..k {
        for i in 0..j {
            if !s.chance(5, 8) {
                continue;
            }
            let (x, y) = (VarId(i as u32), VarId(j as u32));
            let d = 1 + s.below(opts.max_radius.max(1) as u64) as u32;
            conj.push(match s.below(6) {
                0 => Formula::DistLe(x, y, d),
                1 => Formula::dist_gt(x, y, d),
                2 => Formula::Edge(x, y),
                3 => Formula::Not(Box::new(Formula::Edge(x, y))),
                4 => Formula::Eq(x, y),
                _ => Formula::Not(Box::new(Formula::Eq(x, y))),
            });
        }
    }

    // Occasionally a sentence conjunct (arity-0 subformula, the ξ analogue).
    if s.chance(1, 4) {
        let u = VarId(k as u32 + 7);
        let body = random_unary(s, u, opts);
        conj.push(Formula::Exists(u, Box::new(body)));
    }

    // Occasionally a deliberately non-fragment conjunct: a common-neighbor
    // pattern mentioning two answer variables inside one quantifier.
    if opts.allow_non_fragment && k >= 2 && s.chance(1, 8) {
        let u = VarId(k as u32 + 9);
        let (x, y) = (VarId(0), VarId(1));
        conj.push(Formula::Exists(
            u,
            Box::new(Formula::and([Formula::Edge(x, u), Formula::Edge(u, y)])),
        ));
    }

    if conj.is_empty() {
        // An unconstrained branch (full product / `true` sentence) is a
        // legitimate — and historically bug-prone — edge case; keep it.
        Formula::True
    } else {
        Formula::and(conj)
    }
}

/// A unary formula with free variable `v`.
fn random_unary(s: &mut Stream, v: VarId, opts: &GrammarOpts) -> Formula {
    if opts.colors.is_empty() {
        // Colorless graphs: fall back to degree-flavored local facts.
        let u = VarId(v.0 + 100);
        return Formula::Exists(u, Box::new(Formula::Edge(v, u)));
    }
    let color = |s: &mut Stream| {
        let name = &opts.colors[s.below(opts.colors.len() as u64) as usize];
        ColorRef::Named(name.clone())
    };
    match s.below(8) {
        0..=3 => Formula::Color(color(s), v),
        4 | 5 => Formula::Not(Box::new(Formula::Color(color(s), v))),
        6 => {
            // Guarded local witness: ∃u (E(v,u) ∧ C(u)).
            let u = VarId(v.0 + 100);
            Formula::Exists(
                u,
                Box::new(Formula::and([
                    Formula::Edge(v, u),
                    Formula::Color(color(s), u),
                ])),
            )
        }
        _ => {
            // Distance-guarded witness: ∃u (dist(v,u) ≤ d ∧ C(u)).
            let u = VarId(v.0 + 100);
            let d = 1 + s.below(2) as u32;
            Formula::Exists(
                u,
                Box::new(Formula::and([
                    Formula::DistLe(v, u, d),
                    Formula::Color(color(s), u),
                ])),
            )
        }
    }
}

/// Is the formula *monotone under vertex deletion*? Deleting a vertex can
/// only shrink neighborhoods and lengthen distances, so a formula built
/// without negation from `E`, colors, `=`, `dist ≤ d`, `∧`, `∨`, `∃` can
/// only lose solutions — the metamorphic deletion invariant of the
/// conformance harness applies exactly to these.
pub fn is_deletion_monotone(f: &Formula) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Edge(..) | Formula::Color(..) | Formula::Eq(..) | Formula::DistLe(..) => true,
        Formula::Rel(..) => false,
        Formula::Not(_) | Formula::Forall(..) => false,
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(is_deletion_monotone),
        Formula::Exists(_, g) => is_deletion_monotone(g),
    }
}

/// Domain-separates the query stream from other consumers of the same
/// seed (the graph generator uses the raw seed).
const GRAMMAR_STREAM_SALT: u64 = 0xc0f0_e11a_5eed_0001;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::materialize;
    use nd_graph::generators;

    #[test]
    fn deterministic_and_well_formed() {
        let opts = GrammarOpts::default();
        for seed in 0..200 {
            let q1 = random_query(seed, &opts);
            let q2 = random_query(seed, &opts);
            assert_eq!(q1, q2, "seed {seed} not deterministic");
            assert!(q1.arity() <= opts.max_arity);
            // Free variables are exactly v0..v{k-1}.
            for (i, v) in q1.free.iter().enumerate() {
                assert_eq!(v.0 as usize, i);
            }
        }
    }

    #[test]
    fn generated_queries_evaluate() {
        let mut g = generators::grid(4, 4);
        g.add_color((0..16).step_by(3).collect(), Some("Blue".into()));
        g.add_color((0..16).step_by(5).collect(), Some("Red".into()));
        let opts = GrammarOpts::default();
        let mut nonempty = 0;
        for seed in 0..60 {
            let q = random_query(seed, &opts);
            let sols = materialize(&g, &q);
            // Sorted, duplicate-free — the oracle contract.
            assert!(sols.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
            if !sols.is_empty() {
                nonempty += 1;
            }
        }
        assert!(nonempty > 10, "grammar degenerated to empty queries");
    }

    #[test]
    fn monotonicity_classifier() {
        let yes = Formula::and([
            Formula::Edge(VarId(0), VarId(1)),
            Formula::DistLe(VarId(0), VarId(1), 2),
        ]);
        assert!(is_deletion_monotone(&yes));
        let no = Formula::dist_gt(VarId(0), VarId(1), 2);
        assert!(!is_deletion_monotone(&no));
    }
}
