//! The FO⁺ formula AST.
//!
//! FO⁺ (Section 5 of the paper) is first-order logic over the colored-graph
//! schema `σ_c = {E, C_1, …, C_c}` extended with *distance atoms*
//! `dist(x,y) ≤ d`. Distance atoms do not add expressive power but give the
//! finer `q`-rank measure that the Rank-Preserving Normal Form controls.
//!
//! Relational atoms `R(x̄)` are also representable so that queries over
//! relational databases can be written directly and rewritten to colored
//! graphs via Lemma 2.2 (see [`crate::relational`]).

use std::collections::BTreeSet;
use std::fmt;

/// A query variable. Variables are small integers managed per query.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Reference to a color: by name (parsed queries, resolved against a graph)
/// or directly by id (programmatically constructed formulas, e.g. the
/// recolorings of the Removal Lemma).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ColorRef {
    Named(String),
    Id(u32),
}

impl fmt::Display for ColorRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColorRef::Named(n) => write!(f, "{n}"),
            ColorRef::Id(i) => write!(f, "C#{i}"),
        }
    }
}

/// An FO⁺ formula.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Formula {
    True,
    False,
    /// Edge atom `E(x, y)`.
    Edge(VarId, VarId),
    /// Color atom `C(x)`.
    Color(ColorRef, VarId),
    /// Equality `x = y`.
    Eq(VarId, VarId),
    /// Distance atom `dist(x, y) ≤ d` (the FO⁺ extension).
    DistLe(VarId, VarId, u32),
    /// Relational atom `R(x_1, …, x_j)` — only meaningful over relational
    /// databases; rewritten away by Lemma 2.2 before graph evaluation.
    Rel(String, Vec<VarId>),
    Not(Box<Formula>),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    Exists(VarId, Box<Formula>),
    Forall(VarId, Box<Formula>),
}

impl Formula {
    /// `dist(x, y) > d` as the standard abbreviation `¬(dist(x,y) ≤ d)`.
    pub fn dist_gt(x: VarId, y: VarId, d: u32) -> Formula {
        Formula::Not(Box::new(Formula::DistLe(x, y, d)))
    }

    /// Conjunction, flattening nested `And`s and dropping `True`.
    pub fn and(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(xs) => out.extend(xs),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().unwrap(),
            _ => Formula::And(out),
        }
    }

    /// Disjunction, flattening nested `Or`s and dropping `False`.
    pub fn or(parts: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(xs) => out.extend(xs),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().unwrap(),
            _ => Formula::Or(out),
        }
    }

    /// Free variables, in ascending `VarId` order.
    pub fn free_vars(&self) -> Vec<VarId> {
        let mut free = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut free);
        free.into_iter().collect()
    }

    fn collect_free(&self, bound: &mut BTreeSet<VarId>, free: &mut BTreeSet<VarId>) {
        let touch = |v: VarId, bound: &BTreeSet<VarId>, free: &mut BTreeSet<VarId>| {
            if !bound.contains(&v) {
                free.insert(v);
            }
        };
        match self {
            Formula::True | Formula::False => {}
            Formula::Edge(x, y) | Formula::Eq(x, y) | Formula::DistLe(x, y, _) => {
                touch(*x, bound, free);
                touch(*y, bound, free);
            }
            Formula::Color(_, x) => touch(*x, bound, free),
            Formula::Rel(_, xs) => {
                for &x in xs {
                    touch(x, bound, free);
                }
            }
            Formula::Not(f) => f.collect_free(bound, free),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, free);
                }
            }
            Formula::Exists(v, f) | Formula::Forall(v, f) => {
                let fresh = bound.insert(*v);
                f.collect_free(bound, free);
                if fresh {
                    bound.remove(v);
                }
            }
        }
    }

    /// Apply a variable renaming to every occurrence (free and bound).
    pub fn rename(&self, f: &impl Fn(VarId) -> VarId) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Edge(x, y) => Formula::Edge(f(*x), f(*y)),
            Formula::Color(c, x) => Formula::Color(c.clone(), f(*x)),
            Formula::Eq(x, y) => Formula::Eq(f(*x), f(*y)),
            Formula::DistLe(x, y, d) => Formula::DistLe(f(*x), f(*y), *d),
            Formula::Rel(r, xs) => Formula::Rel(r.clone(), xs.iter().map(|&x| f(x)).collect()),
            Formula::Not(g) => Formula::Not(Box::new(g.rename(f))),
            Formula::And(gs) => Formula::And(gs.iter().map(|g| g.rename(f)).collect()),
            Formula::Or(gs) => Formula::Or(gs.iter().map(|g| g.rename(f)).collect()),
            Formula::Exists(v, g) => Formula::Exists(f(*v), Box::new(g.rename(f))),
            Formula::Forall(v, g) => Formula::Forall(f(*v), Box::new(g.rename(f))),
        }
    }

    /// Quantifier rank.
    pub fn quantifier_rank(&self) -> u32 {
        match self {
            Formula::True
            | Formula::False
            | Formula::Edge(..)
            | Formula::Color(..)
            | Formula::Eq(..)
            | Formula::DistLe(..)
            | Formula::Rel(..) => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::quantifier_rank).max().unwrap_or(0)
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.quantifier_rank(),
        }
    }

    /// Largest constant appearing in a distance atom (0 if none).
    pub fn max_dist_atom(&self) -> u32 {
        match self {
            Formula::DistLe(_, _, d) => *d,
            Formula::Not(f) => f.max_dist_atom(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::max_dist_atom).max().unwrap_or(0)
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.max_dist_atom(),
            _ => 0,
        }
    }

    /// Number of symbols `|q|` (a simple node count).
    pub fn size(&self) -> usize {
        match self {
            Formula::True
            | Formula::False
            | Formula::Edge(..)
            | Formula::Color(..)
            | Formula::Eq(..)
            | Formula::DistLe(..) => 1,
            Formula::Rel(_, xs) => 1 + xs.len(),
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => 1 + f.size(),
        }
    }

    /// Does the formula have `q`-rank at most `ℓ` (Section 5.1.2)? A formula
    /// has `q`-rank `≤ ℓ` if its quantifier rank is `≤ ℓ` and each distance
    /// atom under `i ≤ ℓ` quantifiers has constant `≤ (4q)^{q+ℓ-i}`.
    pub fn has_q_rank_at_most(&self, q: u32, ell: u32) -> bool {
        fn walk(f: &Formula, q: u32, ell: u32, depth: u32) -> bool {
            match f {
                Formula::DistLe(_, _, d) => depth <= ell && (*d as u64) <= f_q(q, ell - depth),
                Formula::Exists(_, g) | Formula::Forall(_, g) => {
                    depth < ell && walk(g, q, ell, depth + 1)
                }
                Formula::Not(g) => walk(g, q, ell, depth),
                Formula::And(gs) | Formula::Or(gs) => gs.iter().all(|g| walk(g, q, ell, depth)),
                _ => true,
            }
        }
        self.quantifier_rank() <= ell && walk(self, q, ell, 0)
    }

    /// Negation normal form: `Not` pushed onto atoms, `Forall`/`Exists`,
    /// `And`/`Or` dualized.
    pub fn nnf(&self) -> Formula {
        fn pos(f: &Formula) -> Formula {
            match f {
                Formula::Not(g) => neg(g),
                Formula::And(gs) => Formula::And(gs.iter().map(pos).collect()),
                Formula::Or(gs) => Formula::Or(gs.iter().map(pos).collect()),
                Formula::Exists(v, g) => Formula::Exists(*v, Box::new(pos(g))),
                Formula::Forall(v, g) => Formula::Forall(*v, Box::new(pos(g))),
                atom => atom.clone(),
            }
        }
        fn neg(f: &Formula) -> Formula {
            match f {
                Formula::True => Formula::False,
                Formula::False => Formula::True,
                Formula::Not(g) => pos(g),
                Formula::And(gs) => Formula::Or(gs.iter().map(neg).collect()),
                Formula::Or(gs) => Formula::And(gs.iter().map(neg).collect()),
                Formula::Exists(v, g) => Formula::Forall(*v, Box::new(neg(g))),
                Formula::Forall(v, g) => Formula::Exists(*v, Box::new(neg(g))),
                atom => Formula::Not(Box::new(atom.clone())),
            }
        }
        pos(self)
    }
}

/// The paper's `f_q(ℓ) = (4q)^{q+ℓ}` radius schedule (saturating).
pub fn f_q(q: u32, ell: u32) -> u64 {
    (4u64.saturating_mul(q as u64)).saturating_pow(q.saturating_add(ell))
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Edge(x, y) => write!(f, "E({x},{y})"),
            Formula::Color(c, x) => write!(f, "{c}({x})"),
            Formula::Eq(x, y) => write!(f, "{x}={y}"),
            Formula::DistLe(x, y, d) => write!(f, "dist({x},{y})<={d}"),
            Formula::Rel(r, xs) => {
                write!(f, "{r}(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Formula::Not(g) => write!(f, "!({g})"),
            Formula::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(v, g) => write!(f, "exists {v}. ({g})"),
            Formula::Forall(v, g) => write!(f, "forall {v}. ({g})"),
        }
    }
}

/// A query: a formula together with the (ordered!) list of its free
/// variables. The order defines the tuple positions and hence the
/// lexicographic order on answers (Theorem 2.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    pub formula: Formula,
    /// Free variables in answer-tuple order.
    pub free: Vec<VarId>,
    /// Human-readable names, indexed by `VarId` (parser bookkeeping).
    pub var_names: Vec<String>,
}

impl Query {
    /// Build a query. Every free variable of the formula must appear in
    /// `free`; `free` may declare *additional* answer variables, which are
    /// then unconstrained (this occurs naturally in union branches and in
    /// Removal-Lemma rewritings where a variable's atoms collapse to
    /// constants).
    pub fn new(formula: Formula, free: Vec<VarId>) -> Self {
        let mut sorted = free.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), free.len(), "duplicate answer variable");
        assert!(
            formula
                .free_vars()
                .iter()
                .all(|v| sorted.binary_search(v).is_ok()),
            "free-variable list must cover the formula's free variables"
        );
        let max = free.iter().map(|v| v.0).max().map_or(0, |m| m + 1);
        Query {
            formula,
            free,
            var_names: (0..max).map(|i| format!("v{i}")).collect(),
        }
    }

    /// Arity `k` of the query.
    pub fn arity(&self) -> usize {
        self.free.len()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q(")?;
        for (i, v) in self.free.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            let name = self
                .var_names
                .get(v.0 as usize)
                .cloned()
                .unwrap_or_else(|| v.to_string());
            write!(f, "{name}")?;
        }
        write!(f, ") := {}", self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }
    fn z() -> VarId {
        VarId(2)
    }

    #[test]
    fn free_vars_respect_binding() {
        let f = Formula::Exists(
            y(),
            Box::new(Formula::And(vec![
                Formula::Edge(x(), y()),
                Formula::Edge(y(), z()),
            ])),
        );
        assert_eq!(f.free_vars(), vec![x(), z()]);
    }

    #[test]
    fn shadowing() {
        // exists y. (E(x,y) && exists y. E(y,y)) — inner y shadows.
        let inner = Formula::Exists(y(), Box::new(Formula::Edge(y(), y())));
        let f = Formula::Exists(
            y(),
            Box::new(Formula::And(vec![Formula::Edge(x(), y()), inner])),
        );
        assert_eq!(f.free_vars(), vec![x()]);
        assert_eq!(f.quantifier_rank(), 2);
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(
            Formula::and([Formula::True, Formula::Edge(x(), y())]),
            Formula::Edge(x(), y())
        );
        assert_eq!(
            Formula::and([Formula::False, Formula::Edge(x(), y())]),
            Formula::False
        );
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(
            Formula::or([Formula::Or(vec![Formula::True])]),
            Formula::True
        );
    }

    #[test]
    fn nnf_pushes_negation() {
        let f = Formula::Not(Box::new(Formula::And(vec![
            Formula::Edge(x(), y()),
            Formula::Exists(z(), Box::new(Formula::Color(ColorRef::Id(0), z()))),
        ])));
        let n = f.nnf();
        assert_eq!(
            n,
            Formula::Or(vec![
                Formula::Not(Box::new(Formula::Edge(x(), y()))),
                Formula::Forall(
                    z(),
                    Box::new(Formula::Not(Box::new(Formula::Color(ColorRef::Id(0), z()))))
                ),
            ])
        );
    }

    #[test]
    fn q_rank_distance_schedule() {
        // q = 2, ℓ = 1: an atom under 0 quantifiers may use d ≤ (4·2)^3 = 512;
        // under 1 quantifier only d ≤ 64.
        let shallow = Formula::DistLe(x(), y(), 512);
        assert!(shallow.has_q_rank_at_most(2, 1));
        let deep = Formula::Exists(z(), Box::new(Formula::DistLe(x(), z(), 512)));
        assert!(!deep.has_q_rank_at_most(2, 1));
        let deep_ok = Formula::Exists(z(), Box::new(Formula::DistLe(x(), z(), 64)));
        assert!(deep_ok.has_q_rank_at_most(2, 1));
        assert_eq!(f_q(2, 1), 512);
    }

    #[test]
    fn display_roundtrips_visually() {
        let f = Formula::Exists(
            y(),
            Box::new(Formula::and([
                Formula::Edge(x(), y()),
                Formula::dist_gt(x(), y(), 2),
            ])),
        );
        assert_eq!(
            format!("{f}"),
            "exists v1. ((E(v0,v1) && !(dist(v0,v1)<=2)))"
        );
    }

    #[test]
    fn rename_is_total() {
        let f = Formula::Exists(y(), Box::new(Formula::Edge(x(), y())));
        let g = f.rename(&|v| VarId(v.0 + 10));
        assert_eq!(g.free_vars(), vec![VarId(10)]);
    }

    #[test]
    #[should_panic(expected = "free-variable list")]
    fn query_checks_free_vars() {
        Query::new(Formula::Edge(x(), y()), vec![x()]);
    }

    #[test]
    fn query_allows_extra_answer_vars() {
        let q = Query::new(Formula::Edge(x(), y()), vec![x(), y(), z()]);
        assert_eq!(q.arity(), 3);
    }
}
