//! The query rewriting of **Lemma 2.2**: from a query `φ` over a relational
//! schema to a query `ψ` over the colored graph `A'(D)` with
//! `φ(D) = ψ(A'(D))`.
//!
//! Each relational atom `R(x_1, …, x_j)` becomes
//!
//! ```text
//! ∃t ( P_R(t) ∧ ⋀_{i ≤ j} ∃z ( C_i(z) ∧ E(x_i, z) ∧ E(z, t) ) )
//! ```
//!
//! and — since the domain of `A'(D)` also contains tuple and incidence
//! nodes — every quantifier is relativized to the element sort `@elem` and
//! every free variable is guarded by it, so that `ψ`'s answers range exactly
//! over `D`'s domain.

use crate::ast::{ColorRef, Formula, Query, VarId};
use nd_graph::relational::AdjacencyMapping;

struct Rewriter<'m> {
    mapping: &'m AdjacencyMapping,
    next_var: u32,
}

impl Rewriter<'_> {
    fn fresh(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    fn elem(&self, x: VarId) -> Formula {
        Formula::Color(ColorRef::Named("@elem".to_string()), x)
    }

    fn rewrite(&mut self, f: &Formula) -> Formula {
        match f {
            // A named unary atom over a relational schema is a unary
            // relation, not a graph color.
            Formula::Color(ColorRef::Named(name), x)
                if self.mapping.relation_color(name).is_some() =>
            {
                self.rewrite(&Formula::Rel(name.clone(), vec![*x]))
            }
            Formula::Rel(name, xs) => {
                assert!(
                    self.mapping.relation_color(name).is_some(),
                    "relation {name} not in the adjacency mapping"
                );
                let t = self.fresh();
                let mut parts = vec![Formula::Color(ColorRef::Named(format!("@rel:{name}")), t)];
                for (i, &x) in xs.iter().enumerate() {
                    let z = self.fresh();
                    parts.push(Formula::Exists(
                        z,
                        Box::new(Formula::And(vec![
                            Formula::Color(ColorRef::Named(format!("@pos{}", i + 1)), z),
                            Formula::Edge(x, z),
                            Formula::Edge(z, t),
                        ])),
                    ));
                }
                Formula::Exists(t, Box::new(Formula::And(parts)))
            }
            Formula::Exists(v, g) => {
                let body = self.rewrite(g);
                Formula::Exists(*v, Box::new(Formula::And(vec![self.elem(*v), body])))
            }
            Formula::Forall(v, g) => {
                let body = self.rewrite(g);
                Formula::Forall(
                    *v,
                    Box::new(Formula::Or(vec![
                        Formula::Not(Box::new(self.elem(*v))),
                        body,
                    ])),
                )
            }
            Formula::Not(g) => Formula::Not(Box::new(self.rewrite(g))),
            Formula::And(gs) => Formula::And(gs.iter().map(|g| self.rewrite(g)).collect()),
            Formula::Or(gs) => Formula::Or(gs.iter().map(|g| self.rewrite(g)).collect()),
            atom => atom.clone(),
        }
    }
}

/// Rewrite a relational query into a colored-graph query over `A'(D)`
/// (Lemma 2.2). The answer tuples of the rewritten query over `A'(D)` are
/// exactly the answer tuples of `φ` over `D` (element node ids coincide
/// with element ids).
pub fn rewrite_to_graph(q: &Query, mapping: &AdjacencyMapping) -> Query {
    let max_var = max_var(&q.formula).map_or(0, |v| v.0 + 1);
    let mut rw = Rewriter {
        mapping,
        next_var: max_var,
    };
    let mut body = rw.rewrite(&q.formula);
    // Guard free variables to the element sort.
    let guards: Vec<Formula> = q.free.iter().map(|&x| rw.elem(x)).collect();
    body = Formula::and(guards.into_iter().chain([body]));
    let mut out = Query::new(body, q.free.clone());
    out.var_names = q.var_names.clone();
    out
}

fn max_var(f: &Formula) -> Option<VarId> {
    match f {
        Formula::True | Formula::False => None,
        Formula::Edge(x, y) | Formula::Eq(x, y) | Formula::DistLe(x, y, _) => Some(*x.max(y)),
        Formula::Color(_, x) => Some(*x),
        Formula::Rel(_, xs) => xs.iter().max().copied(),
        Formula::Not(g) => max_var(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().filter_map(max_var).max(),
        Formula::Exists(v, g) | Formula::Forall(v, g) => Some(max_var(g).map_or(*v, |m| m.max(*v))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{materialize, materialize_db};
    use crate::parser::parse_query;
    use nd_graph::relational::{adjacency_graph, RelationalDb};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check_equivalence(db: &RelationalDb, src: &str) {
        let q = parse_query(src).unwrap();
        let (g, mapping) = adjacency_graph(db);
        let psi = rewrite_to_graph(&q, &mapping);
        let want = materialize_db(db, &q);
        let got = materialize(&g, &psi);
        assert_eq!(got, want, "query {src}");
    }

    fn chain_db() -> RelationalDb {
        let mut db = RelationalDb::new(5);
        db.add_relation("R", 2, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]]);
        db.add_relation("S", 1, vec![vec![2], vec![4]]);
        db
    }

    #[test]
    fn atom_rewriting() {
        check_equivalence(&chain_db(), "R(x, y)");
    }

    #[test]
    fn join_query() {
        check_equivalence(&chain_db(), "exists z. (R(x, z) && R(z, y))");
    }

    #[test]
    fn negation_and_universals() {
        check_equivalence(&chain_db(), "S(x) && !R(x, y)");
        check_equivalence(&chain_db(), "forall z. (!R(x, z) || S(z)) && x = y");
    }

    #[test]
    fn ternary_relation() {
        let mut db = RelationalDb::new(4);
        db.add_relation("T", 3, vec![vec![0, 1, 2], vec![1, 2, 3], vec![0, 0, 0]]);
        check_equivalence(&db, "T(x, y, z)");
        check_equivalence(&db, "exists u. T(x, u, y)");
        // Positional sensitivity: T(x,y,·) vs T(y,x,·).
        check_equivalence(&db, "exists u. (T(x, y, u) && !T(y, x, u))");
    }

    #[test]
    fn random_databases() {
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..5 {
            let n = 6;
            let mut db = RelationalDb::new(n);
            let mut tuples = Vec::new();
            for _ in 0..10 {
                tuples.push(vec![
                    rng.random_range(0..n as u32),
                    rng.random_range(0..n as u32),
                ]);
            }
            db.add_relation("R", 2, tuples);
            let queries = [
                "R(x, y) && R(y, x)",
                "exists z. (R(x, z) && R(z, y) && x != y)",
                "forall z. (!R(z, x) || R(z, y))",
            ];
            check_equivalence(&db, queries[round % queries.len()]);
        }
    }

    #[test]
    fn boolean_queries() {
        let db = chain_db();
        let q = parse_query("exists x. exists y. (R(x, y) && S(y))").unwrap();
        let (g, mapping) = adjacency_graph(&db);
        let psi = rewrite_to_graph(&q, &mapping);
        assert_eq!(materialize_db(&db, &q).len(), materialize(&g, &psi).len());
        assert_eq!(materialize(&g, &psi), vec![Vec::<u32>::new()]);
    }
}
