//! Binary (de)serialization of the FO⁺ AST for the persistent index
//! (DESIGN.md §9).
//!
//! The query is persisted as its AST, not its surface text, so that
//! programmatically constructed queries (conformance harness, Removal
//! Lemma rewritings) round-trip exactly. Decoding validates the [`Query`]
//! invariants (no duplicate answer variables; the free list covers the
//! formula's free variables) and returns a typed [`PersistError`] instead
//! of panicking on hostile bytes.

use crate::ast::{ColorRef, Formula, Query, VarId};
use nd_persist::{malformed, PersistError, Reader, Writer};

/// Maximum `Not`/quantifier/connective nesting accepted by the decoder —
/// a guard against stack exhaustion on crafted files. Far beyond any
/// realistic query (the parser itself tops out much earlier), but small
/// enough that the decoder's recursion fits a 2 MiB thread stack even in
/// unoptimized builds.
const MAX_DEPTH: u32 = 128;

/// Append `f`'s encoding to `w`.
pub fn write_formula(f: &Formula, w: &mut Writer) {
    match f {
        Formula::True => w.u8(0),
        Formula::False => w.u8(1),
        Formula::Edge(x, y) => {
            w.u8(2);
            w.u32(x.0);
            w.u32(y.0);
        }
        Formula::Color(ColorRef::Named(name), x) => {
            w.u8(3);
            w.str(name);
            w.u32(x.0);
        }
        Formula::Color(ColorRef::Id(i), x) => {
            w.u8(4);
            w.u32(*i);
            w.u32(x.0);
        }
        Formula::Eq(x, y) => {
            w.u8(5);
            w.u32(x.0);
            w.u32(y.0);
        }
        Formula::DistLe(x, y, d) => {
            w.u8(6);
            w.u32(x.0);
            w.u32(y.0);
            w.u32(*d);
        }
        Formula::Rel(name, xs) => {
            w.u8(7);
            w.str(name);
            w.seq_len(xs.len());
            for x in xs {
                w.u32(x.0);
            }
        }
        Formula::Not(g) => {
            w.u8(8);
            write_formula(g, w);
        }
        Formula::And(gs) => {
            w.u8(9);
            w.seq_len(gs.len());
            for g in gs {
                write_formula(g, w);
            }
        }
        Formula::Or(gs) => {
            w.u8(10);
            w.seq_len(gs.len());
            for g in gs {
                write_formula(g, w);
            }
        }
        Formula::Exists(v, g) => {
            w.u8(11);
            w.u32(v.0);
            write_formula(g, w);
        }
        Formula::Forall(v, g) => {
            w.u8(12);
            w.u32(v.0);
            write_formula(g, w);
        }
    }
}

/// Decode one formula from `r`.
pub fn read_formula(r: &mut Reader<'_>) -> Result<Formula, PersistError> {
    read_formula_at(r, 0)
}

fn read_formula_at(r: &mut Reader<'_>, depth: u32) -> Result<Formula, PersistError> {
    if depth > MAX_DEPTH {
        return Err(malformed("formula nesting exceeds the depth cap"));
    }
    let var = |r: &mut Reader<'_>| Ok::<_, PersistError>(VarId(r.u32("formula var")?));
    Ok(match r.u8("formula tag")? {
        0 => Formula::True,
        1 => Formula::False,
        2 => Formula::Edge(var(r)?, var(r)?),
        3 => {
            let name = r.str("color name")?;
            Formula::Color(ColorRef::Named(name), var(r)?)
        }
        4 => {
            let id = r.u32("color id")?;
            Formula::Color(ColorRef::Id(id), var(r)?)
        }
        5 => Formula::Eq(var(r)?, var(r)?),
        6 => {
            let (x, y) = (var(r)?, var(r)?);
            Formula::DistLe(x, y, r.u32("distance bound")?)
        }
        7 => {
            let name = r.str("relation name")?;
            let n = r.seq_len(4, "relation arity")?;
            let mut xs = Vec::with_capacity(n);
            for _ in 0..n {
                xs.push(var(r)?);
            }
            Formula::Rel(name, xs)
        }
        8 => Formula::Not(Box::new(read_formula_at(r, depth + 1)?)),
        9 => {
            let n = r.seq_len(1, "conjunction size")?;
            let mut gs = Vec::with_capacity(n);
            for _ in 0..n {
                gs.push(read_formula_at(r, depth + 1)?);
            }
            Formula::And(gs)
        }
        10 => {
            let n = r.seq_len(1, "disjunction size")?;
            let mut gs = Vec::with_capacity(n);
            for _ in 0..n {
                gs.push(read_formula_at(r, depth + 1)?);
            }
            Formula::Or(gs)
        }
        11 => {
            let v = var(r)?;
            Formula::Exists(v, Box::new(read_formula_at(r, depth + 1)?))
        }
        12 => {
            let v = var(r)?;
            Formula::Forall(v, Box::new(read_formula_at(r, depth + 1)?))
        }
        other => return Err(malformed(format!("unknown formula tag {other}"))),
    })
}

/// Append `q`'s encoding to `w`.
pub fn write_query(q: &Query, w: &mut Writer) {
    write_formula(&q.formula, w);
    w.seq_len(q.free.len());
    for v in &q.free {
        w.u32(v.0);
    }
    w.seq_len(q.var_names.len());
    for name in &q.var_names {
        w.str(name);
    }
}

/// Decode a [`Query`], re-validating its invariants (the panicking
/// [`Query::new`] checks, surfaced as typed errors).
pub fn read_query(r: &mut Reader<'_>) -> Result<Query, PersistError> {
    let formula = read_formula(r)?;
    let n_free = r.seq_len(4, "free-variable list")?;
    let mut free = Vec::with_capacity(n_free);
    for _ in 0..n_free {
        free.push(VarId(r.u32("free variable")?));
    }
    let n_names = r.seq_len(1, "variable-name list")?;
    let mut var_names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        var_names.push(r.str("variable name")?);
    }
    let mut sorted = free.clone();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.len() != free.len() {
        return Err(malformed("duplicate answer variable in persisted query"));
    }
    if !formula
        .free_vars()
        .iter()
        .all(|v| sorted.binary_search(v).is_ok())
    {
        return Err(malformed(
            "persisted free-variable list does not cover the formula",
        ));
    }
    Ok(Query {
        formula,
        free,
        var_names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    fn roundtrip(q: &Query) -> Query {
        let mut w = Writer::new();
        write_query(q, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = read_query(&mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn parsed_queries_roundtrip() {
        for src in [
            "dist(x,y) <= 2",
            "dist(x,y) > 2 && Blue(y)",
            "q(x,y,z) := dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)",
            "E(x,y) || (dist(x,y) > 3 && Blue(y))",
            "(exists u. (E(x,u) && Blue(u))) && dist(x,y) > 2",
            "forall u. (E(x,u) || Red(u))",
            "exists x. Blue(x)",
        ] {
            let q = parse_query(src).unwrap();
            assert_eq!(roundtrip(&q), q, "{src}");
        }
    }

    #[test]
    fn programmatic_queries_roundtrip() {
        let q = Query::new(
            Formula::and([
                Formula::Color(ColorRef::Id(1), VarId(0)),
                Formula::Rel("R".into(), vec![VarId(0), VarId(1)]),
            ]),
            vec![VarId(0), VarId(1)],
        );
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn corrupted_bytes_fail_typed() {
        let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
        let mut w = Writer::new();
        write_query(&q, &mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                read_query(&mut Reader::new(&bytes[..cut])).is_err(),
                "cut {cut}"
            );
        }
        // Unknown tag.
        let mut c = bytes.clone();
        c[0] = 0xfe;
        assert!(read_query(&mut Reader::new(&c)).is_err());
    }

    #[test]
    fn invalid_free_list_rejected() {
        // Encode E(x,y) with a free list that misses y.
        let mut w = Writer::new();
        write_formula(&Formula::Edge(VarId(0), VarId(1)), &mut w);
        w.seq_len(1);
        w.u32(0);
        w.seq_len(0);
        let bytes = w.into_bytes();
        assert!(matches!(
            read_query(&mut Reader::new(&bytes)),
            Err(PersistError::Malformed { .. })
        ));
        // Duplicate answer variable.
        let mut w = Writer::new();
        write_formula(&Formula::True, &mut w);
        w.seq_len(2);
        w.u32(3);
        w.u32(3);
        w.seq_len(0);
        let bytes = w.into_bytes();
        assert!(matches!(
            read_query(&mut Reader::new(&bytes)),
            Err(PersistError::Malformed { .. })
        ));
    }

    #[test]
    fn hostile_nesting_depth_is_capped() {
        let mut w = Writer::new();
        for _ in 0..100_000 {
            w.u8(8); // Not(
        }
        w.u8(0); // True
        let bytes = w.into_bytes();
        assert!(matches!(
            read_query(&mut Reader::new(&bytes)),
            Err(PersistError::Malformed { .. })
        ));
    }
}
