//! Semantics-preserving formula transformations: simplification and prenex
//! normal form.
//!
//! The fragment compiler and the Removal Lemma both produce formulas with
//! constant subformulas, duplicated conjuncts and vacuous quantifiers;
//! [`simplify`] normalizes them. [`prenex`] pulls all quantifiers to the
//! front (with capture-avoiding renaming), which is how quantifier rank
//! relates to the block structure the Rank-Preserving Normal Form reasons
//! about.

use crate::ast::{Formula, VarId};

/// Simplify: constant folding, double negation, `x = x`, vacuous
/// quantifiers, duplicate conjuncts/disjuncts. The result is logically
/// equivalent and never larger.
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::Eq(x, y) if x == y => Formula::True,
        Formula::Not(inner) => match simplify(inner) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(g) => *g,
            g => Formula::Not(Box::new(g)),
        },
        Formula::And(fs) => {
            let mut parts: Vec<Formula> = Vec::new();
            for g in fs {
                let g = simplify(g);
                match g {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => {
                        for h in inner {
                            if !parts.contains(&h) {
                                parts.push(h);
                            }
                        }
                    }
                    other => {
                        if !parts.contains(&other) {
                            parts.push(other);
                        }
                    }
                }
            }
            Formula::and(parts)
        }
        Formula::Or(fs) => {
            let mut parts: Vec<Formula> = Vec::new();
            for g in fs {
                let g = simplify(g);
                match g {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => {
                        for h in inner {
                            if !parts.contains(&h) {
                                parts.push(h);
                            }
                        }
                    }
                    other => {
                        if !parts.contains(&other) {
                            parts.push(other);
                        }
                    }
                }
            }
            Formula::or(parts)
        }
        Formula::Exists(v, body) => {
            let body = simplify(body);
            if !body.free_vars().contains(v) {
                // ∃v ψ ≡ ψ when v is not free in ψ — over nonempty
                // domains, which is the paper's setting (and ours: queries
                // over empty graphs are handled before evaluation).
                body
            } else {
                Formula::Exists(*v, Box::new(body))
            }
        }
        Formula::Forall(v, body) => {
            let body = simplify(body);
            if !body.free_vars().contains(v) {
                body
            } else {
                Formula::Forall(*v, Box::new(body))
            }
        }
        atom => atom.clone(),
    }
}

/// A quantifier in a prenex prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quant {
    Exists,
    Forall,
}

/// Prenex normal form: `(prefix, matrix)` with a quantifier-free matrix,
/// logically equivalent to the input. Bound variables are renamed apart
/// (fresh ids above every id in the input), so no capture can occur.
pub fn prenex(f: &Formula) -> (Vec<(Quant, VarId)>, Formula) {
    let mut next = max_var_id(f).map_or(0, |v| v.0 + 1);
    let mut prefix = Vec::new();
    let matrix = pull(f, false, &mut prefix, &mut next);
    (prefix, matrix)
}

/// Reassemble a prenex pair into a formula.
pub fn unprenex(prefix: &[(Quant, VarId)], matrix: &Formula) -> Formula {
    let mut out = matrix.clone();
    for &(q, v) in prefix.iter().rev() {
        out = match q {
            Quant::Exists => Formula::Exists(v, Box::new(out)),
            Quant::Forall => Formula::Forall(v, Box::new(out)),
        };
    }
    out
}

fn max_var_id(f: &Formula) -> Option<VarId> {
    match f {
        Formula::True | Formula::False => None,
        Formula::Edge(x, y) | Formula::Eq(x, y) | Formula::DistLe(x, y, _) => Some(*x.max(y)),
        Formula::Color(_, x) => Some(*x),
        Formula::Rel(_, xs) => xs.iter().max().copied(),
        Formula::Not(g) => max_var_id(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().filter_map(max_var_id).max(),
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            Some(max_var_id(g).map_or(*v, |m| m.max(*v)))
        }
    }
}

/// Pull quantifiers outward. `negated` tracks polarity (a quantifier under
/// a negation dualizes).
fn pull(f: &Formula, negated: bool, prefix: &mut Vec<(Quant, VarId)>, next: &mut u32) -> Formula {
    match f {
        Formula::Not(g) => {
            let m = pull(g, !negated, prefix, next);
            Formula::Not(Box::new(m))
        }
        Formula::And(gs) => {
            Formula::And(gs.iter().map(|g| pull(g, negated, prefix, next)).collect())
        }
        Formula::Or(gs) => Formula::Or(gs.iter().map(|g| pull(g, negated, prefix, next)).collect()),
        Formula::Exists(v, g) | Formula::Forall(v, g) => {
            let is_exists = matches!(f, Formula::Exists(..));
            let fresh = VarId(*next);
            *next += 1;
            let renamed = g.rename(&|x| if x == *v { fresh } else { x });
            // Under negation, ¬∃ = ∀¬: the hoisted quantifier dualizes
            // (the inner ¬ is kept by the Not case).
            let quant = match (is_exists, negated) {
                (true, false) | (false, true) => Quant::Exists,
                _ => Quant::Forall,
            };
            prefix.push((quant, fresh));
            pull(&renamed, negated, prefix, next)
        }
        atom => atom.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ColorRef, Query};
    use crate::eval::eval;
    use crate::parser::parse_query;
    use nd_graph::generators;
    use std::collections::BTreeSet;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    #[test]
    fn simplify_constants() {
        assert_eq!(simplify(&Formula::Eq(x(), x())), Formula::True);
        assert_eq!(
            simplify(&Formula::Not(Box::new(Formula::Not(Box::new(
                Formula::Edge(x(), y())
            ))))),
            Formula::Edge(x(), y())
        );
        let f = Formula::And(vec![
            Formula::Edge(x(), y()),
            Formula::Eq(x(), x()),
            Formula::Edge(x(), y()),
        ]);
        assert_eq!(simplify(&f), Formula::Edge(x(), y()));
        let g = Formula::Or(vec![Formula::False, Formula::Not(Box::new(Formula::True))]);
        assert_eq!(simplify(&g), Formula::False);
    }

    #[test]
    fn simplify_vacuous_quantifier() {
        let f = Formula::Exists(y(), Box::new(Formula::Color(ColorRef::Id(0), x())));
        assert_eq!(simplify(&f), Formula::Color(ColorRef::Id(0), x()));
        let f = Formula::Forall(
            y(),
            Box::new(Formula::Or(vec![
                Formula::Color(ColorRef::Id(0), x()),
                Formula::Not(Box::new(Formula::Eq(y(), y()))),
            ])),
        );
        assert_eq!(simplify(&f), Formula::Color(ColorRef::Id(0), x()));
    }

    fn colored_graph() -> nd_graph::ColoredGraph {
        let mut g = generators::cycle(7);
        g.add_color(vec![0, 2, 5], Some("Blue".into()));
        g
    }

    fn assert_equivalent(src: &str) {
        let q = parse_query(src).unwrap();
        let g = colored_graph();
        let simplified = Query::new(simplify(&q.formula), q.free.clone());
        let (prefix, matrix) = prenex(&q.formula);
        assert_eq!(matrix.quantifier_rank(), 0, "matrix not quantifier-free");
        let pnf = Query::new(unprenex(&prefix, &matrix), q.free.clone());
        let k = q.arity();
        let mut tuple = vec![0u32; k];
        loop {
            let want = eval(&g, &q, &tuple);
            assert_eq!(
                eval(&g, &simplified, &tuple),
                want,
                "simplify {src} @ {tuple:?}"
            );
            assert_eq!(eval(&g, &pnf, &tuple), want, "prenex {src} @ {tuple:?}");
            // advance
            let mut i = k;
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                if tuple[i] + 1 < g.n() as u32 {
                    tuple[i] += 1;
                    break;
                }
                tuple[i] = 0;
            }
        }
    }

    #[test]
    fn transforms_preserve_semantics() {
        for src in [
            "E(x,y) && Blue(x)",
            "exists z. (E(x,z) && E(z,y))",
            "!(exists z. (E(x,z) && Blue(z)))",
            "forall z. (!E(x,z) || Blue(z)) || x = y",
            "exists z. (Blue(z) && forall w. (!E(z,w) || E(w,x)))",
            "(exists z. E(x,z)) && (exists z. (E(y,z) && Blue(z)))",
        ] {
            assert_equivalent(src);
        }
    }

    #[test]
    fn prenex_shape() {
        let q = parse_query("!(exists z. (E(x,z) && exists w. E(z,w)))").unwrap();
        let (prefix, matrix) = prenex(&q.formula);
        assert_eq!(prefix.len(), 2);
        // ¬∃∃ pulls out as ∀∀ with a negated matrix.
        assert!(prefix.iter().all(|(q2, _)| *q2 == Quant::Forall));
        assert_eq!(matrix.quantifier_rank(), 0);
        // Bound variables are renamed apart.
        let mut seen = BTreeSet::new();
        for (_, v) in &prefix {
            assert!(seen.insert(*v), "prefix variables must be distinct");
        }
    }
}
