//! Naive FO⁺ evaluation — the semantics of record.
//!
//! Evaluation is direct structural recursion: quantifiers loop over the full
//! domain, so checking a sentence of quantifier rank `q` costs `O(n^q)` per
//! tuple and materializing a `k`-ary query costs `O(n^{k+q})` atom
//! evaluations. This is intentionally the *baseline* the paper's machinery
//! beats; every indexed structure in `nd-core` is property-tested against
//! these functions.

use crate::ast::{ColorRef, Formula, Query, VarId};
use nd_graph::bfs::BfsScratch;
use nd_graph::relational::RelationalDb;
use nd_graph::{ColorId, ColoredGraph, Vertex};
use std::collections::HashMap;

/// Evaluation context over a colored graph: resolves color names once and
/// caches capped distance computations.
pub struct EvalCtx<'g> {
    pub g: &'g ColoredGraph,
    scratch: BfsScratch,
    dist_cache: HashMap<(Vertex, Vertex, u32), bool>,
}

impl<'g> EvalCtx<'g> {
    pub fn new(g: &'g ColoredGraph) -> Self {
        EvalCtx {
            g,
            scratch: BfsScratch::new(g.n()),
            dist_cache: HashMap::new(),
        }
    }

    fn color(&self, c: &ColorRef) -> ColorId {
        match c {
            ColorRef::Id(i) => ColorId(*i),
            ColorRef::Named(name) => self
                .g
                .color_by_name(name)
                .unwrap_or_else(|| panic!("unknown color {name:?}")),
        }
    }

    /// `dist(a, b) ≤ d`, cached.
    pub fn dist_le(&mut self, a: Vertex, b: Vertex, d: u32) -> bool {
        let key = (a.min(b), a.max(b), d);
        if let Some(&v) = self.dist_cache.get(&key) {
            return v;
        }
        let v = self.scratch.distance_capped(self.g, a, b, d).is_some();
        self.dist_cache.insert(key, v);
        v
    }
}

/// Variable assignment, indexed by `VarId`.
pub type Assignment = Vec<Option<Vertex>>;

fn get(asg: &Assignment, v: VarId) -> Vertex {
    asg.get(v.0 as usize)
        .copied()
        .flatten()
        .unwrap_or_else(|| panic!("unassigned variable {v}"))
}

fn set(asg: &mut Assignment, v: VarId, val: Option<Vertex>) {
    if asg.len() <= v.0 as usize {
        asg.resize(v.0 as usize + 1, None);
    }
    asg[v.0 as usize] = val;
}

/// Evaluate a formula under an assignment of its free variables.
pub fn eval_in(ctx: &mut EvalCtx<'_>, f: &Formula, asg: &mut Assignment) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Edge(x, y) => ctx.g.has_edge(get(asg, *x), get(asg, *y)),
        Formula::Color(c, x) => {
            let cid = ctx.color(c);
            ctx.g.has_color(get(asg, *x), cid)
        }
        Formula::Eq(x, y) => get(asg, *x) == get(asg, *y),
        Formula::DistLe(x, y, d) => {
            let (a, b) = (get(asg, *x), get(asg, *y));
            ctx.dist_le(a, b, *d)
        }
        Formula::Rel(name, _) => {
            panic!("relational atom {name} cannot be evaluated over a colored graph; rewrite with Lemma 2.2 first")
        }
        Formula::Not(g) => !eval_in(ctx, g, asg),
        Formula::And(gs) => gs.iter().all(|g| eval_in(ctx, g, asg)),
        Formula::Or(gs) => gs.iter().any(|g| eval_in(ctx, g, asg)),
        Formula::Exists(v, g) => {
            let old = asg.get(v.0 as usize).copied().flatten();
            let mut found = false;
            for a in 0..ctx.g.n() as Vertex {
                set(asg, *v, Some(a));
                if eval_in(ctx, g, asg) {
                    found = true;
                    break;
                }
            }
            set(asg, *v, old);
            found
        }
        Formula::Forall(v, g) => {
            let old = asg.get(v.0 as usize).copied().flatten();
            let mut holds = true;
            for a in 0..ctx.g.n() as Vertex {
                set(asg, *v, Some(a));
                if !eval_in(ctx, g, asg) {
                    holds = false;
                    break;
                }
            }
            set(asg, *v, old);
            holds
        }
    }
}

/// Evaluate `q(tuple)` over `g`: does `g ⊨ q(ā)`?
pub fn eval(g: &ColoredGraph, q: &Query, tuple: &[Vertex]) -> bool {
    assert_eq!(tuple.len(), q.arity(), "tuple arity mismatch");
    let mut ctx = EvalCtx::new(g);
    let mut asg: Assignment = Vec::new();
    for (v, &a) in q.free.iter().zip(tuple) {
        set(&mut asg, *v, Some(a));
    }
    eval_in(&mut ctx, &q.formula, &mut asg)
}

/// Materialize `q(G)` in lexicographic order — the naive nested-loop
/// evaluation. Ground truth for all enumeration tests.
pub fn materialize(g: &ColoredGraph, q: &Query) -> Vec<Vec<Vertex>> {
    let mut ctx = EvalCtx::new(g);
    let mut asg: Assignment = Vec::new();
    let mut out = Vec::new();
    let mut tuple = vec![0 as Vertex; q.arity()];
    rec_materialize(&mut ctx, q, 0, &mut tuple, &mut asg, &mut out);
    out
}

fn rec_materialize(
    ctx: &mut EvalCtx<'_>,
    q: &Query,
    pos: usize,
    tuple: &mut Vec<Vertex>,
    asg: &mut Assignment,
    out: &mut Vec<Vec<Vertex>>,
) {
    if pos == q.arity() {
        if eval_in(ctx, &q.formula, asg) {
            out.push(tuple.clone());
        }
        return;
    }
    for a in 0..ctx.g.n() as Vertex {
        tuple[pos] = a;
        set(asg, q.free[pos], Some(a));
        rec_materialize(ctx, q, pos + 1, tuple, asg, out);
    }
    set(asg, q.free[pos], None);
}

/// Evaluate a formula over a relational database (atoms: `Rel`, `Eq`,
/// boolean connectives, quantifiers ranging over the element domain).
pub fn eval_db_in(db: &RelationalDb, f: &Formula, asg: &mut Assignment) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Eq(x, y) => get(asg, *x) == get(asg, *y),
        Formula::Rel(name, xs) => {
            let tuple: Vec<u32> = xs.iter().map(|&x| get(asg, x)).collect();
            db.holds(name, &tuple)
        }
        // `S(x)` parses as a color atom; over a database it denotes the
        // unary relation `S`.
        Formula::Color(ColorRef::Named(name), x) => db.holds(name, &[get(asg, *x)]),
        Formula::Edge(..) | Formula::Color(..) | Formula::DistLe(..) => {
            panic!("graph atom cannot be evaluated over a relational database")
        }
        Formula::Not(g) => !eval_db_in(db, g, asg),
        Formula::And(gs) => gs.iter().all(|g| eval_db_in(db, g, asg)),
        Formula::Or(gs) => gs.iter().any(|g| eval_db_in(db, g, asg)),
        Formula::Exists(v, g) => {
            let old = asg.get(v.0 as usize).copied().flatten();
            let mut found = false;
            for a in 0..db.domain_size as Vertex {
                set(asg, *v, Some(a));
                if eval_db_in(db, g, asg) {
                    found = true;
                    break;
                }
            }
            set(asg, *v, old);
            found
        }
        Formula::Forall(v, g) => {
            let old = asg.get(v.0 as usize).copied().flatten();
            let mut holds = true;
            for a in 0..db.domain_size as Vertex {
                set(asg, *v, Some(a));
                if !eval_db_in(db, g, asg) {
                    holds = false;
                    break;
                }
            }
            set(asg, *v, old);
            holds
        }
    }
}

/// Materialize `q(D)` over a relational database in lexicographic order.
pub fn materialize_db(db: &RelationalDb, q: &Query) -> Vec<Vec<Vertex>> {
    let mut out = Vec::new();
    let mut asg: Assignment = Vec::new();
    let mut tuple = vec![0 as Vertex; q.arity()];
    fn rec(
        db: &RelationalDb,
        q: &Query,
        pos: usize,
        tuple: &mut Vec<Vertex>,
        asg: &mut Assignment,
        out: &mut Vec<Vec<Vertex>>,
    ) {
        if pos == q.arity() {
            if eval_db_in(db, &q.formula, asg) {
                out.push(tuple.clone());
            }
            return;
        }
        for a in 0..db.domain_size as Vertex {
            tuple[pos] = a;
            set(asg, q.free[pos], Some(a));
            rec(db, q, pos + 1, tuple, asg, out);
        }
        set(asg, q.free[pos], None);
    }
    rec(db, q, 0, &mut tuple, &mut asg, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use nd_graph::generators;

    fn colored_path() -> ColoredGraph {
        // 0-1-2-3-4, Blue = {1, 4}.
        let mut g = generators::path(5);
        g.add_color(vec![1, 4], Some("Blue".into()));
        g
    }

    #[test]
    fn atoms() {
        let g = colored_path();
        assert!(eval(&g, &parse_query("E(x,y)").unwrap(), &[0, 1]));
        assert!(!eval(&g, &parse_query("E(x,y)").unwrap(), &[0, 2]));
        assert!(eval(&g, &parse_query("Blue(x)").unwrap(), &[1]));
        assert!(!eval(&g, &parse_query("Blue(x)").unwrap(), &[2]));
        assert!(eval(&g, &parse_query("x = y").unwrap(), &[3, 3]));
        assert!(eval(&g, &parse_query("dist(x,y) <= 2").unwrap(), &[0, 2]));
        assert!(!eval(&g, &parse_query("dist(x,y) <= 2").unwrap(), &[0, 3]));
    }

    #[test]
    fn example_1a_distance_two() {
        // Example 1-A: dist≤2 expressed by quantification agrees with the
        // distance atom.
        let g = colored_path();
        let expanded = parse_query("(exists z. (E(x,z) && E(z,y))) || E(x,y) || x = y").unwrap();
        let atom = parse_query("dist(x,y) <= 2").unwrap();
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(
                    eval(&g, &expanded, &[a, b]),
                    eval(&g, &atom, &[a, b]),
                    "({a},{b})"
                );
            }
        }
    }

    #[test]
    fn example_2_materialization() {
        // Blue nodes at distance > 2 from x.
        let g = colored_path();
        let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
        let sols = materialize(&g, &q);
        assert_eq!(sols, vec![vec![0, 4], vec![1, 4], vec![4, 1]]);
    }

    #[test]
    fn quantifiers() {
        let g = colored_path();
        // Every vertex has a neighbor.
        assert!(eval(
            &g,
            &parse_query("forall x. exists y. E(x,y)").unwrap(),
            &[]
        ));
        // Some vertex is blue and has a blue vertex at distance 3.
        assert!(eval(
            &g,
            &parse_query("exists x. (Blue(x) && exists y. (Blue(y) && dist(x,y) <= 3))").unwrap(),
            &[]
        ));
        // Not every vertex is blue.
        assert!(!eval(&g, &parse_query("forall x. Blue(x)").unwrap(), &[]));
    }

    #[test]
    fn materialize_is_lexicographic() {
        let g = generators::cycle(5);
        let q = parse_query("E(x,y)").unwrap();
        let sols = materialize(&g, &q);
        assert_eq!(sols.len(), 10);
        for w in sols.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn db_evaluation() {
        let mut db = RelationalDb::new(4);
        db.add_relation("R", 2, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let q = parse_query("exists z. (R(x, z) && R(z, y))").unwrap();
        let sols = materialize_db(&db, &q);
        assert_eq!(sols, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    #[should_panic(expected = "rewrite with Lemma 2.2")]
    fn rel_atom_on_graph_panics() {
        let g = colored_path();
        eval(&g, &parse_query("R(x, y)").unwrap(), &[0, 1]);
    }
}
