//! Greedy query shrinking for minimal counterexamples.
//!
//! When the conformance harness (`nd-conform`) finds a query on which two
//! engines disagree, the raw query is usually noisy: several union
//! branches, half a dozen conjuncts, large radii. This module reduces it
//! to a *locally minimal* failing query: no single structural reduction
//! step keeps the failure alive. That is the difference between a
//! counterexample one can file and a counterexample one can read.
//!
//! The shrinker only rewrites the formula; the free-variable list (and
//! hence the arity and tuple order) is preserved, so the failing probe
//! tuples remain meaningful across shrink steps. All candidate reductions
//! keep the formula well-formed: bound variables stay bound, and free
//! variables can only disappear (extra answer variables are legal in
//! [`Query::new`]).

use crate::ast::{Formula, Query};

/// Shrink `q` while `fails` keeps returning `true` for the shrunk query.
///
/// `fails(candidate)` must re-run the property under test (e.g. "engines
/// disagree on this graph") and return whether the candidate still fails.
/// The returned query is locally minimal: every single reduction step
/// produces a query on which `fails` returns `false`.
///
/// `fails` is never called on `q` itself — the caller has already
/// established that `q` fails.
pub fn shrink_query(q: &Query, mut fails: impl FnMut(&Query) -> bool) -> Query {
    let mut best = q.clone();
    loop {
        let mut advanced = false;
        for cand_formula in reductions(&best.formula) {
            let cand = Query::new(cand_formula, best.free.clone());
            if fails(&cand) {
                best = cand;
                advanced = true;
                break; // restart the reduction scan from the smaller query
            }
        }
        if !advanced {
            return best;
        }
    }
}

/// All single-step reductions of `f`, smallest-effect first. Each result
/// is strictly structurally smaller than `f` (by [`Formula::size`]) or
/// has a strictly smaller distance constant, so shrinking terminates.
fn reductions(f: &Formula) -> Vec<Formula> {
    let mut out = Vec::new();
    collect(f, &mut |g| out.push(g));
    out
}

/// Invoke `emit` with every formula obtained from `f` by one reduction.
/// (`dyn` rather than `impl`: the recursion through closures would
/// otherwise instantiate without bound.)
fn collect(f: &Formula, emit: &mut dyn FnMut(Formula)) {
    // Rebuild `f` with one child replaced by one of the child's reductions.
    fn recurse(
        parts: &[Formula],
        rebuild: &dyn Fn(Vec<Formula>) -> Formula,
        emit: &mut dyn FnMut(Formula),
    ) {
        for (i, p) in parts.iter().enumerate() {
            collect(p, &mut |rp| {
                let mut copy: Vec<Formula> = parts.to_vec();
                copy[i] = rp;
                emit(rebuild(copy));
            });
        }
    }

    match f {
        Formula::True | Formula::False => {}
        // Atoms shrink to `True` (dropping the constraint) and distance
        // atoms additionally tighten toward radius 1.
        Formula::DistLe(x, y, d) => {
            emit(Formula::True);
            if *d > 1 {
                emit(Formula::DistLe(*x, *y, d / 2));
                emit(Formula::DistLe(*x, *y, d - 1));
            }
        }
        Formula::Edge(..) | Formula::Color(..) | Formula::Eq(..) | Formula::Rel(..) => {
            emit(Formula::True);
        }
        Formula::Not(g) => {
            // Dropping a negated conjunct entirely is handled by the parent
            // And/Or arm; here we shrink inside the negation.
            emit(Formula::True);
            collect(g, &mut |rg| emit(Formula::Not(Box::new(rg))));
        }
        Formula::And(fs) => {
            // Drop one conjunct at a time.
            for i in 0..fs.len() {
                let rest: Vec<Formula> = fs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, g)| g.clone())
                    .collect();
                emit(Formula::and(rest));
            }
            recurse(fs, &Formula::And, emit);
        }
        Formula::Or(fs) => {
            // Drop one branch at a time; also collapse to a single branch.
            for i in 0..fs.len() {
                let rest: Vec<Formula> = fs
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, g)| g.clone())
                    .collect();
                emit(Formula::or(rest));
            }
            for g in fs {
                emit(g.clone());
            }
            recurse(fs, &Formula::Or, emit);
        }
        Formula::Exists(v, g) => {
            // A quantified unary conjunct usually guards nothing essential:
            // try dropping it, then shrinking its body.
            emit(Formula::True);
            let v = *v;
            collect(g, &mut |rg| emit(Formula::Exists(v, Box::new(rg))));
        }
        Formula::Forall(v, g) => {
            emit(Formula::True);
            let v = *v;
            collect(g, &mut |rg| emit(Formula::Forall(v, Box::new(rg))));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::VarId;

    fn x() -> VarId {
        VarId(0)
    }
    fn y() -> VarId {
        VarId(1)
    }

    #[test]
    fn shrinks_to_the_failing_conjunct() {
        // Property: "fails" iff the formula still contains a dist atom with
        // radius ≥ 2. The minimal failing query keeps exactly that atom.
        let q = Query::new(
            Formula::and([
                Formula::Edge(x(), y()),
                Formula::DistLe(x(), y(), 4),
                Formula::Not(Box::new(Formula::Eq(x(), y()))),
            ]),
            vec![x(), y()],
        );
        let has_wide_dist = |f: &Formula| -> bool {
            fn walk(f: &Formula) -> bool {
                match f {
                    Formula::DistLe(_, _, d) => *d >= 2,
                    Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => walk(g),
                    Formula::And(fs) | Formula::Or(fs) => fs.iter().any(walk),
                    _ => false,
                }
            }
            walk(f)
        };
        let min = shrink_query(&q, |cand| has_wide_dist(&cand.formula));
        assert_eq!(min.formula, Formula::DistLe(x(), y(), 2));
        assert_eq!(min.free, vec![x(), y()]);
    }

    #[test]
    fn shrinking_terminates_on_unions() {
        let q = Query::new(
            Formula::or([
                Formula::and([Formula::Edge(x(), y()), Formula::Eq(x(), y())]),
                Formula::DistLe(x(), y(), 3),
            ]),
            vec![x(), y()],
        );
        // Nothing fails: the original query is returned untouched.
        let same = shrink_query(&q, |_| false);
        assert_eq!(same, q);
        // Everything fails: shrinks all the way to `true`.
        let tiny = shrink_query(&q, |_| true);
        assert!(tiny.formula.size() <= 1, "{tiny}");
    }
}
