//! `r`-distance types (Section 5.1.2).
//!
//! For a `k`-tuple `ā` over a graph `G`, the `r`-distance type `τ_r^G(ā)` is
//! the undirected graph on positions `{1, …, k}` with an edge `{i, j}` iff
//! `dist(a_i, a_j) ≤ r`. The Rank-Preserving Normal Form decomposes a query
//! along the connected components of the distance type: positions in the
//! same component are "close" (they live in one bag of the cover), positions
//! in different components are "far" (handled by skip pointers).

use crate::ast::{Formula, VarId};

/// A distance type `τ ∈ T_k`: a graph on positions `0..k` (0-indexed here,
/// unlike the paper's `1..k`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DistanceType {
    k: usize,
    /// Upper-triangle adjacency, row-major: entry for `(i, j)` with `i < j`
    /// at index `idx(i, j)`.
    adj: Vec<bool>,
}

impl DistanceType {
    /// The edgeless type on `k` positions.
    pub fn empty(k: usize) -> Self {
        DistanceType {
            k,
            adj: vec![false; k * k.saturating_sub(1) / 2],
        }
    }

    /// Number of positions.
    pub fn k(&self) -> usize {
        self.k
    }

    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.k);
        // Row i starts after rows 0..i: sum_{t<i} (k-1-t).
        i * (2 * self.k - i - 1) / 2 + (j - i - 1)
    }

    /// Is `{i, j}` an edge (positions close)?
    pub fn edge(&self, i: usize, j: usize) -> bool {
        if i == j {
            return true;
        }
        let (i, j) = (i.min(j), i.max(j));
        self.adj[self.idx(i, j)]
    }

    /// Add the edge `{i, j}`.
    pub fn set_edge(&mut self, i: usize, j: usize) {
        assert_ne!(i, j);
        let (i, j) = (i.min(j), i.max(j));
        let idx = self.idx(i, j);
        self.adj[idx] = true;
    }

    /// All `2^{k(k-1)/2}` distance types on `k` positions (small `k` only).
    pub fn all(k: usize) -> Vec<DistanceType> {
        let bits = k * k.saturating_sub(1) / 2;
        assert!(bits <= 20, "too many distance types to enumerate");
        (0..(1usize << bits))
            .map(|mask| DistanceType {
                k,
                adj: (0..bits).map(|b| mask >> b & 1 == 1).collect(),
            })
            .collect()
    }

    /// Compute `τ_r^G(ā)` given a `dist(·,·) ≤ r` oracle.
    pub fn of_tuple(k: usize, mut close: impl FnMut(usize, usize) -> bool) -> Self {
        let mut t = DistanceType::empty(k);
        for i in 0..k {
            for j in (i + 1)..k {
                if close(i, j) {
                    t.set_edge(i, j);
                }
            }
        }
        t
    }

    /// Connected components, each as a sorted list of positions; components
    /// ordered by their minimum position.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut comp = vec![usize::MAX; self.k];
        let mut out: Vec<Vec<usize>> = Vec::new();
        for start in 0..self.k {
            if comp[start] != usize::MAX {
                continue;
            }
            let id = out.len();
            let mut stack = vec![start];
            comp[start] = id;
            let mut members = vec![start];
            while let Some(i) = stack.pop() {
                #[allow(clippy::needless_range_loop)] // index used in edge(i, j)
                for j in 0..self.k {
                    if j != i && comp[j] == usize::MAX && self.edge(i, j) {
                        comp[j] = id;
                        stack.push(j);
                        members.push(j);
                    }
                }
            }
            members.sort_unstable();
            out.push(members);
        }
        out
    }

    /// The component containing position `i`.
    pub fn component_of(&self, i: usize) -> Vec<usize> {
        self.components()
            .into_iter()
            .find(|c| c.contains(&i))
            .expect("position out of range")
    }

    /// The characteristic formula `ρ_τ(x̄)` (Step 2 of the Section 5.2.1
    /// preprocessing): the conjunction of `dist ≤ r` for edges and
    /// `dist > r` for non-edges, so that `G ⊨ ρ_τ(ā)` iff `τ_r^G(ā) = τ`.
    pub fn rho(&self, vars: &[VarId], r: u32) -> Formula {
        assert_eq!(vars.len(), self.k);
        let mut parts = Vec::new();
        for i in 0..self.k {
            for j in (i + 1)..self.k {
                if self.edge(i, j) {
                    parts.push(Formula::DistLe(vars[i], vars[j], r));
                } else {
                    parts.push(Formula::dist_gt(vars[i], vars[j], r));
                }
            }
        }
        Formula::and(parts)
    }

    /// Restriction of the type to positions `0..k-1` (the `τ'` of the
    /// answering phase).
    pub fn restrict_prefix(&self) -> DistanceType {
        let mut t = DistanceType::empty(self.k - 1);
        for i in 0..self.k - 1 {
            for j in (i + 1)..self.k - 1 {
                if self.edge(i, j) {
                    t.set_edge(i, j);
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_index_math() {
        let mut t = DistanceType::empty(4);
        t.set_edge(0, 1);
        t.set_edge(2, 3);
        assert!(t.edge(0, 1));
        assert!(t.edge(1, 0));
        assert!(t.edge(3, 2));
        assert!(!t.edge(0, 2));
        assert!(t.edge(2, 2), "reflexive by convention");
    }

    #[test]
    fn components_partition() {
        let mut t = DistanceType::empty(5);
        t.set_edge(0, 2);
        t.set_edge(2, 4);
        t.set_edge(1, 3);
        let comps = t.components();
        assert_eq!(comps, vec![vec![0, 2, 4], vec![1, 3]]);
        assert_eq!(t.component_of(4), vec![0, 2, 4]);
    }

    #[test]
    fn all_types_count() {
        assert_eq!(DistanceType::all(1).len(), 1);
        assert_eq!(DistanceType::all(2).len(), 2);
        assert_eq!(DistanceType::all(3).len(), 8);
        assert_eq!(DistanceType::all(4).len(), 64);
        // Each enumerated type is distinct.
        let all = DistanceType::all(3);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn of_tuple_matches_oracle() {
        let t = DistanceType::of_tuple(3, |i, j| i + j == 2);
        assert!(t.edge(0, 2));
        assert!(!t.edge(0, 1));
        assert!(!t.edge(1, 2));
    }

    #[test]
    fn rho_shape() {
        let mut t = DistanceType::empty(2);
        t.set_edge(0, 1);
        let f = t.rho(&[VarId(0), VarId(1)], 3);
        assert_eq!(f, Formula::DistLe(VarId(0), VarId(1), 3));
        let t2 = DistanceType::empty(2);
        let f2 = t2.rho(&[VarId(0), VarId(1)], 3);
        assert_eq!(f2, Formula::dist_gt(VarId(0), VarId(1), 3));
    }

    #[test]
    fn restrict_prefix_drops_last() {
        let mut t = DistanceType::empty(3);
        t.set_edge(0, 1);
        t.set_edge(1, 2);
        let p = t.restrict_prefix();
        assert_eq!(p.k(), 2);
        assert!(p.edge(0, 1));
    }
}
