//! A textual surface syntax for FO⁺ queries.
//!
//! ```text
//! query   := [ name '(' var (',' var)* ')' ':=' ] formula
//! formula := 'exists' var '.' formula
//!          | 'forall' var '.' formula
//!          | disj
//! disj    := conj ( ('||' | 'or') conj )*
//! conj    := unary ( ('&&' | 'and') unary )*
//! unary   := '!' unary | 'not' unary | atom
//! atom    := 'E' '(' var ',' var ')'
//!          | 'dist' '(' var ',' var ')' ('<=' | '>') number
//!          | var '=' var | var '!=' var
//!          | 'true' | 'false'
//!          | ident '(' var (',' var)* ')'      -- color (1 var) or relation
//!          | '(' formula ')'
//! ```
//!
//! Examples from the paper:
//!
//! * Example 1-A: `dist(x,y) <= 2`
//! * Example 2: `dist(x,y) > 2 && Blue(y)` and
//!   `dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)`
//!
//! Free variables are collected in order of first occurrence unless an
//! explicit head `q(x, y) := …` fixes the answer-tuple order.

use crate::ast::{ColorRef, Formula, Query, VarId};
use std::collections::HashMap;
use std::fmt;

/// Parse failure, with a byte position into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Number(u64),
    LParen,
    RParen,
    Comma,
    Dot,
    AndAnd,
    OrOr,
    Bang,
    Eq,
    Neq,
    Le,
    Gt,
    Assign, // :=
}

fn tokenize(src: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            '.' => {
                out.push((i, Tok::Dot));
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push((i, Tok::AndAnd));
                    i += 2;
                } else {
                    return Err(ParseError {
                        pos: i,
                        message: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push((i, Tok::OrOr));
                    i += 2;
                } else {
                    return Err(ParseError {
                        pos: i,
                        message: "expected '||'".into(),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Neq));
                    i += 2;
                } else {
                    out.push((i, Tok::Bang));
                    i += 1;
                }
            }
            '=' => {
                out.push((i, Tok::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Le));
                    i += 2;
                } else {
                    return Err(ParseError {
                        pos: i,
                        message: "expected '<='".into(),
                    });
                }
            }
            '>' => {
                out.push((i, Tok::Gt));
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Tok::Assign));
                    i += 2;
                } else {
                    return Err(ParseError {
                        pos: i,
                        message: "expected ':='".into(),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let n: u64 = src[start..i].parse().map_err(|_| ParseError {
                    pos: start,
                    message: "number too large".into(),
                })?;
                out.push((start, Tok::Number(n)));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '@' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'@'
                        || bytes[i] == b':')
                {
                    i += 1;
                }
                out.push((start, Tok::Ident(src[start..i].to_string())));
            }
            other => {
                return Err(ParseError {
                    pos: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    vars: HashMap<String, VarId>,
    var_names: Vec<String>,
    /// Free variables in first-occurrence order.
    free_order: Vec<VarId>,
    /// Names currently shadowed by quantifiers (stack of (name, old binding)).
    bound_stack: Vec<(String, Option<VarId>)>,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(usize::MAX)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        let pos = self.here();
        match self.bump() {
            Some(got) if got == t => Ok(()),
            got => Err(ParseError {
                pos,
                message: format!("expected {t:?}, found {got:?}"),
            }),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            pos: self.here(),
            message: message.into(),
        })
    }

    fn fresh_var(&mut self, name: &str) -> VarId {
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.to_string());
        id
    }

    /// Resolve a variable occurrence: bound name, previously seen free name,
    /// or a new free variable.
    fn var(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.vars.get(name) {
            return v;
        }
        let v = self.fresh_var(name);
        self.vars.insert(name.to_string(), v);
        self.free_order.push(v);
        v
    }

    fn enter_binder(&mut self, name: &str) -> VarId {
        let v = self.fresh_var(name);
        let old = self.vars.insert(name.to_string(), v);
        self.bound_stack.push((name.to_string(), old));
        v
    }

    fn exit_binder(&mut self) {
        let (name, old) = self.bound_stack.pop().expect("binder stack underflow");
        match old {
            Some(v) => {
                self.vars.insert(name, v);
            }
            None => {
                self.vars.remove(&name);
            }
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) if s == "exists" || s == "forall" => {
                let is_exists = s == "exists";
                self.bump();
                let name = match self.bump() {
                    Some(Tok::Ident(n)) => n,
                    _ => return self.err("expected variable after quantifier"),
                };
                let v = self.enter_binder(&name);
                self.expect(Tok::Dot)?;
                let body = self.formula()?;
                self.exit_binder();
                Ok(if is_exists {
                    Formula::Exists(v, Box::new(body))
                } else {
                    Formula::Forall(v, Box::new(body))
                })
            }
            _ => self.disj(),
        }
    }

    fn disj(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.conj()?];
        loop {
            match self.peek() {
                Some(Tok::OrOr) => {
                    self.bump();
                }
                Some(Tok::Ident(s)) if s == "or" => {
                    self.bump();
                }
                _ => break,
            }
            parts.push(self.conj()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::Or(parts)
        })
    }

    fn conj(&mut self) -> Result<Formula, ParseError> {
        let mut parts = vec![self.unary()?];
        loop {
            match self.peek() {
                Some(Tok::AndAnd) => {
                    self.bump();
                }
                Some(Tok::Ident(s)) if s == "and" => {
                    self.bump();
                }
                _ => break,
            }
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Formula::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            // A quantifier in operand position scopes as far right as
            // possible: `A && exists y. B || C` is `A && exists y. (B || C)`.
            Some(Tok::Ident(s)) if s == "exists" || s == "forall" => self.formula(),
            Some(Tok::Bang) => {
                self.bump();
                Ok(Formula::Not(Box::new(self.unary()?)))
            }
            Some(Tok::Ident(s)) if s == "not" => {
                self.bump();
                Ok(Formula::Not(Box::new(self.unary()?)))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.bump();
                let f = self.formula()?;
                self.expect(Tok::RParen)?;
                Ok(f)
            }
            Some(Tok::Ident(name)) => {
                self.bump();
                match name.as_str() {
                    "true" => return Ok(Formula::True),
                    "false" => return Ok(Formula::False),
                    "exists" | "forall" => {
                        return self.err("quantifier must be parenthesized here")
                    }
                    _ => {}
                }
                if name == "dist" {
                    self.expect(Tok::LParen)?;
                    let x = self.var_token()?;
                    self.expect(Tok::Comma)?;
                    let y = self.var_token()?;
                    self.expect(Tok::RParen)?;
                    let cmp = self.bump();
                    let d = match self.bump() {
                        Some(Tok::Number(n)) => n as u32,
                        _ => return self.err("expected number after dist comparison"),
                    };
                    return match cmp {
                        Some(Tok::Le) => Ok(Formula::DistLe(x, y, d)),
                        Some(Tok::Gt) => Ok(Formula::dist_gt(x, y, d)),
                        _ => self.err("expected '<=' or '>' after dist(...)"),
                    };
                }
                if self.peek() == Some(&Tok::LParen) {
                    // E(x,y), Color(x) or Relation(x1,…,xj).
                    self.bump();
                    let mut args = vec![self.var_token()?];
                    while self.peek() == Some(&Tok::Comma) {
                        self.bump();
                        args.push(self.var_token()?);
                    }
                    self.expect(Tok::RParen)?;
                    return match (name.as_str(), args.len()) {
                        ("E", 2) => Ok(Formula::Edge(args[0], args[1])),
                        ("E", _) => self.err("E takes exactly two arguments"),
                        (_, 1) => Ok(Formula::Color(ColorRef::Named(name), args[0])),
                        (_, _) => Ok(Formula::Rel(name, args)),
                    };
                }
                // Bare identifier: `x = y` or `x != y`.
                let x = self.var(&name);
                match self.bump() {
                    Some(Tok::Eq) => {
                        let y = self.var_token()?;
                        Ok(Formula::Eq(x, y))
                    }
                    Some(Tok::Neq) => {
                        let y = self.var_token()?;
                        Ok(Formula::Not(Box::new(Formula::Eq(x, y))))
                    }
                    _ => self.err(format!("expected '=' or '!=' after variable {name}")),
                }
            }
            other => self.err(format!("expected atom, found {other:?}")),
        }
    }

    fn var_token(&mut self) -> Result<VarId, ParseError> {
        match self.bump() {
            Some(Tok::Ident(n)) => Ok(self.var(&n)),
            got => Err(ParseError {
                pos: self.here(),
                message: format!("expected variable, found {got:?}"),
            }),
        }
    }
}

/// Parse a formula (no head); free variables ordered by first occurrence.
pub fn parse_formula(src: &str) -> Result<Query, ParseError> {
    parse_query(src)
}

/// Parse a query, optionally with an explicit head `q(x, y) := …` fixing the
/// answer-tuple order.
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let toks = tokenize(src)?;
    // Detect a head: Ident LParen ... RParen Assign.
    let head_end = toks.iter().position(|(_, t)| *t == Tok::Assign);
    let mut p = Parser {
        toks,
        pos: 0,
        vars: HashMap::new(),
        var_names: Vec::new(),
        free_order: Vec::new(),
        bound_stack: Vec::new(),
    };
    let mut declared: Option<Vec<VarId>> = None;
    if let Some(end) = head_end {
        // Parse the head strictly.
        let _name = match p.bump() {
            Some(Tok::Ident(n)) => n,
            _ => return p.err("expected query name in head"),
        };
        p.expect(Tok::LParen)?;
        let mut order = Vec::new();
        if p.peek() != Some(&Tok::RParen) {
            order.push(p.var_token()?);
            while p.peek() == Some(&Tok::Comma) {
                p.bump();
                order.push(p.var_token()?);
            }
        }
        p.expect(Tok::RParen)?;
        p.expect(Tok::Assign)?;
        debug_assert_eq!(p.pos, end + 1);
        declared = Some(order);
    }
    let formula = p.formula()?;
    if p.pos != p.toks.len() {
        return p.err("trailing input after formula");
    }
    let free = formula.free_vars();
    let order = match declared {
        Some(order) => {
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != order.len() {
                return Err(ParseError {
                    pos: 0,
                    message: "duplicate variable in query head".into(),
                });
            }
            // The head may declare extra (unconstrained) answer variables,
            // but must cover every free variable of the body.
            if !free.iter().all(|v| sorted.binary_search(v).is_ok()) {
                return Err(ParseError {
                    pos: 0,
                    message: "head does not cover the formula's free variables".into(),
                });
            }
            order
        }
        None => {
            // First-occurrence order, restricted to actually-free variables.
            p.free_order.retain(|v| free.binary_search(v).is_ok());
            p.free_order.clone()
        }
    };
    let mut q = Query::new(formula, order);
    q.var_names = p.var_names;
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Formula as F;

    #[test]
    fn example_1a() {
        let q = parse_query("dist(x,y) <= 2").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(q.formula, F::DistLe(VarId(0), VarId(1), 2));
    }

    #[test]
    fn example_2() {
        let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
        assert_eq!(q.arity(), 2);
        assert_eq!(
            q.formula,
            F::And(vec![
                F::dist_gt(VarId(0), VarId(1), 2),
                F::Color(ColorRef::Named("Blue".into()), VarId(1)),
            ])
        );
    }

    #[test]
    fn quantifiers_and_shadowing() {
        let q = parse_query("exists y. (E(x,y) && exists y. E(y,x))").unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.formula.quantifier_rank(), 2);
        // x is VarId of the first occurrence inside the binder body.
        assert_eq!(q.free, vec![VarId(1)]);
    }

    #[test]
    fn head_fixes_order() {
        let q = parse_query("q(y, x) := E(x, y) && Blue(y)").unwrap();
        assert_eq!(q.free.len(), 2);
        // y must come first in the answer tuple.
        assert_eq!(q.var_names[q.free[0].0 as usize], "y");
        assert_eq!(q.var_names[q.free[1].0 as usize], "x");
    }

    #[test]
    fn head_must_cover_free_vars() {
        assert!(parse_query("q(x) := E(x, y)").is_err());
        assert!(parse_query("q(x, x) := E(x, y)").is_err());
        // Extra head variables are allowed (unconstrained answer columns).
        let q = parse_query("q(x, y, z) := E(x, y)").unwrap();
        assert_eq!(q.arity(), 3);
    }

    #[test]
    fn precedence_or_binds_looser() {
        let q = parse_query("E(x,y) && E(y,z) || x = z").unwrap();
        match q.formula {
            F::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[0], F::And(_)));
                assert!(matches!(parts[1], F::Eq(..)));
            }
            other => panic!("expected Or, got {other}"),
        }
    }

    #[test]
    fn relations_and_equality() {
        let q = parse_query("R(x, y, z) && x != y").unwrap();
        assert!(matches!(q.formula, F::And(_)));
        let q = parse_query("S(x)").unwrap();
        assert_eq!(q.formula, F::Color(ColorRef::Named("S".into()), VarId(0)));
    }

    #[test]
    fn errors_have_positions() {
        let e = parse_query("E(x,)").unwrap_err();
        assert!(e.pos > 0);
        assert!(parse_query("dist(x,y) < 2").is_err());
        assert!(parse_query("E(x,y) &&").is_err());
        assert!(parse_query("E(x,y) extra").is_err());
        assert!(parse_query("").is_err());
    }

    #[test]
    fn sentences_have_arity_zero() {
        let q = parse_query("exists x. exists y. E(x, y)").unwrap();
        assert_eq!(q.arity(), 0);
    }

    #[test]
    fn display_reparses() {
        let q = parse_query("exists z. (dist(x,z) <= 3 && Blue(z)) || x = y").unwrap();
        let printed = format!("{}", q.formula);
        // The printed form uses canonical variable names v0…; it must parse.
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q2.formula.size(), q.formula.size());
    }
}
