//! Syntactic guardedness analysis and local evaluation of unary formulas.
//!
//! This is the concrete substitute for the Unary Theorem (Theorem 5.3,
//! Grohe–Kreutzer–Siebertz model checking) used by our pipeline — see
//! DESIGN.md §2. A unary formula `U(x)` is **guarded** when, in negation
//! normal form, every `∃y` quantifier carries a positive guard atom
//! (`E(z,y)`, `dist(z,y) ≤ d` or `y = z` with `z` already in scope) and
//! every `∀y` quantifier carries the dual negative guard in its disjunction.
//! Guarded formulas are `ρ`-local for a radius `ρ` computable from the
//! guards, so `G ⊨ U(a)` iff `N_ρ(a) ⊨ U(a)` — which lets us evaluate `U`
//! for every vertex by a BFS ball per vertex. On sparse graph families the
//! total cost `Σ_v ‖N_ρ(v)‖` is pseudo-linear, the shape Theorem 5.3
//! promises.
//!
//! Unguarded formulas fall back to global naive evaluation (correct but
//! quadratic) — the experiment harness reports when this happens.

use crate::ast::{Formula, VarId};
use crate::eval::{eval_in, Assignment, EvalCtx};
use nd_graph::{BfsScratch, ColoredGraph, InducedSubgraph, Vertex};
use std::collections::HashMap;

/// Result of the guardedness analysis: the locality radius, or `None` when
/// the formula is not syntactically guarded.
pub fn unary_locality(f: &Formula, root: VarId) -> Option<u32> {
    let free = f.free_vars();
    if free != vec![root] && !free.is_empty() {
        return None;
    }
    let nnf = f.nnf();
    let mut env: HashMap<VarId, u32> = HashMap::new();
    env.insert(root, 0);
    let mut reach = 0u32;
    if walk(&nnf, &mut env, &mut reach) {
        Some(reach)
    } else {
        None
    }
}

/// Distance bound contributed by a guard atom, if `other` is guarded
/// through `z ∈ env`.
fn guard_bound(env: &HashMap<VarId, u32>, atom: &Formula, y: VarId) -> Option<u32> {
    let link = |a: VarId, b: VarId, d: u32| -> Option<u32> {
        if a == y && b != y {
            env.get(&b).map(|&bz| bz.saturating_add(d))
        } else if b == y && a != y {
            env.get(&a).map(|&az| az.saturating_add(d))
        } else {
            None
        }
    };
    match atom {
        Formula::Edge(a, b) => link(*a, *b, 1),
        Formula::DistLe(a, b, d) => link(*a, *b, *d),
        Formula::Eq(a, b) => link(*a, *b, 0),
        _ => None,
    }
}

/// Same, but for the *negated* guards of a `∀` disjunction in NNF.
fn neg_guard_bound(env: &HashMap<VarId, u32>, part: &Formula, y: VarId) -> Option<u32> {
    match part {
        Formula::Not(inner) => guard_bound(env, inner, y),
        _ => None,
    }
}

fn conj_parts(f: &Formula) -> Vec<&Formula> {
    match f {
        Formula::And(fs) => fs.iter().collect(),
        other => vec![other],
    }
}

fn disj_parts(f: &Formula) -> Vec<&Formula> {
    match f {
        Formula::Or(fs) => fs.iter().collect(),
        other => vec![other],
    }
}

fn atom_reach(env: &HashMap<VarId, u32>, x: VarId, y: VarId, d: u32, reach: &mut u32) -> bool {
    let (Some(&bx), Some(&by)) = (env.get(&x), env.get(&y)) else {
        return false;
    };
    // Both endpoints must lie in the ball, and any witnessing path of
    // length ≤ d (starting from the closer endpoint) must too.
    *reach = (*reach).max(bx).max(by).max(bx.min(by).saturating_add(d));
    true
}

fn walk(f: &Formula, env: &mut HashMap<VarId, u32>, reach: &mut u32) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Edge(x, y) => atom_reach(env, *x, *y, 1, reach),
        Formula::DistLe(x, y, d) => atom_reach(env, *x, *y, *d, reach),
        Formula::Eq(x, y) => atom_reach(env, *x, *y, 0, reach),
        Formula::Color(_, x) => {
            if let Some(&bx) = env.get(x) {
                *reach = (*reach).max(bx);
                true
            } else {
                false
            }
        }
        Formula::Rel(..) => false,
        Formula::Not(inner) => walk(inner, env, reach), // NNF: `inner` is an atom
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| walk(g, env, reach)),
        Formula::Exists(y, body) => {
            let parts = conj_parts(body);
            let bound = parts.iter().filter_map(|p| guard_bound(env, p, *y)).min();
            let Some(bound) = bound else { return false };
            let old = env.insert(*y, bound);
            let ok = parts.iter().all(|p| walk(p, env, reach));
            match old {
                Some(b) => {
                    env.insert(*y, b);
                }
                None => {
                    env.remove(y);
                }
            }
            ok
        }
        Formula::Forall(y, body) => {
            let parts = disj_parts(body);
            let bound = parts
                .iter()
                .filter_map(|p| neg_guard_bound(env, p, *y))
                .min();
            let Some(bound) = bound else { return false };
            let old = env.insert(*y, bound);
            let ok = parts.iter().all(|p| walk(p, env, reach));
            match old {
                Some(b) => {
                    env.insert(*y, b);
                }
                None => {
                    env.remove(y);
                }
            }
            ok
        }
    }
}

/// Evaluate a unary formula for **every** vertex of `g`.
///
/// If the formula is guarded with radius `ρ`, evaluates per vertex inside
/// `N_ρ(v)` (pseudo-linear on sparse families); otherwise evaluates
/// globally. Returns the sorted list of satisfying vertices.
pub fn evaluate_unary(g: &ColoredGraph, f: &Formula, root: VarId) -> Vec<Vertex> {
    if is_colorwise(f, root) {
        // Quantifier-free boolean combination of colors of the root: no
        // neighborhood needed, evaluate per vertex directly.
        return g.vertices().filter(|&v| eval_colorwise(g, f, v)).collect();
    }
    match unary_locality(f, root) {
        Some(radius) => evaluate_unary_local(g, f, root, radius),
        None => evaluate_unary_global(g, f, root),
    }
}

/// Is `f` a boolean combination of color atoms (and trivial equalities) of
/// the single variable `root`?
fn is_colorwise(f: &Formula, root: VarId) -> bool {
    match f {
        Formula::True | Formula::False => true,
        Formula::Color(_, x) => *x == root,
        Formula::Eq(x, y) => *x == root && *y == root,
        Formula::Not(g) => is_colorwise(g, root),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| is_colorwise(g, root)),
        _ => false,
    }
}

fn eval_colorwise(g: &ColoredGraph, f: &Formula, v: Vertex) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Color(c, _) => {
            let cid = match c {
                crate::ast::ColorRef::Id(i) => nd_graph::ColorId(*i),
                crate::ast::ColorRef::Named(name) => g
                    .color_by_name(name)
                    .unwrap_or_else(|| panic!("unknown color {name:?}")),
            };
            g.has_color(v, cid)
        }
        Formula::Eq(..) => true, // x = x
        Formula::Not(inner) => !eval_colorwise(g, inner, v),
        Formula::And(fs) => fs.iter().all(|h| eval_colorwise(g, h, v)),
        Formula::Or(fs) => fs.iter().any(|h| eval_colorwise(g, h, v)),
        _ => unreachable!("guarded by is_colorwise"),
    }
}

/// Per-vertex ball evaluation at the given radius (caller asserts locality).
pub fn evaluate_unary_local(
    g: &ColoredGraph,
    f: &Formula,
    root: VarId,
    radius: u32,
) -> Vec<Vertex> {
    let mut out = Vec::new();
    let mut scratch = BfsScratch::new(g.n());
    for v in g.vertices() {
        let ball = scratch.ball_sorted(g, v, radius);
        let sub = InducedSubgraph::new_small(g, &ball);
        let local_v = sub.to_local(v).expect("center is in its own ball");
        let mut ctx = EvalCtx::new(&sub.graph);
        let mut asg: Assignment = vec![None; root.0 as usize + 1];
        asg[root.0 as usize] = Some(local_v);
        if eval_in(&mut ctx, f, &mut asg) {
            out.push(v);
        }
    }
    out
}

/// Global naive evaluation of a unary formula for every vertex.
pub fn evaluate_unary_global(g: &ColoredGraph, f: &Formula, root: VarId) -> Vec<Vertex> {
    let mut ctx = EvalCtx::new(g);
    let mut out = Vec::new();
    let mut asg: Assignment = vec![None; root.0 as usize + 1];
    for v in g.vertices() {
        asg[root.0 as usize] = Some(v);
        if eval_in(&mut ctx, f, &mut asg) {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use nd_graph::generators;

    fn unary(src: &str) -> (Formula, VarId) {
        let q = parse_query(src).unwrap();
        assert_eq!(q.arity(), 1, "test formula must be unary");
        (q.formula, q.free[0])
    }

    #[test]
    fn guarded_examples() {
        let (f, x) = unary("exists y. (E(x,y) && Blue(y))");
        assert_eq!(unary_locality(&f, x), Some(1));

        let (f, x) = unary("exists y. (dist(x,y) <= 3 && Blue(y))");
        assert_eq!(unary_locality(&f, x), Some(3));

        // Nested: a blue vertex within 2, which itself has a red neighbor.
        let (f, x) = unary("exists y. (dist(x,y) <= 2 && Blue(y) && exists z. (E(y,z) && Red(z)))");
        assert_eq!(unary_locality(&f, x), Some(3));

        // Forall guarded by a negated link (NNF of "all neighbors are red").
        let (f, x) = unary("forall y. (!E(x,y) || Red(y))");
        assert_eq!(unary_locality(&f, x), Some(1));
    }

    #[test]
    fn unguarded_examples() {
        // Global property — no guard on y.
        let (f, x) = unary("exists y. (Blue(y) && E(x,x))");
        assert_eq!(unary_locality(&f, x), None);
        let (f, x) = unary("forall y. (Blue(y) || E(x,x))");
        assert_eq!(unary_locality(&f, x), None);
        // dist > r is not a positive guard for ∃.
        let (f, x) = unary("exists y. (dist(x,y) > 2 && Blue(y))");
        assert_eq!(unary_locality(&f, x), None);
    }

    #[test]
    fn local_evaluation_matches_global() {
        let mut g = generators::grid(12, 12);
        let blue: Vec<Vertex> = (0..g.n() as Vertex).filter(|v| v % 3 == 0).collect();
        let red: Vec<Vertex> = (0..g.n() as Vertex).filter(|v| v % 5 == 1).collect();
        g.add_color(blue, Some("Blue".into()));
        g.add_color(red, Some("Red".into()));

        for src in [
            "exists y. (E(x,y) && Blue(y))",
            "exists y. (dist(x,y) <= 2 && Red(y))",
            "forall y. (!dist(x,y) <= 2 || Blue(y) || Red(y) || !Blue(y))",
            "exists y. (dist(x,y) <= 2 && Blue(y) && exists z. (E(y,z) && Red(z)))",
            "Blue(x) && !Red(x)",
            "forall y. (!E(x,y) || !Blue(y))",
        ] {
            let (f, x) = unary(src);
            let rho = unary_locality(&f, x).unwrap_or_else(|| panic!("{src} should be guarded"));
            let local = evaluate_unary_local(&g, &f, x, rho);
            let global = evaluate_unary_global(&g, &f, x);
            assert_eq!(local, global, "query {src} (rho={rho})");
        }
    }

    #[test]
    fn evaluate_unary_falls_back() {
        let mut g = generators::path(8);
        g.add_color(vec![7], Some("Blue".into()));
        // "some vertex anywhere is blue" — unguarded, needs global fallback.
        let (f, x) = unary("exists y. (Blue(y) && x = x)");
        assert_eq!(unary_locality(&f, x), None);
        let sats = evaluate_unary(&g, &f, x);
        assert_eq!(sats.len(), 8);
    }

    #[test]
    fn equality_guard() {
        let (f, x) = unary("exists y. (y = x && Blue(y))");
        assert_eq!(unary_locality(&f, x), Some(0));
    }
}
