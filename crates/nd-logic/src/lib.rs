//! First-order logic with distance atoms (**FO⁺**, Section 5 of the paper)
//! over colored graphs and relational structures.
//!
//! * [`ast`] — the formula AST (`E`, colors, `=`, `dist(x,y) ≤ d`, boolean
//!   connectives, quantifiers, and relational atoms for databases),
//!   free-variable computation, renaming, negation normal form,
//!   quantifier-rank and the paper's `q`-rank (Section 5.1.2).
//! * [`parser`] — a textual surface syntax for queries.
//! * [`mod@eval`] — naive (exponential-in-arity) evaluation over colored graphs
//!   and over relational databases; this is both the semantics of record and
//!   the ground truth every indexed structure is property-tested against.
//! * [`distance_type`] — the `r`-distance types `τ ∈ T_k` of Section 5.1.2,
//!   their connected components, and the `ρ_τ` characteristic formulas.
//! * [`locality`] — a syntactic guardedness analysis giving a sound locality
//!   radius for evaluating unary formulas inside neighborhoods (our concrete
//!   substitute for the Unary Theorem 5.3; see DESIGN.md §2).
//! * [`relational`] — the query rewriting of Lemma 2.2 (`φ` over `D` to `ψ`
//!   over the colored graph `A'(D)`).
//! * [`grammar`] — a seeded random-query generator over the distance-type
//!   fragment (and deliberately beyond it), for the `nd-conform`
//!   differential harness.
//! * [`shrink`] — greedy structural query shrinking, turning a failing
//!   conformance case into a locally minimal counterexample.

pub mod ast;
pub mod codec;
pub mod distance_type;
pub mod eval;
pub mod grammar;
pub mod locality;
pub mod parser;
pub mod relational;
pub mod shrink;
pub mod transform;

pub use ast::{ColorRef, Formula, Query, VarId};
pub use distance_type::DistanceType;
pub use eval::{eval, materialize, EvalCtx};
pub use grammar::{random_query, GrammarOpts};
pub use parser::{parse_formula, parse_query, ParseError};
pub use shrink::shrink_query;
