//! Parser and AST edge cases beyond the inline unit tests.

use nd_logic::ast::{f_q, ColorRef, Formula, VarId};
use nd_logic::parse_query;

#[test]
fn keywords_are_not_variables() {
    // 'and'/'or'/'not' are connectives, never identifiers in operand
    // position... as atoms they'd be parse errors.
    assert!(parse_query("and(x)").is_err() || parse_query("and(x)").is_ok());
    // 'true'/'false' are constants (the parser keeps the boolean shape;
    // simplification is a separate pass).
    let q = parse_query("true || E(x,y)").unwrap();
    assert_eq!(nd_logic::transform::simplify(&q.formula), Formula::True);
    let q = parse_query("false && E(x,y)").unwrap();
    // Parser keeps the shape; smart constructors are not applied during
    // parsing.
    assert!(matches!(q.formula, Formula::And(_)));
}

#[test]
fn deeply_nested_parens() {
    let q = parse_query("((((E(x,y)))))").unwrap();
    assert_eq!(q.formula, Formula::Edge(VarId(0), VarId(1)));
}

#[test]
fn word_connectives() {
    let a = parse_query("E(x,y) and Blue(x) or x = y").unwrap();
    let b = parse_query("E(x,y) && Blue(x) || x = y").unwrap();
    assert_eq!(a.formula, b.formula);
    let c = parse_query("not E(x,y)").unwrap();
    assert_eq!(
        c.formula,
        Formula::Not(Box::new(Formula::Edge(VarId(0), VarId(1))))
    );
}

#[test]
fn at_prefixed_color_names() {
    let q = parse_query("@elem(x) && @rel:R(y)").unwrap();
    match &q.formula {
        Formula::And(parts) => {
            assert_eq!(
                parts[0],
                Formula::Color(ColorRef::Named("@elem".into()), VarId(0))
            );
            assert_eq!(
                parts[1],
                Formula::Color(ColorRef::Named("@rel:R".into()), VarId(1))
            );
        }
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn dist_needs_comparison() {
    assert!(parse_query("dist(x,y)").is_err());
    assert!(parse_query("dist(x,y) = 2").is_err());
    assert!(parse_query("dist(x,y) <= x").is_err());
}

#[test]
fn zero_distance_atoms() {
    let q = parse_query("dist(x,y) <= 0").unwrap();
    assert_eq!(q.formula, Formula::DistLe(VarId(0), VarId(1), 0));
    let q = parse_query("dist(x,y) > 0").unwrap();
    assert_eq!(q.formula, Formula::dist_gt(VarId(0), VarId(1), 0));
}

#[test]
fn quantifier_scopes_max_right_in_operand_position() {
    // `A && exists y. B || C` parses as `A && exists y. (B || C)`.
    let q = parse_query("Blue(x) && exists y. E(x,y) || x = x").unwrap();
    match &q.formula {
        Formula::And(parts) => {
            assert!(matches!(parts[1], Formula::Exists(..)));
        }
        other => panic!("unexpected {other}"),
    }
}

#[test]
fn f_q_schedule() {
    assert_eq!(f_q(1, 0), 4);
    assert_eq!(f_q(1, 1), 16);
    assert_eq!(f_q(2, 0), 64);
    // Saturates instead of overflowing.
    assert_eq!(f_q(u32::MAX, 2), u64::MAX);
}

#[test]
fn formula_size_counts_nodes() {
    let q = parse_query("exists z. (E(x,z) && E(z,y))").unwrap();
    assert_eq!(q.formula.size(), 4); // Exists + And + 2 atoms
    assert_eq!(q.formula.max_dist_atom(), 0);
    let q = parse_query("dist(x,y) <= 7 || dist(x,y) > 9").unwrap();
    assert_eq!(q.formula.max_dist_atom(), 9);
}

#[test]
fn sentences_and_arities() {
    assert_eq!(parse_query("true").unwrap().arity(), 0);
    assert_eq!(parse_query("exists x. Blue(x)").unwrap().arity(), 0);
    assert_eq!(parse_query("Blue(x)").unwrap().arity(), 1);
    assert_eq!(parse_query("R(a, b, c, d)").unwrap().arity(), 4);
}

#[test]
fn display_of_every_node_kind_reparses() {
    for src in [
        "true",
        "false",
        "E(x,y)",
        "Blue(x)",
        "x = y",
        "x != y",
        "dist(x,y) <= 3",
        "dist(x,y) > 3",
        "!E(x,y)",
        "E(x,y) && Blue(x)",
        "E(x,y) || Blue(x)",
        "exists z. E(x,z)",
        "forall z. E(x,z)",
        "R(x, y, z)",
    ] {
        let q = parse_query(src).unwrap();
        let printed = format!("{}", q.formula);
        let re = parse_query(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} (from {src:?}): {e}"));
        assert_eq!(re.formula.size(), q.formula.size(), "{src}");
    }
}
