//! Model-based property tests: the Theorem 3.1 trie against a `BTreeMap`
//! reference model, for every operation the theorem promises (insert,
//! remove, lookup-or-successor), under interleaved workloads, several
//! arities, and several `ε` regimes.

use proptest::prelude::*;
use std::collections::BTreeMap;

use nd_store::{FnStore, Lookup, StoreParams};

#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<u64>, u64),
    Remove(Vec<u64>),
    Lookup(Vec<u64>),
    Pred(Vec<u64>),
    SuccStrict(Vec<u64>),
}

fn key_strategy(n: u64, k: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..n, k)
}

fn op_strategy(n: u64, k: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (key_strategy(n, k), any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => key_strategy(n, k).prop_map(Op::Remove),
        2 => key_strategy(n, k).prop_map(Op::Lookup),
        1 => key_strategy(n, k).prop_map(Op::Pred),
        1 => key_strategy(n, k).prop_map(Op::SuccStrict),
    ]
}

fn run_model(n: u64, k: usize, eps: f64, ops: Vec<Op>) {
    let params = StoreParams::new(n, k, eps);
    let mut store = FnStore::new(params);
    let mut model: BTreeMap<Vec<u64>, u64> = BTreeMap::new();

    for op in ops {
        match op {
            Op::Insert(key, val) => {
                let expected = model.insert(key.clone(), val);
                assert_eq!(store.insert(&key, val), expected, "insert {key:?}");
            }
            Op::Remove(key) => {
                let expected = model.remove(&key);
                assert_eq!(store.remove(&key), expected, "remove {key:?}");
            }
            Op::Lookup(key) => {
                let got = store.lookup(&key);
                match model.get(&key) {
                    Some(&v) => assert_eq!(got, Lookup::Found(v), "hit {key:?}"),
                    None => {
                        let succ = model.range(key.clone()..).next().map(|(k2, _)| k2.clone());
                        assert_eq!(got, Lookup::Missing(succ), "miss {key:?}");
                    }
                }
            }
            Op::Pred(key) => {
                let expected = model
                    .range(..key.clone())
                    .next_back()
                    .map(|(k2, _)| k2.clone());
                assert_eq!(store.predecessor_strict(&key), expected, "pred {key:?}");
            }
            Op::SuccStrict(key) => {
                let expected = model
                    .range(key.clone()..)
                    .find(|(k2, _)| **k2 != key)
                    .map(|(k2, _)| k2.clone());
                assert_eq!(store.successor_strict(&key), expected, "succ> {key:?}");
            }
        }
        assert_eq!(store.len(), model.len());
    }
    store.check_invariants();
    let got: Vec<(Vec<u64>, u64)> = store.iter();
    let expected: Vec<(Vec<u64>, u64)> = model.into_iter().collect();
    assert_eq!(got, expected, "final contents");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unary_small_domain(ops in prop::collection::vec(op_strategy(17, 1), 0..120)) {
        run_model(17, 1, 0.5, ops);
    }

    #[test]
    fn unary_medium_domain(ops in prop::collection::vec(op_strategy(1000, 1), 0..80)) {
        run_model(1000, 1, 0.3, ops);
    }

    #[test]
    fn binary_keys(ops in prop::collection::vec(op_strategy(40, 2), 0..80)) {
        run_model(40, 2, 0.4, ops);
    }

    #[test]
    fn ternary_keys(ops in prop::collection::vec(op_strategy(12, 3), 0..60)) {
        run_model(12, 3, 0.5, ops);
    }

    #[test]
    fn tiny_epsilon_deep_trie(ops in prop::collection::vec(op_strategy(256, 1), 0..60)) {
        // d clamps to 2: the deepest (binary) trie shape.
        run_model(256, 1, 0.01, ops);
    }

    #[test]
    fn huge_epsilon_flat_trie(ops in prop::collection::vec(op_strategy(256, 2), 0..60)) {
        // d = n: a single-level table per component.
        run_model(256, 2, 1.0, ops);
    }
}

#[test]
fn space_stays_proportional_to_domain() {
    // Theorem 3.1: space O(|Dom| · n^ε) *at any point in time* — inserting
    // and removing many keys must not leave garbage behind.
    let params = StoreParams::new(1 << 16, 1, 0.25);
    let mut s = FnStore::new(params);
    let base = s.registers();
    for round in 0..10u64 {
        for i in 0..512u64 {
            s.insert(&[(i * 97 + round * 13) % (1 << 16)], i);
        }
        let full = s.registers();
        assert!(full > base);
        let mut keys: Vec<Vec<u64>> = s.iter().into_iter().map(|(k, _)| k).collect();
        keys.reverse();
        for k in keys {
            s.remove(&k);
        }
        assert_eq!(
            s.registers(),
            base,
            "round {round}: arena did not shrink back"
        );
        assert!(s.is_empty());
    }
}

#[test]
fn sequential_scan_via_successors() {
    // Enumerating the domain by repeated successor_strict must visit every
    // key exactly once, in order — this is the primitive behind
    // constant-delay enumeration.
    let params = StoreParams::new(10_000, 1, 0.4);
    let keys: Vec<u64> = (0..10_000u64).filter(|k| k % 7 == 3).collect();
    let mut s = FnStore::new(params);
    for &k in &keys {
        s.insert(&[k], k);
    }
    let mut got = Vec::new();
    let mut cur = s.successor_inclusive(&[0]);
    while let Some(k) = cur {
        got.push(k[0]);
        cur = s.successor_strict(&k);
    }
    assert_eq!(got, keys);
}
