//! Edge-case suite for the Storing Theorem structure: boundary keys,
//! degenerate shapes, the register dump, and interleavings the model-based
//! suite is unlikely to hit by chance.

use nd_store::{FnStore, KeySet, Lookup, StoreParams};

#[test]
fn empty_store_lookups() {
    let s = FnStore::new(StoreParams::new(100, 2, 0.5));
    assert_eq!(s.lookup(&[0, 0]), Lookup::Missing(None));
    assert_eq!(s.lookup(&[99, 99]), Lookup::Missing(None));
    assert_eq!(s.successor_inclusive(&[50, 50]), None);
    assert_eq!(s.predecessor_strict(&[99, 99]), None);
    assert_eq!(s.len(), 0);
    s.check_invariants();
}

#[test]
fn boundary_keys() {
    let p = StoreParams::new(1000, 1, 0.3);
    let mut s = FnStore::new(p);
    s.insert(&[0], 10);
    s.insert(&[999], 20);
    assert_eq!(s.lookup(&[0]), Lookup::Found(10));
    assert_eq!(s.lookup(&[999]), Lookup::Found(20));
    assert_eq!(s.lookup(&[1]), Lookup::Missing(Some(vec![999])));
    assert_eq!(s.predecessor_strict(&[999]), Some(vec![0]));
    assert_eq!(s.successor_strict(&[999]), None);
    assert_eq!(s.successor_strict(&[0]), Some(vec![999]));
    // Remove the extremes in both orders.
    s.remove(&[0]);
    assert_eq!(s.lookup(&[0]), Lookup::Missing(Some(vec![999])));
    s.remove(&[999]);
    assert!(s.is_empty());
    s.check_invariants();
}

#[test]
fn single_key_domain() {
    // n = 1: the only key is the all-zero tuple.
    let p = StoreParams::new(1, 3, 0.5);
    let mut s = FnStore::new(p);
    assert_eq!(s.insert(&[0, 0, 0], 7), None);
    assert_eq!(s.lookup(&[0, 0, 0]), Lookup::Found(7));
    assert_eq!(s.successor_strict(&[0, 0, 0]), None);
    assert_eq!(s.remove(&[0, 0, 0]), Some(7));
    s.check_invariants();
}

#[test]
fn remove_absent_is_noop() {
    let mut s = FnStore::new(StoreParams::new(64, 1, 0.4));
    s.insert(&[10], 1);
    assert_eq!(s.remove(&[11]), None);
    assert_eq!(s.remove(&[9]), None);
    assert_eq!(s.len(), 1);
    s.check_invariants();
}

#[test]
fn reinsert_after_remove_same_region() {
    let mut s = FnStore::new(StoreParams::new(256, 1, 0.25));
    for round in 0..5 {
        s.insert(&[100], round);
        s.insert(&[101], round);
        assert_eq!(s.remove(&[100]), Some(round));
        assert_eq!(s.lookup(&[100]), Lookup::Missing(Some(vec![101])));
        assert_eq!(s.remove(&[101]), Some(round));
        s.check_invariants();
    }
}

#[test]
fn registers_dump_mentions_every_node() {
    let p = StoreParams::new(27, 1, 1.0 / 3.0);
    let mut s = FnStore::new(p);
    for k in [2u64, 4, 5, 19, 24, 25] {
        s.insert(&[k], k);
    }
    let dump = s.registers_dump();
    // R0 plus (d+1) lines per node.
    assert_eq!((dump.len() - 1) % (p.d as usize + 1), 0);
    assert!(dump[0].starts_with("R0:"));
    // The root's parent register is the Null back-pointer.
    assert!(dump.iter().any(|l| l.contains("(-1, Null)")));
    // Successor caches appear with decoded tuples.
    assert!(dump.iter().any(|l| l.contains("(0, [19])")));
}

#[test]
fn with_degree_params() {
    let p = StoreParams::with_degree(27, 1, 3);
    assert_eq!(p.d, 3);
    assert_eq!(p.h, 3);
    let p = StoreParams::with_degree(8, 2, 2);
    assert_eq!(p.h, 3);
    assert_eq!(p.total_digits(), 6);
}

#[test]
fn keyset_from_keys_dedups() {
    let keys: Vec<Vec<u64>> = vec![vec![3, 3], vec![1, 2], vec![3, 3]];
    let s = KeySet::from_keys(
        StoreParams::new(10, 2, 0.5),
        keys.iter().map(|k| k.as_slice()),
    );
    assert_eq!(s.len(), 2);
    assert_eq!(s.iter_keys(), vec![vec![1, 2], vec![3, 3]]);
}

#[test]
fn interleaved_neighbors_consistency() {
    // After every operation, successor/predecessor form a consistent
    // doubly-linked order.
    let mut s = FnStore::new(StoreParams::new(128, 1, 0.3));
    let ops: Vec<(bool, u64)> = vec![
        (true, 64),
        (true, 32),
        (true, 96),
        (false, 64),
        (true, 1),
        (true, 127),
        (false, 32),
        (true, 64),
        (false, 96),
    ];
    for (insert, key) in ops {
        if insert {
            s.insert(&[key], key);
        } else {
            s.remove(&[key]);
        }
        let keys: Vec<u64> = s.iter().into_iter().map(|(k, _)| k[0]).collect();
        for w in keys.windows(2) {
            assert_eq!(s.successor_strict(&[w[0]]), Some(vec![w[1]]));
            assert_eq!(s.predecessor_strict(&[w[1]]), Some(vec![w[0]]));
        }
        s.check_invariants();
    }
}

#[test]
#[should_panic(expected = "key arity mismatch")]
fn arity_mismatch_panics() {
    let mut s = FnStore::new(StoreParams::new(10, 2, 0.5));
    s.insert(&[1], 1);
}

#[test]
fn oversized_keys_rejected() {
    use nd_store::StoreError;
    assert!(matches!(
        StoreParams::try_new(u64::MAX, 4, 0.5),
        Err(StoreError::KeyTooWide { k: 4, .. })
    ));
    assert!(matches!(
        StoreParams::try_new(10, 0, 0.5),
        Err(StoreError::ZeroArity)
    ));
    assert!(matches!(
        StoreParams::try_new(10, 2, f64::NAN),
        Err(StoreError::BadEpsilon(_))
    ));
}

#[test]
#[should_panic(expected = "invalid store parameters")]
fn oversized_keys_panic_via_convenience() {
    StoreParams::new(u64::MAX, 4, 0.5);
}
