//! Trie shape parameters: `d = ⌈n^ε⌉`, `h = ⌈1/ε⌉` (adjusted so that
//! `d^h ≥ n`), as fixed at the start of Section 3.1 of the paper.

/// Shape of a Storing-Theorem trie for keys in `[n]^k`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreParams {
    /// Key components range over `[0, n)`.
    pub n: u64,
    /// Key arity.
    pub k: usize,
    /// Branching degree `d = max(2, ⌈n^ε⌉)`.
    pub d: u32,
    /// Digits per key component; minimal with `d^h ≥ n`.
    pub h: u32,
}

impl StoreParams {
    /// Parameters for keys in `[n]^k` at accuracy `ε`.
    ///
    /// `d` is clamped to at least 2 so that small `n` still yields a
    /// branching trie, and `h` is the minimal digit count with `d^h ≥ n`
    /// (the paper's `⌈1/ε⌉` satisfies this for `d = ⌈n^ε⌉`; recomputing the
    /// minimum keeps the tree shallow when `ε` is very small).
    /// Panicking convenience; use [`StoreParams::try_new`] for untrusted
    /// parameters.
    pub fn new(n: u64, k: usize, epsilon: f64) -> Self {
        Self::try_new(n, k, epsilon).expect("invalid store parameters")
    }

    /// Fallible twin of [`StoreParams::new`]: rejects zero arity,
    /// non-positive or non-finite `ε`, and key spaces too wide to pack into
    /// 128 bits.
    pub fn try_new(n: u64, k: usize, epsilon: f64) -> Result<Self, crate::StoreError> {
        if k < 1 {
            return Err(crate::StoreError::ZeroArity);
        }
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(crate::StoreError::BadEpsilon(epsilon));
        }
        if (k as u32) * (64 - n.max(1).leading_zeros().min(63)) > 120 {
            return Err(crate::StoreError::KeyTooWide { n, k });
        }
        let n_eff = n.max(1);
        let d = ((n_eff as f64).powf(epsilon).ceil() as u64).clamp(2, u32::MAX as u64) as u32;
        let mut h = 1u32;
        let mut pow = d as u128;
        while pow < n_eff as u128 {
            pow *= d as u128;
            h += 1;
        }
        Ok(StoreParams { n, k, d, h })
    }

    /// Check that `key` has arity `k` with every component in `[0, n)` —
    /// the precondition of the (debug-asserting) hot-path methods.
    pub fn validate_key(&self, key: &[u64]) -> Result<(), crate::StoreError> {
        if key.len() != self.k {
            return Err(crate::StoreError::WrongArity {
                expected: self.k,
                got: key.len(),
            });
        }
        if let Some(&component) = key.iter().find(|&&a| a >= self.n.max(1)) {
            return Err(crate::StoreError::KeyComponentOutOfRange {
                component,
                n: self.n,
            });
        }
        Ok(())
    }

    /// Parameters with an explicit degree (used by tests reproducing the
    /// paper's Figure 1 example exactly).
    pub fn with_degree(n: u64, k: usize, d: u32) -> Self {
        assert!(d >= 2);
        let mut h = 1u32;
        let mut pow = d as u128;
        while pow < n.max(1) as u128 {
            pow *= d as u128;
            h += 1;
        }
        StoreParams { n, k, d, h }
    }

    /// Total digits per key: `k·h`.
    #[inline]
    pub fn total_digits(&self) -> usize {
        self.k * self.h as usize
    }

    /// Decompose a key into its `k·h` digits, most significant first within
    /// each component (Algorithm 1, *Decomposition*).
    pub fn digits(&self, key: &[u64], out: &mut Vec<u32>) {
        debug_assert_eq!(key.len(), self.k);
        out.clear();
        for &a in key {
            debug_assert!(
                a < self.n.max(1),
                "key component {a} out of range [0,{})",
                self.n
            );
            let start = out.len();
            let mut a = a;
            for _ in 0..self.h {
                out.push((a % self.d as u64) as u32);
                a /= self.d as u64;
            }
            out[start..].reverse();
        }
    }

    /// Recompose digits into a key (inverse of [`Self::digits`]).
    pub fn key_from_digits(&self, digits: &[u32]) -> Vec<u64> {
        debug_assert_eq!(digits.len(), self.total_digits());
        let mut key = Vec::with_capacity(self.k);
        for comp in digits.chunks(self.h as usize) {
            let mut a = 0u64;
            for &dig in comp {
                a = a * self.d as u64 + dig as u64;
            }
            key.push(a);
        }
        key
    }

    /// Lexicographic increment of a key within `[n]^k`; `None` on overflow.
    pub fn increment(&self, key: &[u64]) -> Option<Vec<u64>> {
        let mut out = key.to_vec();
        for i in (0..self.k).rev() {
            if out[i] + 1 < self.n {
                out[i] += 1;
                return Some(out);
            }
            out[i] = 0;
        }
        None
    }

    /// Pack a key into a single `u128` as a base-`n` number. Packing is
    /// monotone w.r.t. the lexicographic order, so packed keys compare like
    /// tuples. Requires `n^k ≤ 2^128` (checked in [`Self::new`] via
    /// `k · ⌈log₂ n⌉ ≤ 120`).
    #[inline]
    pub fn pack(&self, key: &[u64]) -> u128 {
        debug_assert_eq!(key.len(), self.k);
        let n = self.n.max(1) as u128;
        let mut out = 0u128;
        for &a in key {
            debug_assert!((a as u128) < n);
            out = out * n + a as u128;
        }
        out
    }

    /// Inverse of [`Self::pack`].
    #[inline]
    pub fn unpack_into(&self, mut packed: u128, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.k);
        let n = self.n.max(1) as u128;
        for i in (0..self.k).rev() {
            out[i] = (packed % n) as u64;
            packed /= n;
        }
        debug_assert_eq!(packed, 0);
    }

    /// Inverse of [`Self::pack`], allocating.
    pub fn unpack(&self, packed: u128) -> Vec<u64> {
        let mut out = vec![0u64; self.k];
        self.unpack_into(packed, &mut out);
        out
    }

    /// Decompose a packed key into its `k·h` digits (stack-friendly; `buf`
    /// must have length ≥ [`Self::total_digits`]). Returns the digit count.
    #[inline]
    pub fn digits_packed(&self, packed: u128, buf: &mut [u32]) -> usize {
        let kh = self.total_digits();
        debug_assert!(buf.len() >= kh);
        let n = self.n.max(1) as u128;
        let d = self.d as u64;
        let mut rest = packed;
        for comp in (0..self.k).rev() {
            let mut a = (rest % n) as u64;
            rest /= n;
            let base = comp * self.h as usize;
            for j in (0..self.h as usize).rev() {
                buf[base + j] = (a % d) as u32;
                a /= d;
            }
        }
        kh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_parameters() {
        // Paper Figure 1: n = 27, ε = 1/3 ⇒ d = 3, h = 3.
        let p = StoreParams::new(27, 1, 1.0 / 3.0);
        assert_eq!(p.d, 3);
        assert_eq!(p.h, 3);
        let mut d = Vec::new();
        p.digits(&[2], &mut d);
        assert_eq!(d, vec![0, 0, 2]);
        p.digits(&[5], &mut d);
        assert_eq!(d, vec![0, 1, 2]);
        p.digits(&[19], &mut d);
        assert_eq!(d, vec![2, 0, 1]);
        assert_eq!(p.key_from_digits(&[2, 2, 0]), vec![24]);
    }

    #[test]
    fn digits_roundtrip() {
        let p = StoreParams::new(1000, 3, 0.4);
        let key = vec![0, 999, 512];
        let mut d = Vec::new();
        p.digits(&key, &mut d);
        assert_eq!(d.len(), p.total_digits());
        assert_eq!(p.key_from_digits(&d), key);
    }

    #[test]
    fn small_n_is_safe() {
        for n in 0..5u64 {
            let p = StoreParams::new(n, 2, 0.5);
            assert!(p.d >= 2);
            assert!((p.d as u128).pow(p.h) >= n.max(1) as u128);
        }
    }

    #[test]
    fn increment_carries() {
        let p = StoreParams::new(3, 2, 0.5);
        assert_eq!(p.increment(&[0, 0]), Some(vec![0, 1]));
        assert_eq!(p.increment(&[0, 2]), Some(vec![1, 0]));
        assert_eq!(p.increment(&[2, 2]), None);
    }

    #[test]
    fn digit_order_is_lexicographic() {
        // The digit string order must agree with the numeric lexicographic
        // order on keys — this is what makes successor caching correct.
        let p = StoreParams::new(50, 2, 0.3);
        let keys = [[0u64, 49], [1, 0], [7, 7], [7, 8], [49, 0]];
        let mut digs: Vec<Vec<u32>> = Vec::new();
        for k in &keys {
            let mut d = Vec::new();
            p.digits(k, &mut d);
            digs.push(d);
        }
        for w in digs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
