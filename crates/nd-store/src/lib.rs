//! The **Storing Theorem** data structure (Theorem 3.1 of the paper, proofs
//! in its Section 7 appendix).
//!
//! Stores a partial `k`-ary function `f : [n]^k ⇀ u64` such that, for a fixed
//! `ε > 0`:
//!
//! * initialization costs `O(|Dom(f)| · n^ε)`,
//! * inserting or removing a single pair costs `O(n^ε)`,
//! * **lookup is constant time**, and on a miss returns the smallest key of
//!   the domain that is strictly larger than the probe (lexicographically) —
//!   the "lookup-or-successor" semantics that drives the skip pointers and
//!   the answering phase of Section 5,
//! * space is `O(|Dom(f)| · n^ε)` at all times.
//!
//! The structure is the paper's trie `T(f)`: keys are decomposed in base
//! `d = ⌈n^ε⌉` into strings of length `k·h` with `h = ⌈1/ε⌉`, every inner
//! node has exactly `d` slots, and every slot that does *not* lead to a key
//! caches the successor key of its prefix region (the `(0, b̄)` registers of
//! Figure 1). Removals shrink the arena via the paper's copy-the-last-array
//! trick (here: `swap_remove` with pointer fix-up), keeping space
//! proportional to the live domain.
//!
//! One documented deviation: the paper obtains predecessor keys (needed
//! during updates) from a mirrored dual trie; we instead run an
//! `O(d·k·h) = O(n^ε)` backtracking walk, which stays within the update
//! budget and avoids doubling the space.

mod error;
mod params;
mod trie;

pub use error::StoreError;
pub use params::StoreParams;
pub use trie::{FnStore, Lookup, LookupPacked};

/// A set of `k`-tuples over `[n]^k` with successor queries — the Storing
/// Theorem structure with unit values.
pub struct KeySet {
    inner: FnStore,
}

impl KeySet {
    /// An empty set of `k`-tuples over `[n]^k`.
    pub fn new(params: StoreParams) -> Self {
        KeySet {
            inner: FnStore::new(params),
        }
    }

    /// Build from an iterator of keys.
    pub fn from_keys<'a>(params: StoreParams, keys: impl IntoIterator<Item = &'a [u64]>) -> Self {
        let mut s = Self::new(params);
        for k in keys {
            s.insert(k);
        }
        s
    }

    pub fn params(&self) -> &StoreParams {
        self.inner.params()
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Insert a key; returns `true` if it was new.
    pub fn insert(&mut self, key: &[u64]) -> bool {
        self.inner.insert(key, 0).is_none()
    }

    /// Remove a key; returns `true` if it was present.
    pub fn remove(&mut self, key: &[u64]) -> bool {
        self.inner.remove(key).is_some()
    }

    /// Membership test. `O(k·h)` — constant for fixed `k`, `ε`.
    pub fn contains(&self, key: &[u64]) -> bool {
        matches!(self.inner.lookup(key), Lookup::Found(_))
    }

    /// Smallest member `≥ key`, or `None`. Constant time.
    pub fn successor_inclusive(&self, key: &[u64]) -> Option<Vec<u64>> {
        self.inner.successor_inclusive(key)
    }

    /// Allocation-free variant of [`Self::successor_inclusive`] over packed
    /// keys (see [`StoreParams::pack`]).
    pub fn successor_inclusive_packed(&self, packed: u128) -> Option<u128> {
        self.inner.successor_inclusive_packed(packed)
    }

    /// Smallest member `> key`, or `None`. Constant time.
    pub fn successor_strict(&self, key: &[u64]) -> Option<Vec<u64>> {
        self.inner.successor_strict(key)
    }

    /// Largest member `< key`, or `None`. `O(n^ε)`.
    pub fn predecessor_strict(&self, key: &[u64]) -> Option<Vec<u64>> {
        self.inner.predecessor_strict(key)
    }

    /// All members in increasing order.
    pub fn iter_keys(&self) -> Vec<Vec<u64>> {
        self.inner.iter().into_iter().map(|(k, _)| k).collect()
    }

    /// Register count of the underlying trie (space measurement, E1).
    pub fn registers(&self) -> usize {
        self.inner.registers()
    }

    /// Append the set's binary encoding to `w` (DESIGN.md §9).
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        self.inner.write_into(w);
    }

    /// Decode a set, re-validating the underlying trie's invariants.
    pub fn read_from(r: &mut nd_persist::Reader<'_>) -> Result<KeySet, nd_persist::PersistError> {
        Ok(KeySet {
            inner: FnStore::read_from(r)?,
        })
    }
}

#[cfg(test)]
mod keyset_tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let mut s = KeySet::new(StoreParams::new(100, 2, 0.5));
        assert!(s.insert(&[3, 7]));
        assert!(!s.insert(&[3, 7]));
        assert!(s.insert(&[3, 9]));
        assert!(s.contains(&[3, 7]));
        assert!(!s.contains(&[3, 8]));
        assert_eq!(s.successor_inclusive(&[3, 8]), Some(vec![3, 9]));
        assert_eq!(s.successor_strict(&[3, 9]), None);
        assert_eq!(s.predecessor_strict(&[3, 9]), Some(vec![3, 7]));
        assert!(s.remove(&[3, 7]));
        assert!(!s.remove(&[3, 7]));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter_keys(), vec![vec![3, 9]]);
    }

    #[test]
    fn codec_roundtrip_preserves_membership() {
        let mut s = KeySet::new(StoreParams::new(64, 2, 0.4));
        for key in [[3u64, 7], [3, 9], [60, 0]] {
            s.insert(&key);
        }
        let mut w = nd_persist::Writer::new();
        s.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = nd_persist::Reader::new(&bytes);
        let back = KeySet::read_from(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), 3);
        assert!(back.contains(&[3, 7]));
        assert!(!back.contains(&[3, 8]));
        assert_eq!(back.successor_inclusive(&[3, 8]), Some(vec![3, 9]));
        assert_eq!(back.iter_keys(), s.iter_keys());
    }
}
