//! Typed errors for Storing-Theorem structures.

use std::fmt;

/// Errors raised when constructing trie parameters or validating keys.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreError {
    /// Key arity `k` must be at least 1.
    ZeroArity,
    /// `ε` must be a finite positive real.
    BadEpsilon(f64),
    /// Keys in `[n]^k` must pack into 128 bits (`k · ⌈log₂ n⌉ ≤ 120`).
    KeyTooWide { n: u64, k: usize },
    /// A key component is outside `[0, n)`.
    KeyComponentOutOfRange { component: u64, n: u64 },
    /// A key has the wrong number of components.
    WrongArity { expected: usize, got: usize },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ZeroArity => write!(f, "key arity must be positive"),
            StoreError::BadEpsilon(e) => {
                write!(f, "epsilon must be a finite positive real, got {e}")
            }
            StoreError::KeyTooWide { n, k } => write!(
                f,
                "keys in [{n}]^{k} do not pack into 128 bits (k·log2(n) too large)"
            ),
            StoreError::KeyComponentOutOfRange { component, n } => {
                write!(f, "key component {component} out of range [0,{n})")
            }
            StoreError::WrongArity { expected, got } => {
                write!(f, "key has {got} components, expected {expected}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
