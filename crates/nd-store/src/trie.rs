//! The trie `T(f)` of the Storing Theorem with successor-caching leaf slots.
//!
//! Every inner node owns exactly `d` slots (the paper's `d+1` consecutive
//! registers, with the parent back-pointer stored out-of-band in the node
//! header). A slot is one of
//!
//! * `Child(c)` — the paper's `(1, R')` register pointing to a child node,
//! * `Val(v)` — the paper's `(1, f(ā))` register at leaf depth,
//! * `Next(b̄)` — the paper's `(0, b̄)` register: the prefix region below
//!   this slot contains no key, and `b̄` is the smallest domain key whose
//!   encoding has a prefix larger than this slot's (or `None`).
//!
//! The `Next` caches are what make `lookup` constant time *including* the
//! successor-on-miss answer; they are maintained by the `clean` procedure
//! (the paper's `Clean`/`Fill`/`Fill_Left`/`Fill_Right`, Algorithms 6–9)
//! after every insertion and removal. Removals deallocate empty nodes
//! bottom-up (`Cut`, Algorithm 12) using swap-removal with pointer fix-up —
//! the Rust rendition of the paper's "move the last array into the hole"
//! trick that keeps space `O(|Dom(f)| · n^ε)`.
//!
//! Keys are packed into a single `u128` (a base-`n` numeral, monotone in
//! the lexicographic order — see [`StoreParams::pack`]) so every register
//! is `Copy` and the whole structure is allocation-free on the hot paths;
//! this matches the paper's RAM model, where a tuple fits in O(1) machine
//! words.

use crate::params::StoreParams;

type NodeId = u32;
const ROOT: NodeId = 0;
const NO_PARENT: NodeId = u32::MAX;

/// Digit scratch: `k·h ≤ 128·4` is astronomically more than any practical
/// shape; 160 covers `k = 4, h = 40`.
const MAX_DIGITS: usize = 160;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Slot {
    /// No key below this slot; cached successor of the slot's prefix region
    /// (packed).
    Next(Option<u128>),
    /// Inner edge to a child node (depth `< k·h - 1` only).
    Child(NodeId),
    /// Key present (depth `k·h - 1` only); stored value.
    Val(u64),
}

impl Slot {
    #[inline]
    fn is_occupied(&self) -> bool {
        !matches!(self, Slot::Next(_))
    }
}

#[derive(Clone, Debug)]
struct Node {
    slots: Box<[Slot]>,
    parent: NodeId,
    parent_slot: u32,
}

impl Node {
    fn new(d: u32, parent: NodeId, parent_slot: u32) -> Self {
        Node {
            slots: vec![Slot::Next(None); d as usize].into_boxed_slice(),
            parent,
            parent_slot,
        }
    }
}

/// Result of a lookup: either the stored value, or — constant-time, thanks
/// to the `Next` caches — the smallest domain key strictly greater than the
/// probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Key is in the domain; its value.
    Found(u64),
    /// Key absent; the smallest domain key `> probe`, if any.
    Missing(Option<Vec<u64>>),
}

/// Allocation-free lookup result over packed keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupPacked {
    Found(u64),
    Missing(Option<u128>),
}

/// A partial `k`-ary function `f : [n]^k ⇀ u64` stored as the Theorem 3.1
/// trie. See the crate docs for the complexity contract.
pub struct FnStore {
    params: StoreParams,
    nodes: Vec<Node>,
    len: usize,
}

impl FnStore {
    /// An empty function (Algorithm 3, *Init*).
    pub fn new(params: StoreParams) -> Self {
        FnStore {
            nodes: vec![Node::new(params.d, NO_PARENT, 0)],
            params,
            len: 0,
        }
    }

    /// Build from `(key, value)` pairs.
    pub fn from_pairs<'a>(
        params: StoreParams,
        pairs: impl IntoIterator<Item = (&'a [u64], u64)>,
    ) -> Self {
        let mut s = Self::new(params);
        for (k, v) in pairs {
            s.insert(k, v);
        }
        s
    }

    pub fn params(&self) -> &StoreParams {
        &self.params
    }

    /// `|Dom(f)|`.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of registers used (space accounting of Theorem 3.1: `d+1` per
    /// node).
    pub fn registers(&self) -> usize {
        self.nodes.len() * (self.params.d as usize + 1)
    }

    /// Lookup (Algorithm 2, *Access*) over a packed key. `O(k·h)` —
    /// constant for fixed `k`, `ε` — and allocation-free.
    #[inline]
    pub fn lookup_packed(&self, packed: u128) -> LookupPacked {
        let mut buf = [0u32; MAX_DIGITS];
        let kh = self.params.digits_packed(packed, &mut buf);
        let mut node = ROOT;
        for &dig in &buf[..kh] {
            match self.nodes[node as usize].slots[dig as usize] {
                Slot::Child(c) => node = c,
                Slot::Val(v) => return LookupPacked::Found(v),
                Slot::Next(nk) => return LookupPacked::Missing(nk),
            }
        }
        unreachable!("walk must terminate in a Val or Next slot");
    }

    /// Lookup with tuple in/out (convenience wrapper).
    pub fn lookup(&self, key: &[u64]) -> Lookup {
        match self.lookup_packed(self.params.pack(key)) {
            LookupPacked::Found(v) => Lookup::Found(v),
            LookupPacked::Missing(nk) => Lookup::Missing(nk.map(|p| self.params.unpack(p))),
        }
    }

    /// Smallest domain key `≥ key` (packed). Constant time, allocation-free.
    #[inline]
    pub fn successor_inclusive_packed(&self, packed: u128) -> Option<u128> {
        match self.lookup_packed(packed) {
            LookupPacked::Found(_) => Some(packed),
            LookupPacked::Missing(nk) => nk,
        }
    }

    /// Smallest domain key `≥ key`. Constant time.
    pub fn successor_inclusive(&self, key: &[u64]) -> Option<Vec<u64>> {
        self.successor_inclusive_packed(self.params.pack(key))
            .map(|p| self.params.unpack(p))
    }

    /// Smallest domain key `> key`. Constant time.
    pub fn successor_strict(&self, key: &[u64]) -> Option<Vec<u64>> {
        let next = self.params.increment(key)?;
        self.successor_inclusive(&next)
    }

    /// Largest domain key `< key` (packed). `O(d·k·h) = O(n^ε)`
    /// backtracking walk (the paper uses a mirrored dual trie; see crate
    /// docs).
    pub fn predecessor_strict_packed(&self, packed: u128) -> Option<u128> {
        let mut buf = [0u32; MAX_DIGITS];
        let kh = self.params.digits_packed(packed, &mut buf);
        // Walk as deep as the path exists, recording (node, digit).
        let mut path: [(NodeId, u32); MAX_DIGITS] = [(0, 0); MAX_DIGITS];
        let mut depth = 0usize;
        let mut node = ROOT;
        for &dig in &buf[..kh] {
            path[depth] = (node, dig);
            depth += 1;
            match self.nodes[node as usize].slots[dig as usize] {
                Slot::Child(c) => node = c,
                _ => break,
            }
        }
        // Backtrack: deepest level with an occupied lower slot wins.
        for level in (0..depth).rev() {
            let (nd, dig) = path[level];
            for idx in (0..dig).rev() {
                match self.nodes[nd as usize].slots[idx as usize] {
                    Slot::Val(_) => {
                        let mut digs = buf[..level].to_vec();
                        digs.push(idx);
                        return Some(self.key_of_digits(&digs));
                    }
                    Slot::Child(c) => {
                        let mut digs = buf[..level].to_vec();
                        digs.push(idx);
                        return Some(self.max_key_in(c, digs));
                    }
                    Slot::Next(_) => {}
                }
            }
        }
        None
    }

    /// Largest domain key `< key`. `O(n^ε)`.
    pub fn predecessor_strict(&self, key: &[u64]) -> Option<Vec<u64>> {
        self.predecessor_strict_packed(self.params.pack(key))
            .map(|p| self.params.unpack(p))
    }

    /// Recompose a partial digit string (padded with the largest suffix by
    /// the caller) into a packed key.
    fn key_of_digits(&self, digs: &[u32]) -> u128 {
        debug_assert_eq!(digs.len(), self.params.total_digits());
        let h = self.params.h as usize;
        let n = self.params.n.max(1) as u128;
        let d = self.params.d as u128;
        let mut out = 0u128;
        for comp in digs.chunks(h) {
            let mut a = 0u128;
            for &dig in comp {
                a = a * d + dig as u128;
            }
            out = out * n + a;
        }
        out
    }

    /// Largest key in the subtree rooted at `node`, whose prefix digits are
    /// `prefix`.
    fn max_key_in(&self, mut node: NodeId, mut prefix: Vec<u32>) -> u128 {
        loop {
            let nref = &self.nodes[node as usize];
            let idx = (0..nref.slots.len())
                .rev()
                .find(|&i| nref.slots[i].is_occupied())
                .expect("non-root node must have an occupied slot");
            prefix.push(idx as u32);
            match nref.slots[idx] {
                Slot::Val(_) => return self.key_of_digits(&prefix),
                Slot::Child(c) => node = c,
                Slot::Next(_) => unreachable!(),
            }
        }
    }

    /// Insert / overwrite (Algorithm 4, *Add*). Returns the previous value
    /// if the key was present. `O(d·k·h) = O(n^ε)`.
    pub fn insert(&mut self, key: &[u64], val: u64) -> Option<u64> {
        assert_eq!(key.len(), self.params.k, "key arity mismatch");
        let packed = self.params.pack(key);
        let mut buf = [0u32; MAX_DIGITS];
        let kh = self.params.digits_packed(packed, &mut buf);

        // Fast path: key already present — overwrite in place, no cleaning.
        if let LookupPacked::Found(old) = self.lookup_packed(packed) {
            let mut node = ROOT;
            for &dig in &buf[..kh - 1] {
                match self.nodes[node as usize].slots[dig as usize] {
                    Slot::Child(c) => node = c,
                    _ => unreachable!(),
                }
            }
            self.nodes[node as usize].slots[buf[kh - 1] as usize] = Slot::Val(val);
            return Some(old);
        }

        let pred = self.predecessor_strict_packed(packed);
        let succ = self.successor_inclusive_packed(packed); // key absent ⇒ strict

        // Insert the search path (Algorithm 5, *Insert*): create missing
        // inner nodes top-down; new slots start as placeholders fixed by
        // the Clean calls below.
        let mut node = ROOT;
        for &dig in &buf[..kh - 1] {
            node = match self.nodes[node as usize].slots[dig as usize] {
                Slot::Child(c) => c,
                Slot::Next(_) => {
                    let new_id = self.nodes.len() as NodeId;
                    self.nodes.push(Node::new(self.params.d, node, dig));
                    self.nodes[node as usize].slots[dig as usize] = Slot::Child(new_id);
                    new_id
                }
                Slot::Val(_) => unreachable!("Val above leaf depth"),
            };
        }
        self.nodes[node as usize].slots[buf[kh - 1] as usize] = Slot::Val(val);
        self.len += 1;

        // Clean(ā_<, ā) and Clean(ā, ā_>) — Algorithm 6.
        self.clean(pred, Some(packed));
        self.clean(Some(packed), succ);
        None
    }

    /// Remove (Algorithm 10, *Remove*). Returns the removed value.
    /// `O(d·k·h) = O(n^ε)`.
    pub fn remove(&mut self, key: &[u64]) -> Option<u64> {
        assert_eq!(key.len(), self.params.k, "key arity mismatch");
        let packed = self.params.pack(key);
        let mut buf = [0u32; MAX_DIGITS];
        let kh = self.params.digits_packed(packed, &mut buf);

        // Locate the leaf node (Algorithm 11, *Run*), bailing if absent.
        let mut node = ROOT;
        for &dig in &buf[..kh - 1] {
            match self.nodes[node as usize].slots[dig as usize] {
                Slot::Child(c) => node = c,
                _ => return None,
            }
        }
        let leaf_slot = buf[kh - 1] as usize;
        let old = match self.nodes[node as usize].slots[leaf_slot] {
            Slot::Val(v) => v,
            _ => return None,
        };

        let pred = self.predecessor_strict_packed(packed);
        let succ = {
            // Strict successor: temporarily treat the key as absent is not
            // needed — compute from the increment.
            match self.params.increment(key) {
                Some(next) => self.successor_inclusive_packed(self.params.pack(&next)),
                None => None,
            }
        };

        self.nodes[node as usize].slots[leaf_slot] = Slot::Next(succ);
        self.len -= 1;

        // Cut (Algorithm 12): free now-empty nodes bottom-up, reusing the
        // freed arena slots via swap-removal.
        let mut nd = node;
        while nd != ROOT && !self.nodes[nd as usize].slots.iter().any(Slot::is_occupied) {
            let mut parent = self.nodes[nd as usize].parent;
            let pslot = self.nodes[nd as usize].parent_slot as usize;
            self.nodes[parent as usize].slots[pslot] = Slot::Next(succ);

            let moved_from = (self.nodes.len() - 1) as NodeId;
            self.nodes.swap_remove(nd as usize);
            if nd != moved_from {
                // The node formerly at index `moved_from` now lives at `nd`:
                // repair its parent's child pointer and its children's
                // parent back-pointers.
                let (mp, mps) = {
                    let m = &self.nodes[nd as usize];
                    (m.parent, m.parent_slot as usize)
                };
                debug_assert_ne!(mp, NO_PARENT, "root is never relocated");
                self.nodes[mp as usize].slots[mps] = Slot::Child(nd);
                let child_ids: Vec<NodeId> = self.nodes[nd as usize]
                    .slots
                    .iter()
                    .filter_map(|s| match s {
                        Slot::Child(c) => Some(*c),
                        _ => None,
                    })
                    .collect();
                for c in child_ids {
                    self.nodes[c as usize].parent = nd;
                }
                if parent == moved_from {
                    parent = nd;
                }
            }
            nd = parent;
        }

        self.clean(pred, succ);
        Some(old)
    }

    /// All `(key, value)` pairs in increasing key order (test/debug helper;
    /// linear in the output).
    pub fn iter(&self) -> Vec<(Vec<u64>, u64)> {
        let mut out = Vec::with_capacity(self.len);
        let mut prefix = Vec::new();
        self.dfs(ROOT, &mut prefix, &mut out);
        out
    }

    fn dfs(&self, node: NodeId, prefix: &mut Vec<u32>, out: &mut Vec<(Vec<u64>, u64)>) {
        for (idx, slot) in self.nodes[node as usize].slots.iter().enumerate() {
            match slot {
                Slot::Next(_) => {}
                Slot::Val(v) => {
                    prefix.push(idx as u32);
                    out.push((self.params.unpack(self.key_of_digits(prefix)), *v));
                    prefix.pop();
                }
                Slot::Child(c) => {
                    prefix.push(idx as u32);
                    self.dfs(*c, prefix, out);
                    prefix.pop();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Clean (Algorithms 6–9): repair the successor caches of all leaf
    // slots strictly between the paths of `left` and `right`, pointing
    // them at `right`.
    // ------------------------------------------------------------------

    fn clean(&mut self, left: Option<u128>, right: Option<u128>) {
        let mut lbuf = [0u32; MAX_DIGITS];
        let mut rbuf = [0u32; MAX_DIGITS];
        match (left, right) {
            (None, None) => {
                // Domain is empty: only the root remains (Cut guarantees
                // this); reset every slot.
                debug_assert_eq!(self.len, 0);
                for slot in self.nodes[ROOT as usize].slots.iter_mut() {
                    debug_assert!(!slot.is_occupied());
                    *slot = Slot::Next(None);
                }
            }
            (None, Some(r)) => {
                let kh = self.params.digits_packed(r, &mut rbuf);
                self.fill_left(ROOT, 0, &rbuf[..kh], Some(r));
            }
            (Some(l), None) => {
                let kh = self.params.digits_packed(l, &mut lbuf);
                self.fill_right(ROOT, 0, &lbuf[..kh], None);
            }
            (Some(l), Some(r)) => {
                let kh = self.params.digits_packed(l, &mut lbuf);
                self.params.digits_packed(r, &mut rbuf);
                self.fill_between(&lbuf[..kh], &rbuf[..kh], r);
            }
        }
    }

    #[inline]
    fn set_next(&mut self, node: NodeId, idx: usize, target: Option<u128>) {
        let slot = &mut self.nodes[node as usize].slots[idx];
        debug_assert!(
            !slot.is_occupied(),
            "clean must only touch empty regions (node {node}, slot {idx})"
        );
        *slot = Slot::Next(target);
    }

    fn child_at(&self, node: NodeId, idx: usize) -> NodeId {
        match self.nodes[node as usize].slots[idx] {
            Slot::Child(c) => c,
            other => panic!("expected Child on cleaned path, found {other:?}"),
        }
    }

    /// Algorithm 8, *Fill_Left*: along the path `digs[depth..]` starting at
    /// `node`, set every slot strictly left of the path to `target`.
    fn fill_left(
        &mut self,
        mut node: NodeId,
        mut depth: usize,
        digs: &[u32],
        target: Option<u128>,
    ) {
        let kh = digs.len();
        loop {
            let dig = digs[depth] as usize;
            for idx in 0..dig {
                self.set_next(node, idx, target);
            }
            if depth + 1 >= kh {
                return;
            }
            node = self.child_at(node, dig);
            depth += 1;
        }
    }

    /// Algorithm 7, *Fill_Right*: along the path `digs[depth..]` starting at
    /// `node`, set every slot strictly right of the path to `target`.
    fn fill_right(
        &mut self,
        mut node: NodeId,
        mut depth: usize,
        digs: &[u32],
        target: Option<u128>,
    ) {
        let kh = digs.len();
        let d = self.params.d as usize;
        loop {
            let dig = digs[depth] as usize;
            for idx in (dig + 1)..d {
                self.set_next(node, idx, target);
            }
            if depth + 1 >= kh {
                return;
            }
            node = self.child_at(node, dig);
            depth += 1;
        }
    }

    /// Algorithm 9, *Fill*: set every leaf slot strictly between the two
    /// paths to `target` (= the right key).
    fn fill_between(&mut self, ld: &[u32], rd: &[u32], right: u128) {
        debug_assert!(ld < rd, "clean bounds must be ordered");
        let kh = ld.len();
        let mut node = ROOT;
        let mut depth = 0;
        while ld[depth] == rd[depth] {
            node = self.child_at(node, ld[depth] as usize);
            depth += 1;
            debug_assert!(depth < kh, "distinct keys must diverge");
        }
        let (ldig, rdig) = (ld[depth] as usize, rd[depth] as usize);
        for idx in (ldig + 1)..rdig {
            self.set_next(node, idx, Some(right));
        }
        if depth + 1 < kh {
            let lchild = self.child_at(node, ldig);
            self.fill_right(lchild, depth + 1, ld, Some(right));
            let rchild = self.child_at(node, rdig);
            self.fill_left(rchild, depth + 1, rd, Some(right));
        }
    }

    /// Render the register layout in the style of the paper's Figure 1:
    /// node `i` occupies registers `R_{i(d+1)+1} … R_{(i+1)(d+1)}`, the last
    /// being the parent back-pointer `(-1, ·)`. For documentation and the
    /// `storing_trie` example.
    pub fn registers_dump(&self) -> Vec<String> {
        let d = self.params.d as usize;
        let reg_of = |node: usize, slot: usize| node * (d + 1) + 1 + slot;
        let mut out = Vec::new();
        out.push(format!(
            "R0: next free register = {}",
            self.nodes.len() * (d + 1) + 1
        ));
        for (i, node) in self.nodes.iter().enumerate() {
            for (s, slot) in node.slots.iter().enumerate() {
                let desc = match slot {
                    Slot::Next(None) => "(0, Null)".to_string(),
                    Slot::Next(Some(p)) => {
                        format!("(0, {:?})", self.params.unpack(*p))
                    }
                    Slot::Child(c) => format!("(1, R{})", reg_of(*c as usize, 0)),
                    Slot::Val(v) => format!("(1, {v})"),
                };
                out.push(format!("R{}: {desc}", reg_of(i, s)));
            }
            let parent = if node.parent == NO_PARENT {
                "(-1, Null)".to_string()
            } else {
                format!(
                    "(-1, R{})",
                    reg_of(node.parent as usize, node.parent_slot as usize)
                )
            };
            out.push(format!("R{}: {parent}", reg_of(i, d)));
        }
        out
    }

    // ------------------------------------------------------------------
    // Debug invariant checking (used by property tests).
    // ------------------------------------------------------------------

    /// Exhaustively verify the structural invariants: parent pointers,
    /// occupied-node liveness, and every `Next` cache agreeing with the true
    /// successor of its prefix region. Cost `O(nodes · d)` — tests only.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let pairs = self.iter();
        assert_eq!(pairs.len(), self.len, "len mismatch");
        let keys: Vec<Vec<u64>> = pairs.into_iter().map(|(k, _)| k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "iter not sorted");
        self.check_node(ROOT, &mut Vec::new(), &keys);
        // Every non-root node must be reachable and occupied: count them.
        let mut reachable = 1usize;
        let mut stack = vec![ROOT];
        while let Some(nd) = stack.pop() {
            for (idx, slot) in self.nodes[nd as usize].slots.iter().enumerate() {
                if let Slot::Child(c) = slot {
                    reachable += 1;
                    assert_eq!(self.nodes[*c as usize].parent, nd, "parent pointer");
                    assert_eq!(
                        self.nodes[*c as usize].parent_slot as usize, idx,
                        "parent slot"
                    );
                    assert!(
                        self.nodes[*c as usize].slots.iter().any(Slot::is_occupied)
                            || self.len == 0,
                        "non-root node with no occupied slot survived Cut"
                    );
                    stack.push(*c);
                }
            }
        }
        assert_eq!(reachable, self.nodes.len(), "arena leak: unreachable nodes");
    }

    // ------------------------------------------------------------------
    // Binary persistence (DESIGN.md §9). Serializing the trie verbatim —
    // arena nodes, slots, successor caches — is what makes warm restarts
    // skip the O(|Dom(f)| · n^ε) rebuild. The decoder re-validates every
    // structural invariant the constant-time walk relies on (tree shape,
    // depth discipline, parent pointers, packed-key ranges), so hostile
    // bytes yield a typed error instead of a structure that panics or
    // loops during lookups.
    // ------------------------------------------------------------------

    /// Append the trie's binary encoding to `w`.
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        w.u64(self.params.n);
        w.u64(self.params.k as u64);
        w.u32(self.params.d);
        w.u32(self.params.h);
        w.u64(self.len as u64);
        w.seq_len(self.nodes.len());
        for node in &self.nodes {
            w.u32(node.parent);
            w.u32(node.parent_slot);
            for slot in node.slots.iter() {
                match slot {
                    Slot::Next(None) => w.u8(0),
                    Slot::Next(Some(p)) => {
                        w.u8(1);
                        w.u128(*p);
                    }
                    Slot::Child(c) => {
                        w.u8(2);
                        w.u32(*c);
                    }
                    Slot::Val(v) => {
                        w.u8(3);
                        w.u64(*v);
                    }
                }
            }
        }
    }

    /// Decode a trie, re-validating shape parameters and arena structure.
    pub fn read_from(r: &mut nd_persist::Reader<'_>) -> Result<FnStore, nd_persist::PersistError> {
        use nd_persist::malformed;
        let n = r.u64("store n")?;
        let k = r.u64("store k")?;
        let d = r.u32("store d")?;
        let h = r.u32("store h")?;
        if k == 0 || d < 2 || h == 0 {
            return Err(malformed("store shape parameters out of range"));
        }
        let k = usize::try_from(k).map_err(|_| malformed("store arity overflows usize"))?;
        let params = StoreParams { n, k, d, h };
        let kh = params.total_digits();
        if kh > MAX_DIGITS {
            return Err(malformed("store digit count exceeds the scratch cap"));
        }
        if (k as u64) * u64::from(64 - n.max(1).leading_zeros().min(63)) > 120 {
            return Err(malformed("store key space too wide to pack"));
        }
        let mut pow = 1u128;
        for _ in 0..h {
            pow = pow.saturating_mul(u128::from(d));
        }
        if pow < u128::from(n.max(1)) {
            return Err(malformed("store digits cannot represent the key range"));
        }
        // k·⌈log₂ n⌉ ≤ 120 was checked above, so n^k fits in a u128.
        let max_packed = u128::from(n.max(1)).pow(k as u32);
        let len = r.u64("store len")?;
        let count = r.seq_len(9, "store node count")?;
        if count == 0 {
            return Err(malformed("store has no root node"));
        }
        let mut nodes = Vec::with_capacity(count);
        for i in 0..count {
            let parent = r.u32("store node parent")?;
            let parent_slot = r.u32("store node parent slot")?;
            if i == 0 {
                if parent != NO_PARENT {
                    return Err(malformed("store root has a parent"));
                }
            } else if parent as usize >= count || parent_slot >= d {
                return Err(malformed("store parent pointer out of range"));
            }
            let mut slots = Vec::with_capacity(d as usize);
            for _ in 0..d {
                slots.push(match r.u8("store slot tag")? {
                    0 => Slot::Next(None),
                    1 => {
                        let p = r.u128("store cached successor")?;
                        if p >= max_packed {
                            return Err(malformed("store cached successor out of range"));
                        }
                        Slot::Next(Some(p))
                    }
                    2 => {
                        let c = r.u32("store child pointer")?;
                        if c as usize >= count || c == ROOT {
                            return Err(malformed("store child pointer out of range"));
                        }
                        Slot::Child(c)
                    }
                    3 => Slot::Val(r.u64("store value")?),
                    other => return Err(malformed(format!("unknown store slot tag {other}"))),
                });
            }
            nodes.push(Node {
                slots: slots.into_boxed_slice(),
                parent,
                parent_slot,
            });
        }
        // Structural sweep: the arena must be a tree rooted at ROOT with
        // Child edges strictly above leaf depth, Val slots exactly at leaf
        // depth, and parent back-pointers agreeing with the child edges.
        let mut seen = vec![false; count];
        seen[ROOT as usize] = true;
        let mut vals = 0u64;
        let mut stack = vec![(ROOT, 0usize)];
        while let Some((nd, depth)) = stack.pop() {
            for (idx, slot) in nodes[nd as usize].slots.iter().enumerate() {
                match slot {
                    Slot::Next(_) => {}
                    Slot::Val(_) => {
                        if depth + 1 != kh {
                            return Err(malformed("store value above leaf depth"));
                        }
                        vals += 1;
                    }
                    Slot::Child(c) => {
                        if depth + 2 > kh {
                            return Err(malformed("store child edge at leaf depth"));
                        }
                        let ci = *c as usize;
                        if seen[ci] {
                            return Err(malformed("store node reachable twice (cycle)"));
                        }
                        seen[ci] = true;
                        if nodes[ci].parent != nd || nodes[ci].parent_slot as usize != idx {
                            return Err(malformed("store parent back-pointer mismatch"));
                        }
                        stack.push((*c, depth + 1));
                    }
                }
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(malformed("store arena contains unreachable nodes"));
        }
        if vals != len {
            return Err(malformed("store length disagrees with stored values"));
        }
        Ok(FnStore {
            params,
            nodes,
            len: len as usize,
        })
    }

    fn check_node(&self, node: NodeId, prefix: &mut Vec<u32>, keys: &[Vec<u64>]) {
        let kh = self.params.total_digits();
        let mut buf = [0u32; MAX_DIGITS];
        for (idx, slot) in self.nodes[node as usize].slots.iter().enumerate() {
            prefix.push(idx as u32);
            match slot {
                Slot::Child(c) => self.check_node(*c, prefix, keys),
                Slot::Val(_) => assert_eq!(prefix.len(), kh, "Val above leaf depth"),
                Slot::Next(cached) => {
                    // True successor of the region: smallest key whose digit
                    // prefix is strictly greater than `prefix`.
                    let expected = keys.iter().find(|k| {
                        let packed = self.params.pack(k);
                        let n = self.params.digits_packed(packed, &mut buf);
                        buf[..prefix.len().min(n)] > prefix[..]
                    });
                    let cached_vec = cached.map(|p| self.params.unpack(p));
                    assert_eq!(
                        cached_vec,
                        expected.cloned(),
                        "stale Next cache at prefix {prefix:?}"
                    );
                }
            }
            prefix.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params_small() -> StoreParams {
        StoreParams::new(27, 1, 1.0 / 3.0)
    }

    /// The worked example of the paper's Figure 1: `n = 27`, `ε = 1/3`,
    /// domain `{2, 4, 5, 19, 24, 25}`, identity values.
    fn figure1_store() -> FnStore {
        let mut s = FnStore::new(params_small());
        for k in [2u64, 4, 5, 19, 24, 25] {
            s.insert(&[k], k);
        }
        s
    }

    #[test]
    fn figure1_example() {
        let s = figure1_store();
        assert_eq!(s.len(), 6);
        assert_eq!(s.lookup(&[5]), Lookup::Found(5));
        assert_eq!(s.lookup(&[19]), Lookup::Found(19));
        // Misses return the successor, as the (0, b̄) registers encode.
        assert_eq!(s.lookup(&[3]), Lookup::Missing(Some(vec![4])));
        assert_eq!(s.lookup(&[6]), Lookup::Missing(Some(vec![19])));
        assert_eq!(s.lookup(&[0]), Lookup::Missing(Some(vec![2])));
        assert_eq!(s.lookup(&[26]), Lookup::Missing(None));
        s.check_invariants();
    }

    #[test]
    fn figure1_removal_of_19() {
        // The appendix walks through removing 19: its subtree is cut and
        // the caches between 5 and 24 now point at 24.
        let mut s = figure1_store();
        let regs_before = s.registers();
        assert_eq!(s.remove(&[19]), Some(19));
        assert!(s.registers() < regs_before, "Cut must free the subtree");
        assert_eq!(s.lookup(&[19]), Lookup::Missing(Some(vec![24])));
        assert_eq!(s.lookup(&[6]), Lookup::Missing(Some(vec![24])));
        assert_eq!(s.lookup(&[5]), Lookup::Found(5));
        s.check_invariants();
    }

    #[test]
    fn insert_remove_all() {
        let mut s = figure1_store();
        for k in [2u64, 4, 5, 19, 24, 25] {
            assert_eq!(s.remove(&[k]), Some(k));
            s.check_invariants();
        }
        assert!(s.is_empty());
        assert_eq!(s.lookup(&[0]), Lookup::Missing(None));
        // Arena shrank back to just the root.
        assert_eq!(s.registers(), params_small().d as usize + 1);
    }

    #[test]
    fn overwrite_value() {
        let mut s = FnStore::new(StoreParams::new(100, 1, 0.5));
        assert_eq!(s.insert(&[7], 1), None);
        assert_eq!(s.insert(&[7], 2), Some(1));
        assert_eq!(s.lookup(&[7]), Lookup::Found(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn binary_keys() {
        let p = StoreParams::new(64, 2, 0.34);
        let mut s = FnStore::new(p);
        s.insert(&[3, 40], 1);
        s.insert(&[3, 41], 2);
        s.insert(&[10, 0], 3);
        assert_eq!(s.lookup(&[3, 40]), Lookup::Found(1));
        assert_eq!(s.lookup(&[3, 42]), Lookup::Missing(Some(vec![10, 0])));
        assert_eq!(s.lookup(&[0, 63]), Lookup::Missing(Some(vec![3, 40])));
        assert_eq!(s.successor_strict(&[3, 40]), Some(vec![3, 41]));
        assert_eq!(s.predecessor_strict(&[10, 0]), Some(vec![3, 41]));
        assert_eq!(s.predecessor_strict(&[3, 40]), None);
        s.check_invariants();
    }

    #[test]
    fn packed_api_roundtrip() {
        let p = StoreParams::new(50, 2, 0.4);
        let mut s = FnStore::new(p);
        s.insert(&[7, 8], 78);
        let packed = p.pack(&[7, 8]);
        assert_eq!(s.lookup_packed(packed), LookupPacked::Found(78));
        assert_eq!(s.successor_inclusive_packed(p.pack(&[7, 0])), Some(packed));
        assert_eq!(p.unpack(packed), vec![7, 8]);
    }

    #[test]
    fn kh_equals_one_degenerate_tree() {
        // n ≤ d: the root is the leaf level.
        let p = StoreParams::new(4, 1, 1.0); // d = 4, h = 1
        assert_eq!(p.total_digits(), 1);
        let mut s = FnStore::new(p);
        s.insert(&[2], 20);
        s.insert(&[0], 0);
        assert_eq!(s.lookup(&[1]), Lookup::Missing(Some(vec![2])));
        s.remove(&[2]);
        assert_eq!(s.lookup(&[1]), Lookup::Missing(None));
        s.check_invariants();
    }

    #[test]
    fn iter_sorted() {
        let mut s = FnStore::new(StoreParams::new(1000, 1, 0.3));
        for k in [981u64, 5, 500, 0, 999, 17] {
            s.insert(&[k], k * 10);
        }
        let got: Vec<u64> = s.iter().into_iter().map(|(k, _)| k[0]).collect();
        assert_eq!(got, vec![0, 5, 17, 500, 981, 999]);
    }

    #[test]
    fn binary_codec_roundtrips_figure1() {
        let s = figure1_store();
        let mut w = nd_persist::Writer::new();
        s.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = nd_persist::Reader::new(&bytes);
        let back = FnStore::read_from(&mut r).unwrap();
        r.finish().unwrap();
        back.check_invariants();
        assert_eq!(back.len(), 6);
        assert_eq!(back.params(), s.params());
        // Identical bytes on re-encode: the arena layout round-trips
        // verbatim, which is what the conformance bit-identity check
        // relies on.
        let mut w2 = nd_persist::Writer::new();
        back.write_into(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
        assert_eq!(back.lookup(&[3]), Lookup::Missing(Some(vec![4])));
        assert_eq!(back.lookup(&[19]), Lookup::Found(19));
        assert_eq!(back.lookup(&[26]), Lookup::Missing(None));
    }

    #[test]
    fn binary_codec_rejects_structural_corruption() {
        use nd_persist::{PersistError, Reader};
        let s = figure1_store();
        let mut w = nd_persist::Writer::new();
        s.write_into(&mut w);
        let bytes = w.into_bytes();
        // Every truncation fails typed.
        for cut in 0..bytes.len() {
            assert!(
                FnStore::read_from(&mut Reader::new(&bytes[..cut])).is_err(),
                "cut {cut}"
            );
        }
        // Every single-byte overwrite either fails typed or yields a
        // structure that still satisfies the walk invariants (no panic).
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] = c[i].wrapping_add(1);
            if let Ok(back) = FnStore::read_from(&mut Reader::new(&c)) {
                let _ = back.lookup(&[3]);
                let _ = back.successor_inclusive(&[0]);
            }
        }
        // d < 2 is rejected.
        let mut w = nd_persist::Writer::new();
        w.u64(27);
        w.u64(1);
        w.u32(1);
        w.u32(3);
        let b = w.into_bytes();
        assert!(matches!(
            FnStore::read_from(&mut Reader::new(&b)),
            Err(PersistError::Malformed { .. } | PersistError::Truncated { .. })
        ));
    }

    #[test]
    fn dense_then_sparse_cycle() {
        let p = StoreParams::new(50, 1, 0.45);
        let mut s = FnStore::new(p);
        for k in 0..50u64 {
            s.insert(&[k], k);
        }
        s.check_invariants();
        for k in (0..50u64).filter(|k| k % 2 == 0) {
            s.remove(&[k]);
        }
        s.check_invariants();
        assert_eq!(s.len(), 25);
        assert_eq!(s.lookup(&[0]), Lookup::Missing(Some(vec![1])));
        assert_eq!(s.lookup(&[48]), Lookup::Missing(Some(vec![49])));
        for k in (0..50u64).filter(|k| k % 2 == 1) {
            s.remove(&[k]);
        }
        assert!(s.is_empty());
        s.check_invariants();
    }
}
