//! Crash-safe binary persistence primitives for the nowhere-dense index.
//!
//! The on-disk container is deliberately dumb (DESIGN.md §9):
//!
//! ```text
//! magic [8]  version u32  section_count u32
//! section*:  tag [4]  len u64  crc32 u32  payload [len]
//! ```
//!
//! Every multi-byte integer is little-endian. Each section carries its own
//! CRC-32 (IEEE), so a single flipped bit anywhere in a payload is caught
//! before any decoder runs, and truncation is caught by the length framing.
//! Decoding never panics on hostile bytes: every read is bounds-checked and
//! returns a typed [`PersistError`].
//!
//! Files are replaced atomically: write to a sibling temp file, `fsync`,
//! `rename` over the target, then best-effort `fsync` the directory — a
//! crash at any point leaves either the old file or the new one, never a
//! torn hybrid.

use std::fmt;
use std::io::Write as _;
use std::path::Path;

/// First 8 bytes of every index file.
pub const MAGIC: [u8; 8] = *b"NDQIDX\r\n";

/// Current container format version. Bump on any layout change; readers
/// reject other versions with [`PersistError::UnsupportedVersion`] rather
/// than guessing.
pub const FORMAT_VERSION: u32 = 1;

/// Decoders refuse single length prefixes beyond this many elements, so a
/// corrupted length field fails typed instead of attempting a huge
/// allocation.
pub const MAX_LEN: u64 = 1 << 33;

/// Why a persisted artifact could not be read (or written).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PersistError {
    /// Filesystem-level failure (message of the underlying `io::Error`).
    Io(String),
    /// The file does not start with [`MAGIC`] — not an index file at all.
    BadMagic,
    /// The file's format version is not the one this binary supports.
    UnsupportedVersion { found: u32, supported: u32 },
    /// The input ended before a declared value/section was complete.
    Truncated { context: &'static str },
    /// A section's payload does not match its recorded CRC-32.
    ChecksumMismatch { section: String },
    /// Structurally invalid content inside an intact section.
    Malformed { context: String },
    /// Bytes remain after the last declared section/value.
    TrailingData,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io failure: {e}"),
            PersistError::BadMagic => write!(f, "bad magic (not an ndq index file)"),
            PersistError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported index format version {found} (this build reads {supported})"
                )
            }
            PersistError::Truncated { context } => {
                write!(f, "truncated input while reading {context}")
            }
            PersistError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?} (corrupt file)")
            }
            PersistError::Malformed { context } => write!(f, "malformed content: {context}"),
            PersistError::TrailingData => write!(f, "trailing bytes after the declared content"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

/// Shorthand for a malformed-content error.
pub fn malformed(context: impl Into<String>) -> PersistError {
    PersistError::Malformed {
        context: context.into(),
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), slicing-by-16 tables built at compile
// time. The warm-restart path checksums multi-megabyte sections, so the
// classic one-table-byte-at-a-time loop (~250 MB/s) would dominate load;
// slicing-by-16 processes sixteen input bytes per iteration with four
// independent table-lookup chains.
// ---------------------------------------------------------------------

const CRC_SLICES: usize = 16;

const fn build_crc_tables() -> [[u32; 256]; CRC_SLICES] {
    let mut t = [[0u32; 256]; CRC_SLICES];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < CRC_SLICES {
        let mut i = 0;
        while i < 256 {
            t[k][i] = t[0][(t[k - 1][i] & 0xff) as usize] ^ (t[k - 1][i] >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

static CRC_TABLES: [[u32; 256]; CRC_SLICES] = build_crc_tables();

/// Extend a finalized CRC-32 with more bytes:
/// `crc32_update(crc32(a), b) == crc32(a ++ b)`. Lets section checksums
/// cover the tag and length framing without copying the payload into a
/// contiguous scratch buffer.
///
/// Large inputs take the carryless-multiply fold on x86-64 CPUs that
/// support it (~10× the table path); the result is bit-identical either
/// way, so files are portable across hosts.
pub fn crc32_update(crc: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if data.len() >= 64 && pclmul::available() {
        let split = data.len() & !15;
        // SAFETY: `available` confirmed pclmulqdq+sse4.1 at runtime, and
        // `split` is a multiple of 16 that is ≥ 64.
        let folded = unsafe { pclmul::crc32_blocks(crc, &data[..split]) };
        return crc32_update_table(folded, &data[split..]);
    }
    crc32_update_table(crc, data)
}

fn crc32_update_table(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    let mut chunks = data.chunks_exact(CRC_SLICES);
    for chunk in chunks.by_ref() {
        let w0 = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let w1 = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let w2 = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        let w3 = u32::from_le_bytes(chunk[12..16].try_into().unwrap());
        c = CRC_TABLES[15][(w0 & 0xff) as usize]
            ^ CRC_TABLES[14][((w0 >> 8) & 0xff) as usize]
            ^ CRC_TABLES[13][((w0 >> 16) & 0xff) as usize]
            ^ CRC_TABLES[12][(w0 >> 24) as usize]
            ^ CRC_TABLES[11][(w1 & 0xff) as usize]
            ^ CRC_TABLES[10][((w1 >> 8) & 0xff) as usize]
            ^ CRC_TABLES[9][((w1 >> 16) & 0xff) as usize]
            ^ CRC_TABLES[8][(w1 >> 24) as usize]
            ^ CRC_TABLES[7][(w2 & 0xff) as usize]
            ^ CRC_TABLES[6][((w2 >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((w2 >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(w2 >> 24) as usize]
            ^ CRC_TABLES[3][(w3 & 0xff) as usize]
            ^ CRC_TABLES[2][((w3 >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((w3 >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(w3 >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_update(0, data)
}

/// Carryless-multiply CRC-32 folding for the bit-reflected IEEE polynomial.
///
/// This is the classic PCLMULQDQ scheme from Gopal et al., "Fast CRC
/// Computation for Generic Polynomials Using PCLMULQDQ" (the same constants
/// zlib and friends ship): fold four 128-bit lanes in parallel over 64-byte
/// blocks, collapse to one lane, then Barrett-reduce to 32 bits. Only the
/// bulk of a buffer goes through here — the dispatcher in [`crc32_update`]
/// hands the sub-16-byte tail to the table path, which also serves as the
/// portable fallback on CPUs without the instructions.
#[cfg(target_arch = "x86_64")]
mod pclmul {
    use core::arch::x86_64::*;

    /// Runtime CPU support check (cached by `std` behind the macro).
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Fold `data` into a finalized CRC-32 state, returning the finalized
    /// result (same convention as `crc32_update`).
    ///
    /// # Safety
    ///
    /// The CPU must support `pclmulqdq` and `sse4.1` (check [`available`]);
    /// `data.len()` must be a non-zero multiple of 16 that is at least 64.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub unsafe fn crc32_blocks(crc: u32, data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));
        unsafe {
            // Bit-reflected domain fold constants: x^t mod P for the shift
            // distances used below, plus the Barrett pair (P', mu).
            let k1k2 = _mm_set_epi64x(0x01c6e41596, 0x0154442bd4);
            let k3k4 = _mm_set_epi64x(0x00ccaa009e, 0x01751997d0);
            let k5 = _mm_set_epi64x(0, 0x0163cd6124);
            let poly = _mm_set_epi64x(0x01f7011641, 0x01db710641);
            let low32 = _mm_setr_epi32(-1, 0, -1, 0);

            let p = data.as_ptr();
            let mut x1 = _mm_loadu_si128(p.cast());
            let mut x2 = _mm_loadu_si128(p.add(0x10).cast());
            let mut x3 = _mm_loadu_si128(p.add(0x20).cast());
            let mut x4 = _mm_loadu_si128(p.add(0x30).cast());
            x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(!crc as i32));

            // Fold 64 bytes at a time across four independent lanes.
            let mut off = 64;
            while data.len() - off >= 64 {
                let x5 = _mm_clmulepi64_si128(x1, k1k2, 0x00);
                let x6 = _mm_clmulepi64_si128(x2, k1k2, 0x00);
                let x7 = _mm_clmulepi64_si128(x3, k1k2, 0x00);
                let x8 = _mm_clmulepi64_si128(x4, k1k2, 0x00);
                x1 = _mm_clmulepi64_si128(x1, k1k2, 0x11);
                x2 = _mm_clmulepi64_si128(x2, k1k2, 0x11);
                x3 = _mm_clmulepi64_si128(x3, k1k2, 0x11);
                x4 = _mm_clmulepi64_si128(x4, k1k2, 0x11);
                x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(p.add(off).cast()));
                x2 = _mm_xor_si128(
                    _mm_xor_si128(x2, x6),
                    _mm_loadu_si128(p.add(off + 0x10).cast()),
                );
                x3 = _mm_xor_si128(
                    _mm_xor_si128(x3, x7),
                    _mm_loadu_si128(p.add(off + 0x20).cast()),
                );
                x4 = _mm_xor_si128(
                    _mm_xor_si128(x4, x8),
                    _mm_loadu_si128(p.add(off + 0x30).cast()),
                );
                off += 64;
            }

            // Collapse the four lanes into one.
            let mut x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), x5);
            x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), x5);
            x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), x5);

            // Fold any remaining 16-byte blocks.
            while off < data.len() {
                x5 = _mm_clmulepi64_si128(x1, k3k4, 0x00);
                x1 = _mm_clmulepi64_si128(x1, k3k4, 0x11);
                x1 = _mm_xor_si128(_mm_xor_si128(x1, x5), _mm_loadu_si128(p.add(off).cast()));
                off += 16;
            }

            // Reduce 128 → 64 bits.
            let mut x0 = _mm_clmulepi64_si128(x1, k3k4, 0x10);
            x1 = _mm_srli_si128(x1, 8);
            x1 = _mm_xor_si128(x1, x0);

            // Reduce 96 → 64 bits with k5.
            x0 = _mm_srli_si128(x1, 4);
            x1 = _mm_and_si128(x1, low32);
            x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
            x1 = _mm_xor_si128(x1, x0);

            // Barrett-reduce to 32 bits.
            x0 = _mm_and_si128(x1, low32);
            x0 = _mm_clmulepi64_si128(x0, poly, 0x10);
            x0 = _mm_and_si128(x0, low32);
            x0 = _mm_clmulepi64_si128(x0, poly, 0x00);
            x1 = _mm_xor_si128(x1, x0);

            !(_mm_extract_epi32(x1, 1) as u32)
        }
    }
}

// ---------------------------------------------------------------------
// Little-endian value codecs.
// ---------------------------------------------------------------------

/// Append-only little-endian encoder over a byte vector.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length prefix (`u64`) for a following sequence.
    pub fn seq_len(&mut self, n: usize) {
        self.u64(n as u64);
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.seq_len(s.len());
        self.bytes(s.as_bytes());
    }

    /// Length-prefixed raw byte slice.
    pub fn byte_slice(&mut self, v: &[u8]) {
        self.seq_len(v.len());
        self.bytes(v);
    }

    /// Length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, v: &[u32]) {
        self.seq_len(v.len());
        self.buf.reserve(4 * v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// A strictly sorted set over `[0, bound)` in the smaller of two
    /// representations: a plain [`Writer::u32_slice`] when sparse, or a
    /// fixed-width bitmap when dense. Ball tables on dense graphs are
    /// near-full, so the bitmap form shrinks them up to 32× — which cuts
    /// checksum and decode time on the warm-restart path by the same
    /// factor. The choice is a deterministic function of `(v, bound)`,
    /// keeping re-saves bit-identical.
    ///
    /// `v` must be strictly sorted with every element `< bound`.
    pub fn sorted_set(&mut self, v: &[u32], bound: u32) {
        let words = (bound as usize).div_ceil(64);
        if words * 8 < 8 + 4 * v.len() {
            self.u8(1);
            let mut bits = vec![0u64; words];
            for &x in v {
                bits[(x / 64) as usize] |= 1u64 << (x % 64);
            }
            for w in bits {
                self.u64(w);
            }
        } else {
            self.u8(0);
            self.u32_slice(v);
        }
    }

    /// [`Writer::sorted_set`] for a set already held as a bitmap of
    /// `bound.div_ceil(64)` words. Produces byte-identical output to
    /// encoding the equivalent sorted list, so the two in-memory
    /// representations are interchangeable on disk.
    pub fn sorted_set_words(&mut self, words: &[u64], bound: u32) {
        debug_assert_eq!(words.len(), (bound as usize).div_ceil(64));
        let count: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        if words.len() * 8 < 8 + 4 * count {
            self.u8(1);
            for &w in words {
                self.u64(w);
            }
        } else {
            self.u8(0);
            self.seq_len(count);
            self.buf.reserve(4 * count);
            for (i, &w) in words.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    let x = (i as u32) * 64 + w.trailing_zeros();
                    self.buf.extend_from_slice(&x.to_le_bytes());
                    w &= w - 1;
                }
            }
        }
    }
}

/// Bounds-checked little-endian decoder over a byte slice. Every method
/// returns [`PersistError::Truncated`] instead of panicking when the input
/// runs out.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { context });
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self, context: &'static str) -> Result<u8, PersistError> {
        Ok(self.take(1, context)?[0])
    }

    pub fn bool(&mut self, context: &'static str) -> Result<bool, PersistError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(malformed(format!("{context}: bool byte {other}"))),
        }
    }

    pub fn u32(&mut self, context: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().unwrap(),
        ))
    }

    pub fn u64(&mut self, context: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    pub fn u128(&mut self, context: &'static str) -> Result<u128, PersistError> {
        Ok(u128::from_le_bytes(
            self.take(16, context)?.try_into().unwrap(),
        ))
    }

    /// A `u64` length prefix, validated against both [`MAX_LEN`] and the
    /// bytes actually remaining (each element takes ≥ `min_elem_bytes`),
    /// so corrupt lengths fail typed instead of triggering huge
    /// allocations.
    pub fn seq_len(
        &mut self,
        min_elem_bytes: usize,
        context: &'static str,
    ) -> Result<usize, PersistError> {
        let n = self.u64(context)?;
        if n > MAX_LEN {
            return Err(malformed(format!("{context}: length {n} exceeds cap")));
        }
        if (n as usize).saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(PersistError::Truncated { context });
        }
        Ok(n as usize)
    }

    pub fn str(&mut self, context: &'static str) -> Result<String, PersistError> {
        let n = self.seq_len(1, context)?;
        let raw = self.take(n, context)?;
        String::from_utf8(raw.to_vec()).map_err(|_| malformed(format!("{context}: invalid utf-8")))
    }

    /// Length-prefixed raw byte slice.
    pub fn byte_slice(&mut self, context: &'static str) -> Result<Vec<u8>, PersistError> {
        let n = self.seq_len(1, context)?;
        Ok(self.take(n, context)?.to_vec())
    }

    pub fn u32_slice(&mut self, context: &'static str) -> Result<Vec<u32>, PersistError> {
        // `seq_len` already proved `4 * n` bytes remain, so the single
        // `take` cannot fail and the decode is one pass over raw bytes.
        let n = self.seq_len(4, context)?;
        let raw = self.take(4 * n, context)?;
        let mut out = Vec::with_capacity(n);
        out.extend(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        Ok(out)
    }

    /// [`Reader::u32_slice`] fused with the two checks nearly every index
    /// consumer performs on vertex lists: strictly increasing order and
    /// every element `< bound`. Fusing keeps validation to the same single
    /// pass that decodes — these lists are the bulk of a large index.
    pub fn u32_slice_sorted(
        &mut self,
        bound: u32,
        context: &'static str,
    ) -> Result<Vec<u32>, PersistError> {
        let n = self.seq_len(4, context)?;
        let raw = self.take(4 * n, context)?;
        let mut out = Vec::with_capacity(n);
        out.extend(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        if out.windows(2).any(|w| w[0] >= w[1]) {
            return Err(malformed(format!("{context}: not strictly sorted")));
        }
        // Strictly sorted, so only the maximum needs the range check.
        if out.last().is_some_and(|&x| x >= bound) {
            return Err(malformed(format!("{context}: element out of range")));
        }
        Ok(out)
    }

    /// Decode a [`Writer::sorted_set`]: either representation yields the
    /// strictly sorted element list. Bitmap payloads are validated to
    /// carry no bits at or beyond `bound`.
    pub fn sorted_set(
        &mut self,
        bound: u32,
        context: &'static str,
    ) -> Result<Vec<u32>, PersistError> {
        match self.u8(context)? {
            0 => self.u32_slice_sorted(bound, context),
            1 => {
                let words = (bound as usize).div_ceil(64);
                let raw = self.take(8 * words, context)?;
                let mut count = 0usize;
                for c in raw.chunks_exact(8) {
                    count += u64::from_le_bytes(c.try_into().unwrap()).count_ones() as usize;
                }
                let mut out = Vec::with_capacity(count);
                for (i, c) in raw.chunks_exact(8).enumerate() {
                    let mut w = u64::from_le_bytes(c.try_into().unwrap());
                    let base = (i * 64) as u32;
                    while w != 0 {
                        out.push(base + w.trailing_zeros());
                        w &= w - 1;
                    }
                }
                if out.last().is_some_and(|&x| x >= bound) {
                    return Err(malformed(format!("{context}: element out of range")));
                }
                Ok(out)
            }
            other => Err(malformed(format!(
                "{context}: unknown set encoding {other}"
            ))),
        }
    }

    /// Decode a [`Writer::sorted_set`] straight into a zeroed bitmap row of
    /// `bound.div_ceil(64)` words. Bitmap payloads become a bulk copy (the
    /// fast path for dense ball tables on warm restart); list payloads are
    /// validated as in [`Reader::u32_slice_sorted`] and scattered into bits.
    pub fn sorted_set_into_words(
        &mut self,
        bound: u32,
        row: &mut [u64],
        context: &'static str,
    ) -> Result<(), PersistError> {
        debug_assert_eq!(row.len(), (bound as usize).div_ceil(64));
        match self.u8(context)? {
            0 => {
                for x in self.u32_slice_sorted(bound, context)? {
                    row[(x / 64) as usize] |= 1u64 << (x % 64);
                }
                Ok(())
            }
            1 => {
                let raw = self.take(8 * row.len(), context)?;
                for (w, c) in row.iter_mut().zip(raw.chunks_exact(8)) {
                    *w = u64::from_le_bytes(c.try_into().unwrap());
                }
                if !bound.is_multiple_of(64) && row.last().is_some_and(|&w| w >> (bound % 64) != 0)
                {
                    return Err(malformed(format!("{context}: element out of range")));
                }
                Ok(())
            }
            other => Err(malformed(format!(
                "{context}: unknown set encoding {other}"
            ))),
        }
    }

    /// Assert the input is fully consumed.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::TrailingData)
        }
    }
}

// ---------------------------------------------------------------------
// Section container.
// ---------------------------------------------------------------------

/// Assembles a versioned, per-section-checksummed container.
#[derive(Default)]
pub struct ContainerWriter {
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl ContainerWriter {
    pub fn new() -> ContainerWriter {
        ContainerWriter::default()
    }

    pub fn section(&mut self, tag: [u8; 4], payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    pub fn finish(self) -> Vec<u8> {
        let total: usize = self
            .sections
            .iter()
            .map(|(_, p)| p.len() + 16)
            .sum::<usize>()
            + 16;
        let mut out = Vec::with_capacity(total);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(tag);
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(&section_crc(tag, payload).to_le_bytes());
            out.extend_from_slice(payload);
        }
        out
    }
}

/// A parsed container: tagged sections whose checksums have already been
/// verified.
#[derive(Debug)]
pub struct Container<'a> {
    sections: Vec<([u8; 4], &'a [u8])>,
}

impl<'a> Container<'a> {
    /// The payload of the (first) section with `tag`; missing sections are
    /// a [`PersistError::Malformed`].
    pub fn section(&self, tag: [u8; 4]) -> Result<&'a [u8], PersistError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, p)| *p)
            .ok_or_else(|| malformed(format!("missing section {}", tag_name(&tag))))
    }

    pub fn len(&self) -> usize {
        self.sections.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }
}

fn tag_name(tag: &[u8; 4]) -> String {
    String::from_utf8_lossy(tag).into_owned()
}

/// Section checksum covers the tag and the length framing too, so a bit
/// flip anywhere in a section — not just its payload — is detected.
fn section_crc(tag: &[u8; 4], payload: &[u8]) -> u32 {
    let crc = crc32_update(crc32(tag), &(payload.len() as u64).to_le_bytes());
    crc32_update(crc, payload)
}

/// One framed section whose checksum has NOT been verified yet. Produced
/// by [`parse_container_frames`] so callers can pipeline CRC verification
/// with decoding: every decoder in this codebase is bounds-checked and
/// typed-error-safe on arbitrary bytes, so it is sound to decode a payload
/// while its checksum is still being confirmed on another thread — as long
/// as a failed [`SectionFrame::verify`] discards the decoded value.
#[derive(Clone, Copy, Debug)]
pub struct SectionFrame<'a> {
    pub tag: [u8; 4],
    pub payload: &'a [u8],
    want_crc: u32,
}

impl SectionFrame<'_> {
    /// Confirm the recorded CRC-32 (covering tag, length framing, and
    /// payload) against the bytes.
    pub fn verify(&self) -> Result<(), PersistError> {
        if section_crc(&self.tag, self.payload) != self.want_crc {
            return Err(PersistError::ChecksumMismatch {
                section: tag_name(&self.tag),
            });
        }
        Ok(())
    }
}

/// Parse a container's framing — magic, version, section lengths, no
/// trailing bytes — WITHOUT verifying section checksums. Callers must
/// [`SectionFrame::verify`] every frame before trusting any decoded
/// payload. Never panics on hostile input.
pub fn parse_container_frames(data: &[u8]) -> Result<Vec<SectionFrame<'_>>, PersistError> {
    if data.len() < 8 {
        return Err(PersistError::Truncated { context: "magic" });
    }
    if data[..8] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let mut r = Reader::new(&data[8..]);
    let version = r.u32("format version")?;
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let count = r.u32("section count")?;
    let mut frames = Vec::new();
    for _ in 0..count {
        let tag: [u8; 4] = r.take(4, "section tag")?.try_into().expect("4-byte slice");
        let len = r.u64("section length")?;
        if len > MAX_LEN || len as usize > r.remaining() {
            return Err(PersistError::Truncated {
                context: "section payload",
            });
        }
        let want_crc = r.u32("section crc")?;
        let payload = r.take(len as usize, "section payload")?;
        frames.push(SectionFrame {
            tag,
            payload,
            want_crc,
        });
    }
    r.finish()?;
    Ok(frames)
}

/// Parse and verify a container: magic, version, section framing, per-
/// section CRC, and no trailing bytes. Never panics on hostile input.
pub fn parse_container(data: &[u8]) -> Result<Container<'_>, PersistError> {
    let frames = parse_container_frames(data)?;
    let mut sections = Vec::with_capacity(frames.len());
    for f in frames {
        f.verify()?;
        sections.push((f.tag, f.payload));
    }
    Ok(Container { sections })
}

// ---------------------------------------------------------------------
// Atomic file replacement.
// ---------------------------------------------------------------------

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// `fsync`, `rename`, then best-effort directory `fsync`. A crash leaves
/// either the previous file or the complete new one.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e.into());
    }
    if let Some(dir) = dir {
        // Persist the rename itself; failure here (exotic filesystems)
        // does not lose data already fsynced into the file.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Read a whole file, mapping filesystem errors into [`PersistError::Io`].
pub fn read_file(path: &Path) -> Result<Vec<u8>, PersistError> {
    Ok(std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_container() -> Vec<u8> {
        let mut a = Writer::new();
        a.u64(7);
        a.str("hello");
        a.u32_slice(&[1, 2, 3]);
        let mut b = Writer::new();
        b.u128(u128::MAX - 5);
        b.bool(true);
        let mut c = ContainerWriter::new();
        c.section(*b"AAAA", a.into_bytes());
        c.section(*b"BBBB", b.into_bytes());
        c.finish()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample_container();
        let c = parse_container(&bytes).unwrap();
        assert_eq!(c.len(), 2);
        let mut r = Reader::new(c.section(*b"AAAA").unwrap());
        assert_eq!(r.u64("x").unwrap(), 7);
        assert_eq!(r.str("s").unwrap(), "hello");
        assert_eq!(r.u32_slice("v").unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();
        let mut r = Reader::new(c.section(*b"BBBB").unwrap());
        assert_eq!(r.u128("y").unwrap(), u128::MAX - 5);
        assert!(r.bool("b").unwrap());
        r.finish().unwrap();
        assert!(matches!(
            c.section(*b"ZZZZ"),
            Err(PersistError::Malformed { .. })
        ));
    }

    #[test]
    fn bad_magic() {
        let mut bytes = sample_container();
        bytes[0] ^= 0x01;
        assert_eq!(parse_container(&bytes).unwrap_err(), PersistError::BadMagic);
    }

    #[test]
    fn stale_version() {
        let mut bytes = sample_container();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            parse_container(&bytes).unwrap_err(),
            PersistError::UnsupportedVersion {
                found: 99,
                supported: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = sample_container();
        for cut in 0..bytes.len() {
            let err = parse_container(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. }
                        | PersistError::BadMagic
                        | PersistError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = sample_container();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut c = bytes.clone();
                c[i] ^= 1 << bit;
                assert!(
                    parse_container(&c).is_err(),
                    "undetected flip at byte {i} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn trailing_data_rejected() {
        let mut bytes = sample_container();
        bytes.push(0);
        assert_eq!(
            parse_container(&bytes).unwrap_err(),
            PersistError::TrailingData
        );
    }

    #[test]
    fn byte_slice_roundtrip_and_truncation() {
        let mut w = Writer::new();
        w.byte_slice(&[7, 0, 255]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.byte_slice("b").unwrap(), vec![7, 0, 255]);
        r.finish().unwrap();
        assert!(Reader::new(&bytes[..9]).byte_slice("b").is_err());
    }

    #[test]
    fn corrupt_length_field_does_not_allocate() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd length prefix
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.u32_slice("v").is_err());
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir().join(format!("nd-persist-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        let bytes = sample_container();
        write_file_atomic(&path, &bytes).unwrap();
        assert_eq!(read_file(&path).unwrap(), bytes);
        // Overwrite is atomic too.
        write_file_atomic(&path, &bytes[..20]).unwrap();
        assert_eq!(read_file(&path).unwrap().len(), 20);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_known_vector() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sorted_set_roundtrips_across_densities() {
        let bound = 300u32;
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![299],
            (0..300).collect(),            // full → bitmap
            (0..300).step_by(2).collect(), // half → bitmap
            vec![3, 77, 150, 299],         // sparse → list
            (250..300).collect(),          // tail cluster
        ];
        for v in cases {
            let mut w = Writer::new();
            w.sorted_set(&v, bound);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(r.sorted_set(bound, "set").unwrap(), v);
            r.finish().unwrap();
            // Deterministic: re-encoding is bit-identical.
            let mut w2 = Writer::new();
            w2.sorted_set(&v, bound);
            assert_eq!(w2.into_bytes(), bytes);
        }
    }

    #[test]
    fn sorted_set_rejects_out_of_range_bitmap_bits() {
        let bound = 70u32; // 2 words, upper word mostly padding
        let mut w = Writer::new();
        w.sorted_set(&(0..70).collect::<Vec<_>>(), bound);
        let mut bytes = w.into_bytes();
        // Set a padding bit beyond `bound` in the last word.
        let last = bytes.len() - 1;
        bytes[last] |= 0x80;
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.sorted_set(bound, "set"),
            Err(PersistError::Malformed { .. })
        ));
    }

    #[test]
    fn crc_update_chains_like_concatenation() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1031).collect();
        // Every split point, so both the slicing-by-8 body and the
        // byte-at-a-time remainder are exercised on each side.
        for cut in 0..data.len() {
            let chained = crc32_update(crc32(&data[..cut]), &data[cut..]);
            assert_eq!(chained, crc32(&data), "split at {cut}");
        }
    }

    #[test]
    fn missing_file_is_io() {
        let err = read_file(Path::new("/nonexistent/nd-persist/i.bin")).unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
