//! Property tests: the indexed engine against naive semantics on random
//! graphs and randomly assembled fragment queries.

use proptest::prelude::*;

use nd_core::{PrepareOpts, PreparedQuery};
use nd_graph::{generators, ColoredGraph, GraphBuilder, Vertex};
use nd_logic::ast::{ColorRef, Formula, Query, VarId};
use nd_logic::eval::materialize;

/// A random sparse-ish colored graph.
fn graph_strategy() -> impl Strategy<Value = ColoredGraph> {
    (4usize..26, 0u64..1000, 0usize..3).prop_map(|(n, seed, family)| {
        let base = match family {
            0 => generators::random_tree(n, seed),
            1 => generators::bounded_degree(n, 3, seed),
            _ => generators::random_forest(n, 0.8, seed),
        };
        let mut g = base;
        let blue: Vec<Vertex> = (0..n as Vertex)
            .filter(|v| (v.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 == 0)
            .collect();
        let red: Vec<Vertex> = (0..n as Vertex)
            .filter(|v| (v.wrapping_mul(97).wrapping_add(seed as u32)) % 4 == 1)
            .collect();
        g.add_color(blue, Some("Blue".into()));
        g.add_color(red, Some("Red".into()));
        g
    })
}

/// A random binary-constraint atom between two variables.
fn binary_atom(x: VarId, y: VarId) -> impl Strategy<Value = Formula> {
    prop_oneof![
        (1u32..4).prop_map(move |d| Formula::DistLe(x, y, d)),
        (1u32..4).prop_map(move |d| Formula::dist_gt(x, y, d)),
        Just(Formula::Edge(x, y)),
        Just(Formula::Not(Box::new(Formula::Edge(x, y)))),
        Just(Formula::Eq(x, y)),
        Just(Formula::Not(Box::new(Formula::Eq(x, y)))),
    ]
}

/// A random unary conjunct for a variable.
fn unary_atom(x: VarId) -> impl Strategy<Value = Formula> {
    prop_oneof![
        Just(Formula::Color(ColorRef::Named("Blue".into()), x)),
        Just(Formula::Color(ColorRef::Named("Red".into()), x)),
        Just(Formula::Not(Box::new(Formula::Color(
            ColorRef::Named("Blue".into()),
            x
        )))),
        Just(Formula::True),
    ]
}

/// A random fragment query of arity 2 or 3: one unary conjunct per
/// variable plus a subset of pairwise constraints.
fn query_strategy() -> impl Strategy<Value = Query> {
    (2usize..4).prop_flat_map(|k| {
        let vars: Vec<VarId> = (0..k as u32).map(VarId).collect();
        let unaries: Vec<_> = vars.iter().map(|&v| unary_atom(v)).collect();
        let pairs: Vec<(usize, usize)> = (0..k)
            .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
            .collect();
        let binaries: Vec<_> = pairs
            .iter()
            .map(|&(i, j)| {
                prop_oneof![
                    2 => binary_atom(VarId(i as u32), VarId(j as u32)).prop_map(Some),
                    1 => Just(None),
                ]
            })
            .collect();
        (unaries, binaries).prop_map(move |(us, bs)| {
            let mut parts: Vec<Formula> = Vec::new();
            parts.extend(us);
            parts.extend(bs.into_iter().flatten());
            // Ensure every variable is free: conjoin x = x as a no-op
            // equality... Eq(x, x) is always true but keeps x free.
            for &v in &vars {
                parts.push(Formula::Eq(v, v));
            }
            Query::new(Formula::and(parts), vars.clone())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_engine_matches_naive(g in graph_strategy(), q in query_strategy()) {
        let opts = PrepareOpts {
            epsilon: 0.5,
            allow_fallback: true,
            ..PrepareOpts::default()
        };
        let prepared = PreparedQuery::prepare(&g, &q, &opts).unwrap();
        let want = materialize(&g, &q);
        let got: Vec<_> = prepared.enumerate().collect();
        prop_assert_eq!(&got, &want);

        // next_solution at random probes.
        for s in 0..8u32 {
            let probe: Vec<Vertex> = (0..q.arity())
                .map(|i| (s.wrapping_mul(7 + i as u32 * 13)) % g.n() as u32)
                .collect();
            let idx = want.partition_point(|t| t < &probe);
            prop_assert_eq!(prepared.next_solution(&probe), want.get(idx).cloned());
            let member = want.binary_search(&probe).is_ok();
            prop_assert_eq!(prepared.test(&probe), member);
        }
    }

    #[test]
    fn extendability_toggle_is_invisible(g in graph_strategy(), q in query_strategy()) {
        let with = PreparedQuery::prepare(&g, &q, &PrepareOpts {
            extendability_check: true, ..PrepareOpts::default()
        }).unwrap();
        let without = PreparedQuery::prepare(&g, &q, &PrepareOpts {
            extendability_check: false, ..PrepareOpts::default()
        }).unwrap();
        prop_assert_eq!(
            with.enumerate().collect::<Vec<_>>(),
            without.enumerate().collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn union_queries_match_naive(
        g in graph_strategy(),
        q1 in query_strategy(),
        q2 in query_strategy(),
    ) {
        // Splice two random conjunctive queries of the same arity into a
        // union; pad the shorter one by reusing its own formula.
        prop_assume!(q1.arity() == q2.arity());
        let q = Query::new(
            Formula::or([q1.formula.clone(), q2.formula.clone()]),
            q1.free.clone(),
        );
        let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
        let want = materialize(&g, &q);
        prop_assert_eq!(prepared.enumerate().collect::<Vec<_>>(), want);
    }

    #[test]
    fn counting_matches_enumeration(g in graph_strategy(), q in query_strategy()) {
        let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
        prop_assert_eq!(prepared.count(), prepared.enumerate().count());
    }
}

#[test]
fn eq_self_loops_regression() {
    // Eq(x, x) used by the generator must not confuse the compiler: it has
    // one free variable, so it lands in the unary slot.
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1);
    let mut g = b.build();
    g.add_color(vec![0, 2], Some("Blue".into()));
    g.add_color(vec![], Some("Red".into()));
    let q = Query::new(
        Formula::and([
            Formula::Eq(VarId(0), VarId(0)),
            Formula::Eq(VarId(1), VarId(1)),
            Formula::Edge(VarId(0), VarId(1)),
        ]),
        vec![VarId(0), VarId(1)],
    );
    let prepared = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(
        prepared.enumerate().collect::<Vec<_>>(),
        vec![vec![0, 1], vec![1, 0]]
    );
}
