//! Fault-injection suite: no public entry point of the engine panics on
//! malformed input — it returns a typed error ([`PrepareError`],
//! [`QueryError`], `NdError`) or degrades down the preparation ladder.
//!
//! Covers: degenerate `ε`, unknown colors, relational atoms, tiny
//! wall-clock / node-expansion / memory budgets (with partial statistics
//! in the error), strict mode (`allow_fallback = false`), probe
//! validation, the Removal Lemma and dynamic-index front doors, and
//! randomized sweeps over all of the above.

use proptest::prelude::*;

use nd_core::{
    Budget, DegradationReason, DegradationRung, EngineKind, PrepareError, PrepareOpts,
    PrepareStats, PreparedQuery, QueryError, Resource, UnsupportedReason,
};
use nd_graph::{generators, ColoredGraph, Vertex};
use nd_logic::ast::{ColorRef, Formula, Query, VarId};
use nd_logic::eval::materialize;
use nd_logic::parse_query;

fn blue_grid(w: usize, h: usize) -> ColoredGraph {
    let mut g = generators::grid(w, h);
    let blue: Vec<Vertex> = (0..g.n() as Vertex).filter(|v| v % 3 == 0).collect();
    g.add_color(blue, Some("Blue".into()));
    g
}

fn far_query() -> Query {
    parse_query("dist(x,y) > 2 && Blue(y)").unwrap()
}

fn opts_with_budget(budget: Budget) -> PrepareOpts {
    PrepareOpts {
        budget,
        ..PrepareOpts::default()
    }
}

// -------------------------------------------------------------------
// Budgets.
// -------------------------------------------------------------------

#[test]
fn tiny_node_budget_is_a_typed_error_with_partial_stats() {
    let g = blue_grid(12, 12);
    let opts = opts_with_budget(Budget::UNLIMITED.with_node_expansions(8));
    match PreparedQuery::prepare(&g, &far_query(), &opts) {
        Err(PrepareError::BudgetExceeded { exceeded, partial }) => {
            assert_eq!(exceeded.resource, Resource::NodeExpansions);
            assert!(exceeded.spent > exceeded.cap, "{exceeded}");
            // The partial stats are non-empty: they carry the compiled
            // branch count, the spend, and the step-down reason.
            assert_ne!(*partial, PrepareStats::default());
            assert!(partial.budget_nodes_spent > 0);
            assert!(matches!(
                partial.degradation_reason,
                Some(DegradationReason::BudgetExceeded(_))
            ));
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn tiny_memory_budget_is_a_typed_error() {
    let g = blue_grid(12, 12);
    let opts = opts_with_budget(Budget::UNLIMITED.with_memory_bytes(64));
    match PreparedQuery::prepare(&g, &far_query(), &opts) {
        Err(PrepareError::BudgetExceeded { exceeded, .. }) => {
            assert_eq!(exceeded.resource, Resource::MemoryBytes);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn zero_wall_clock_budget_is_a_typed_error() {
    let g = blue_grid(16, 16);
    let opts = opts_with_budget(Budget::UNLIMITED.with_wall_clock(std::time::Duration::ZERO));
    match PreparedQuery::prepare(&g, &far_query(), &opts) {
        Err(PrepareError::BudgetExceeded { exceeded, .. }) => {
            assert_eq!(exceeded.resource, Resource::WallClockMs);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn strict_mode_reports_the_first_budget_failure() {
    let g = blue_grid(12, 12);
    let mut opts = opts_with_budget(Budget::UNLIMITED.with_node_expansions(8));
    opts.allow_fallback = false;
    assert!(matches!(
        PreparedQuery::prepare(&g, &far_query(), &opts),
        Err(PrepareError::BudgetExceeded { .. })
    ));
}

#[test]
fn budget_sweep_ok_results_are_correct_and_errors_are_typed() {
    let g = blue_grid(8, 8);
    let q = far_query();
    let want = materialize(&g, &q);
    let mut saw_err = false;
    let mut saw_ok = false;
    for shift in 0..22 {
        let opts = opts_with_budget(Budget::UNLIMITED.with_node_expansions(1 << shift));
        match PreparedQuery::prepare(&g, &q, &opts) {
            Ok(pq) => {
                saw_ok = true;
                assert_eq!(pq.enumerate().collect::<Vec<_>>(), want, "cap 2^{shift}");
            }
            Err(PrepareError::BudgetExceeded { .. }) => saw_err = true,
            Err(other) => panic!("unexpected error at cap 2^{shift}: {other:?}"),
        }
    }
    assert!(saw_err, "the smallest caps must exceed");
    assert!(saw_ok, "the largest caps must succeed");
}

#[test]
fn unlimited_budget_reports_indexed_rung_and_spend() {
    let g = blue_grid(8, 8);
    let pq = PreparedQuery::prepare(&g, &far_query(), &PrepareOpts::default()).unwrap();
    let s = pq.stats();
    assert_eq!(s.rung, DegradationRung::Indexed);
    assert!(s.degradation_reason.is_none());
    assert!(
        s.budget_nodes_spent > 0,
        "preparation must charge something"
    );
}

// -------------------------------------------------------------------
// The degradation ladder.
// -------------------------------------------------------------------

#[test]
fn non_fragment_query_records_fallback_rung_and_reason() {
    let g = blue_grid(4, 4);
    let q = parse_query("exists u. (E(x,u) && E(u,y)) && x != y").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.engine_kind(), EngineKind::Naive);
    let s = pq.stats();
    assert_eq!(s.rung, DegradationRung::NaiveFallback);
    assert!(matches!(
        s.degradation_reason,
        Some(DegradationReason::UnsupportedFragment(_))
    ));
}

#[test]
fn strict_mode_rejects_non_fragment_queries() {
    let g = blue_grid(4, 4);
    let q = parse_query("exists u. (E(x,u) && E(u,y)) && x != y").unwrap();
    let opts = PrepareOpts {
        allow_fallback: false,
        ..PrepareOpts::default()
    };
    assert!(matches!(
        PreparedQuery::prepare(&g, &q, &opts),
        Err(PrepareError::UnsupportedFragment(_))
    ));
}

#[test]
fn relational_atoms_never_fall_back_to_naive() {
    // The naive engine cannot evaluate R(x,y) over a colored graph, so the
    // ladder must refuse instead of degrading into a panic.
    let g = blue_grid(4, 4);
    let x = VarId(0);
    let y = VarId(1);
    let q = Query::new(Formula::Rel("R".into(), vec![x, y]), vec![x, y]);
    for allow in [true, false] {
        let opts = PrepareOpts {
            allow_fallback: allow,
            ..PrepareOpts::default()
        };
        assert!(matches!(
            PreparedQuery::prepare(&g, &q, &opts),
            Err(PrepareError::UnsupportedFragment(
                UnsupportedReason::RelationalAtom(_)
            ))
        ));
    }
}

// -------------------------------------------------------------------
// Malformed inputs.
// -------------------------------------------------------------------

#[test]
fn degenerate_epsilon_is_rejected_up_front() {
    let g = blue_grid(4, 4);
    for eps in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let opts = PrepareOpts {
            epsilon: eps,
            ..PrepareOpts::default()
        };
        match PreparedQuery::prepare(&g, &far_query(), &opts) {
            Err(PrepareError::InvalidInput(_)) => {}
            other => panic!("ε = {eps}: expected InvalidInput, got {other:?}"),
        }
    }
}

#[test]
fn unknown_colors_are_rejected_not_panicked_on() {
    let g = generators::grid(4, 4); // no colors at all
    let q = parse_query("NoSuchColor(x) && E(x,y)").unwrap();
    assert!(matches!(
        PreparedQuery::prepare(&g, &q, &PrepareOpts::default()),
        Err(PrepareError::InvalidInput(_))
    ));

    let x = VarId(0);
    let q_by_id = Query::new(Formula::Color(ColorRef::Id(7), x), vec![x]);
    assert!(matches!(
        PreparedQuery::prepare(&g, &q_by_id, &PrepareOpts::default()),
        Err(PrepareError::InvalidInput(_))
    ));
}

#[test]
fn probe_validation_is_typed() {
    let g = blue_grid(4, 4);
    let pq = PreparedQuery::prepare(&g, &far_query(), &PrepareOpts::default()).unwrap();
    assert!(matches!(
        pq.try_test(&[0]),
        Err(QueryError::ArityMismatch {
            expected: 2,
            got: 1
        })
    ));
    assert!(matches!(
        pq.try_test(&[0, 10_000]),
        Err(QueryError::VertexOutOfRange { v: 10_000, .. })
    ));
    assert!(matches!(
        pq.try_next_solution(&[0, 0, 0]),
        Err(QueryError::ArityMismatch { .. })
    ));
    // Out-of-range `from` probes are semantically fine for successor
    // queries: they simply have no successor.
    assert_eq!(pq.try_next_solution(&[u32::MAX, u32::MAX]), Ok(None));
}

#[test]
fn removal_lemma_front_door_is_panic_free() {
    let g = blue_grid(4, 4);
    let q = parse_query("dist(x,y) <= 2").unwrap();
    // Removing a vertex that does not exist.
    assert!(nd_core::removal::try_remove_node(&g, &q.formula, &[], 10_000).is_err());
    // Relational atoms must be rewritten away first.
    let x = VarId(0);
    let rel = Formula::Rel("R".into(), vec![x]);
    assert!(nd_core::removal::try_remove_node(&g, &rel, &[], 0).is_err());
    // The happy path still works.
    assert!(nd_core::removal::try_remove_node(&g, &q.formula, &[], 3).is_ok());
}

#[test]
fn dynamic_index_front_door_is_panic_free() {
    use nd_core::{DynamicFarIndex, DynamicFarQuery};
    let g = blue_grid(4, 4);
    let tracker = nd_graph::BudgetTracker::unlimited();
    assert!(DynamicFarIndex::try_new(16, 4, f64::NAN).is_err());
    assert!(DynamicFarIndex::try_new(16, 4, 0.5).is_ok());
    assert!(DynamicFarQuery::try_new(&g, 2, &[10_000], 0.5, &tracker).is_err());
    assert!(DynamicFarQuery::try_new(&g, 2, &[0, 5], -1.0, &tracker).is_err());
    assert!(DynamicFarQuery::try_new(&g, 2, &[0, 5], 0.5, &tracker).is_ok());
}

#[test]
fn empty_and_degenerate_graphs_never_panic() {
    let empty = generators::path(0);
    let q = parse_query("E(x,y)").unwrap();
    for cap in [1, 1 << 20] {
        let opts = opts_with_budget(Budget::UNLIMITED.with_node_expansions(cap));
        if let Ok(pq) = PreparedQuery::prepare(&empty, &q, &opts) {
            assert_eq!(pq.enumerate().count(), 0);
        }
    }
    // A sentence over the empty graph.
    let s = parse_query("exists x. E(x,x)").unwrap();
    if let Ok(pq) = PreparedQuery::prepare(&empty, &s, &PrepareOpts::default()) {
        assert!(!pq.test(&[]));
    }
}

// -------------------------------------------------------------------
// Randomized fault injection.
// -------------------------------------------------------------------

fn graph_strategy() -> impl Strategy<Value = ColoredGraph> {
    (4usize..24, 0u64..500, 0usize..3).prop_map(|(n, seed, family)| {
        let mut g = match family {
            0 => generators::random_tree(n, seed),
            1 => generators::bounded_degree(n, 3, seed),
            _ => generators::cycle(n),
        };
        let blue: Vec<Vertex> = (0..n as Vertex)
            .filter(|v| (v.wrapping_mul(2654435761).wrapping_add(seed as u32)) % 3 == 0)
            .collect();
        g.add_color(blue, Some("Blue".into()));
        g
    })
}

/// A fragment query over x, y with a far or close constraint.
fn fragment_query_strategy() -> impl Strategy<Value = Query> {
    let x = VarId(0);
    let y = VarId(1);
    prop_oneof![
        (1u32..4).prop_map(move |d| Query::new(
            Formula::and([
                Formula::dist_gt(x, y, d),
                Formula::Color(ColorRef::Named("Blue".into()), y),
            ]),
            vec![x, y],
        )),
        (1u32..4).prop_map(move |d| Query::new(
            Formula::and([
                Formula::DistLe(x, y, d),
                Formula::Eq(x, x),
                Formula::Eq(y, y)
            ]),
            vec![x, y],
        )),
        Just(Query::new(
            Formula::and([
                Formula::Edge(x, y),
                Formula::Not(Box::new(Formula::Eq(x, y)))
            ]),
            vec![x, y],
        )),
    ]
}

/// A query guaranteed to be outside the distance-type fragment: a single
/// conjunct whose free variables span three positions.
fn non_fragment_query_strategy() -> impl Strategy<Value = Query> {
    let x = VarId(0);
    let y = VarId(1);
    let z = VarId(2);
    prop_oneof![
        Just(Formula::Or(vec![Formula::Edge(x, y), Formula::Edge(y, z),])),
        Just(Formula::Or(vec![
            Formula::Eq(x, z),
            Formula::And(vec![Formula::Edge(x, y), Formula::Edge(y, z)]),
        ])),
        (1u32..3)
            .prop_map(move |d| Formula::Or(vec![Formula::DistLe(x, z, d), Formula::Edge(y, z),])),
    ]
    .prop_map(move |wide| {
        Query::new(
            Formula::and([
                wide,
                Formula::Eq(x, x),
                Formula::Eq(y, y),
                Formula::Eq(z, z),
            ]),
            vec![x, y, z],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random tiny budgets: preparation either succeeds (and then agrees
    /// with naive semantics) or reports a typed budget error with
    /// non-empty partial stats — it never panics or hangs.
    #[test]
    fn random_budgets_never_panic(
        g in graph_strategy(),
        q in fragment_query_strategy(),
        cap in 1u64..50_000,
    ) {
        let opts = opts_with_budget(Budget::UNLIMITED.with_node_expansions(cap));
        match PreparedQuery::prepare(&g, &q, &opts) {
            Ok(pq) => {
                let want = materialize(&g, &q);
                prop_assert_eq!(pq.enumerate().collect::<Vec<_>>(), want);
            }
            Err(PrepareError::BudgetExceeded { exceeded, partial }) => {
                prop_assert_eq!(exceeded.resource, Resource::NodeExpansions);
                prop_assert_ne!(*partial, PrepareStats::default());
            }
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }

    /// Strict mode over random general-FO queries: always the typed
    /// fragment error, never a panic, never a silent naive fallback.
    #[test]
    fn strict_mode_never_silently_falls_back(
        g in graph_strategy(),
        q in non_fragment_query_strategy(),
    ) {
        let opts = PrepareOpts {
            allow_fallback: false,
            ..PrepareOpts::default()
        };
        match PreparedQuery::prepare(&g, &q, &opts) {
            Err(PrepareError::UnsupportedFragment(_)) => {}
            Ok(pq) => prop_assert!(
                false,
                "silently prepared a non-fragment query as {:?}",
                pq.engine_kind()
            ),
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }

    /// The same queries with fallback on: prepared naively, with the rung
    /// recorded, and matching naive semantics.
    #[test]
    fn permissive_mode_records_the_fallback(
        g in graph_strategy(),
        q in non_fragment_query_strategy(),
    ) {
        let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
        prop_assert_eq!(pq.stats().rung, DegradationRung::NaiveFallback);
        let want = materialize(&g, &q);
        prop_assert_eq!(pq.enumerate().collect::<Vec<_>>(), want);
    }

    /// Degenerate ε values over random graphs: typed rejection, no panic.
    #[test]
    fn random_epsilon_faults_never_panic(
        g in graph_strategy(),
        q in fragment_query_strategy(),
        scaled in -4i32..5,
    ) {
        // ε sweeps through negatives, zero, and valid magnitudes.
        let eps = scaled as f64 / 2.0;
        let opts = PrepareOpts {
            epsilon: eps,
            ..PrepareOpts::default()
        };
        match PreparedQuery::prepare(&g, &q, &opts) {
            Ok(pq) => {
                prop_assert!(eps > 0.0);
                let want = materialize(&g, &q);
                prop_assert_eq!(pq.enumerate().collect::<Vec<_>>(), want);
            }
            Err(PrepareError::InvalidInput(_)) => prop_assert!(eps <= 0.0),
            Err(other) => prop_assert!(false, "unexpected error: {other:?}"),
        }
    }
}
