//! `Enumerate` as a std iterator: fusedness, `size_hint` honesty, and
//! `enumerate_from` at the boundaries of the probe lattice (lex-maximal
//! tuple, arity 0, empty graph).

use nd_core::{PrepareOpts, PreparedQuery};
use nd_graph::{generators, ColoredGraph, Vertex};
use nd_logic::eval::materialize;
use nd_logic::parse_query;

fn blue(mut g: ColoredGraph, every: u32) -> ColoredGraph {
    let n = g.n() as Vertex;
    g.add_color(
        (0..n).filter(|v| v % every == 0).collect(),
        Some("Blue".into()),
    );
    g
}

fn prepared<'a>(g: &'a ColoredGraph, src: &str) -> PreparedQuery<&'a ColoredGraph> {
    let q = parse_query(src).unwrap();
    PreparedQuery::prepare(g, &q, &PrepareOpts::default()).unwrap()
}

#[test]
fn fused_after_none() {
    let g = blue(generators::path(12), 4);
    for src in [
        "Blue(x)",
        "Blue(x) && dist(x,y) <= 2",
        "E(x,y) || Blue(x) && Blue(y)",
    ] {
        let pq = prepared(&g, src);
        let mut it = pq.enumerate();
        let drained = it.by_ref().count();
        assert_eq!(drained, materialize(&g, &parse_query(src).unwrap()).len());
        // Fused contract: every poll after exhaustion stays `None` and the
        // size hint pins to exactly zero.
        for _ in 0..5 {
            assert_eq!(it.next(), None, "{src}");
            assert_eq!(it.size_hint(), (0, Some(0)), "{src}");
        }
    }
}

#[test]
fn size_hint_is_sound_throughout() {
    let g = blue(generators::grid(4, 4), 2);
    let pq = prepared(&g, "Blue(x) && E(x,y)");
    let total = pq.count();
    let mut it = pq.enumerate();
    let mut remaining = total;
    loop {
        let (lo, hi) = it.size_hint();
        assert!(lo <= remaining, "lower bound {lo} overshoots {remaining}");
        if let Some(hi) = hi {
            assert!(remaining <= hi, "upper bound {hi} undershoots {remaining}");
        }
        if it.next().is_none() {
            assert_eq!(remaining, 0);
            break;
        }
        remaining -= 1;
    }
}

#[test]
fn boolean_query_yields_one_empty_tuple() {
    let g = blue(generators::path(6), 1);
    // A true sentence: exactly one empty solution, exact size hints.
    let pq = prepared(&g, "exists u. Blue(u)");
    assert_eq!(pq.arity(), 0);
    let mut it = pq.enumerate();
    assert_eq!(it.size_hint(), (1, Some(1)));
    assert_eq!(it.next(), Some(vec![]));
    assert_eq!(it.size_hint(), (0, Some(0)));
    assert_eq!(it.next(), None);
    assert_eq!(it.next(), None);

    // A false sentence: exhausted from the start.
    let mut g2 = generators::path(6);
    g2.add_color(vec![], Some("Red".into()));
    let pq2 = prepared(&g2, "exists u. Red(u)");
    let mut it2 = pq2.enumerate();
    assert_eq!(it2.size_hint(), (0, Some(0)));
    assert_eq!(it2.next(), None);
}

#[test]
fn enumerate_from_resumes_mid_stream() {
    let g = blue(generators::cycle(14), 3);
    let src = "Blue(x) && dist(x,y) <= 3";
    let pq = prepared(&g, src);
    let all: Vec<Vec<Vertex>> = pq.enumerate().collect();
    assert_eq!(all, materialize(&g, &parse_query(src).unwrap()));
    // Resuming from any solution replays exactly the suffix from it.
    for (i, t) in all.iter().enumerate() {
        let suffix: Vec<Vec<Vertex>> = pq.enumerate_from(t).unwrap().collect();
        assert_eq!(suffix, all[i..], "resume at {t:?}");
    }
}

#[test]
fn enumerate_from_lex_maximal_tuple() {
    let g = blue(generators::path(9), 2);
    let n = g.n() as Vertex;
    let pq = prepared(&g, "Blue(x) && dist(x,y) <= 2");
    let top = vec![n - 1, n - 1];
    let mut it = pq.enumerate_from(&top).unwrap();
    // `[n-1, n-1]` is the last point of the probe lattice: the stream holds
    // it iff it is a solution, and is empty otherwise.
    let expect = if pq.test(&top) {
        vec![top.clone()]
    } else {
        vec![]
    };
    assert_eq!(it.by_ref().collect::<Vec<_>>(), expect);
    assert_eq!(it.next(), None);
    assert_eq!(it.size_hint(), (0, Some(0)));

    // Beyond-range components mean "no successor in this subrange" and must
    // not panic — the probe is clamped by next_solution's contract.
    assert_eq!(pq.enumerate_from(&[n, 0]).unwrap().count(), 0);
}

#[test]
fn enumerate_from_validates_probe_arity() {
    let g = blue(generators::path(5), 2);
    let pq = prepared(&g, "Blue(x) && E(x,y)");
    assert!(pq.enumerate_from(&[0]).is_err());
    assert!(pq.enumerate_from(&[0, 0, 0]).is_err());
    // Same contract on the empty graph, where the fast path short-circuits.
    let empty = nd_graph::GraphBuilder::new(0).build();
    let pq0 = prepared(&empty, "E(x,y)");
    assert!(pq0.enumerate_from(&[0]).is_err());
    assert_eq!(pq0.enumerate_from(&[0, 0]).unwrap().count(), 0);
}
