//! Edge cases for the prepared-query engine: degenerate arities, empty
//! predicates, probes at domain boundaries, fallback behaviour and stats.

use nd_core::{EngineKind, PrepareOpts, PreparedQuery};
use nd_graph::{generators, ColoredGraph, Vertex};
use nd_logic::eval::materialize;
use nd_logic::parse_query;

fn blue(mut g: ColoredGraph, every: u32) -> ColoredGraph {
    let n = g.n() as Vertex;
    g.add_color(
        (0..n).filter(|v| v % every == 0).collect(),
        Some("Blue".into()),
    );
    g
}

#[test]
fn unary_query_contract() {
    let g = blue(generators::path(30), 3);
    let q = parse_query("Blue(x)").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.arity(), 1);
    assert_eq!(pq.count(), 10);
    assert_eq!(pq.next_solution(&[4]), Some(vec![6]));
    assert_eq!(pq.next_solution(&[28]), None);
    assert!(pq.test(&[27]));
    assert!(!pq.test(&[1]));
}

#[test]
fn empty_color_everywhere() {
    let mut g = generators::grid(5, 5);
    g.add_color(vec![], Some("Blue".into()));
    for src in [
        "Blue(x)",
        "Blue(x) && E(x,y)",
        "dist(x,y) > 2 && Blue(y)",
        "Blue(x) || E(x,y)",
    ] {
        let q = parse_query(src).unwrap();
        let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
        assert_eq!(
            pq.enumerate().collect::<Vec<_>>(),
            materialize(&g, &q),
            "{src}"
        );
    }
}

#[test]
fn probe_at_domain_max() {
    let g = blue(generators::cycle(10), 2);
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    let last = vec![9, 9];
    assert_eq!(
        pq.next_solution(&last),
        materialize(&g, &q).into_iter().find(|t| t >= &last)
    );
}

#[test]
fn edgeless_graph() {
    let g = blue(generators::path(1), 1); // single vertex, no edges
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.enumerate().count(), 0);

    let mut iso = generators::path(0);
    iso.add_color(vec![], Some("Blue".into()));
    // Build a 6-vertex edgeless graph.
    let mut b = nd_graph::GraphBuilder::new(6);
    b.add_color((0..6).collect(), Some("Blue".into()));
    let g = b.build();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    // All distinct pairs are "far"; dist(x,x) = 0 fails dist > 2.
    assert_eq!(pq.enumerate().count(), 30);
}

#[test]
fn far_constraint_with_radius_exceeding_diameter() {
    let g = blue(generators::path(8), 1);
    let q = parse_query("dist(x,y) > 100 && Blue(y)").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.enumerate().count(), 0);

    // Two components at infinite distance do satisfy dist > 100.
    let g2 = blue(generators::random_forest(20, 0.5, 1), 1);
    let pq = PreparedQuery::prepare(&g2, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.enumerate().collect::<Vec<_>>(), materialize(&g2, &q));
}

#[test]
fn close_constraint_radius_exceeding_diameter() {
    let g = blue(generators::path(6), 1);
    let q = parse_query("dist(x,y) <= 50").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.enumerate().count(), 36);
}

#[test]
fn stats_shape() {
    let g = blue(generators::grid(8, 8), 3);
    let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    let s = pq.stats();
    assert_eq!(s.branches, 1);
    assert_eq!(s.active_branches, 1);
    assert_eq!(s.oracles, 1);
    assert!(s.cover_bags > 0);
    assert!(s.cover_total_size >= g.n());
    assert!(s.skip_entries > 0);
    assert!(s.naive_solutions.is_none());

    let fallback_q = parse_query("exists u. (E(x,u) && E(u,y)) && x != y").unwrap();
    let pq = PreparedQuery::prepare(&g, &fallback_q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.engine_kind(), EngineKind::Naive);
    assert!(pq.stats().naive_solutions.is_some());
}

#[test]
fn inactive_branch_via_false_sentence() {
    let g = blue(generators::path(10), 2);
    // The sentence `exists u. (Blue(u) && !Blue(u))` is false, deactivating
    // the branch.
    let q = parse_query("(exists u. (Blue(u) && !Blue(u))) && E(x,y)").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.enumerate().count(), 0);
    assert!(!pq.test(&[0, 1]));
    assert_eq!(pq.count(), 0);

    // A true independence sentence keeps it active.
    let q = parse_query("(exists u. exists w. (dist(u,w) > 3 && Blue(u) && Blue(w))) && E(x,y)")
        .unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.enumerate().count(), 18);
}

#[test]
fn multiple_constraints_same_pair() {
    let g = blue(generators::cycle(16), 2);
    // Annulus: 2 < dist ≤ 4.
    let q = parse_query("dist(x,y) > 2 && dist(x,y) <= 4 && Blue(y)").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    assert_eq!(pq.enumerate().collect::<Vec<_>>(), materialize(&g, &q));
    assert_eq!(pq.count(), materialize(&g, &q).len());
}

#[test]
fn head_reorders_answer_columns() {
    let g = blue(generators::path(12), 4);
    let fwd = parse_query("q(x, y) := dist(x,y) > 2 && Blue(y)").unwrap();
    let rev = parse_query("q(y, x) := dist(x,y) > 2 && Blue(y)").unwrap();
    let pq_f = PreparedQuery::prepare(&g, &fwd, &PrepareOpts::default()).unwrap();
    let pq_r = PreparedQuery::prepare(&g, &rev, &PrepareOpts::default()).unwrap();
    let mut swapped: Vec<Vec<Vertex>> = pq_f.enumerate().map(|t| vec![t[1], t[0]]).collect();
    swapped.sort();
    assert_eq!(pq_r.enumerate().collect::<Vec<_>>(), swapped);
}

#[test]
fn extra_head_variable_is_unconstrained() {
    let g = blue(generators::path(5), 2);
    let q = parse_query("q(x, y, z) := E(x, y)").unwrap();
    let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
    // 8 ordered edges × 5 choices of z.
    assert_eq!(pq.count(), 8 * 5);
    assert_eq!(pq.enumerate().collect::<Vec<_>>(), materialize(&g, &q));
}
