//! Pseudo-linear solution counting for fragment queries.
//!
//! The paper's introduction cites Grohe–Schweikardt (PODS'18) for counting
//! the solutions of FO queries over nowhere dense classes in pseudo-linear
//! time. For our distance-type fragment the counting problem decomposes
//! along the connected components of the constraint graph on positions:
//!
//! * components are independent, so counts multiply;
//! * a singleton component contributes `|L_j|`;
//! * a two-position component contributes a sum over the smaller side of
//!   ball-local counts (`Σ_a |L_j ∩ N_d(a)|` and complements), each ball
//!   scanned once — `O(Σ_a ‖N_r(a)‖)`, pseudo-linear on sparse graphs.
//!
//! Components with three or more positions (and multi-branch unions) fall
//! back to enumeration counting.

use crate::engine::fragment::{BinKind, FragmentQuery};
use nd_graph::{BfsScratch, ColoredGraph, Vertex};

/// Try to count solutions of a single fragment branch in pseudo-linear
/// time. Returns `None` when some constraint component has ≥ 3 positions
/// (caller falls back to enumeration).
pub fn fast_count(
    g: &ColoredGraph,
    fq: &FragmentQuery,
    active: bool,
    unary_lists: &[Vec<Vertex>],
    unary_bits: &[Vec<bool>],
) -> Option<u64> {
    if !active {
        return Some(0);
    }
    // Connected components of the constraint graph on positions.
    let k = fq.k;
    let mut comp = (0..k).collect::<Vec<usize>>();
    fn find(comp: &mut Vec<usize>, i: usize) -> usize {
        if comp[i] != i {
            let root = find(comp, comp[i]);
            comp[i] = root;
        }
        comp[i]
    }
    for c in &fq.binary {
        let (a, b) = (find(&mut comp, c.i), find(&mut comp, c.j));
        if a != b {
            comp[a] = b;
        }
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for i in 0..k {
        let root = find(&mut comp, i);
        members[root].push(i);
    }

    let mut total: u64 = 1;
    for group in members.into_iter().filter(|m| !m.is_empty()) {
        let part = match group.len() {
            1 => unary_lists[group[0]].len() as u64,
            2 => count_pair(g, fq, group[0], group[1], unary_lists, unary_bits)?,
            _ => return None,
        };
        total = total.checked_mul(part)?;
        if total == 0 {
            return Some(0);
        }
    }
    Some(total)
}

/// Count solutions of a two-position component: all constraints relate
/// positions `i < j`.
fn count_pair(
    g: &ColoredGraph,
    fq: &FragmentQuery,
    i: usize,
    j: usize,
    unary_lists: &[Vec<Vertex>],
    unary_bits: &[Vec<bool>],
) -> Option<u64> {
    let constraints: Vec<BinKind> = fq
        .binary
        .iter()
        .filter(|c| c.i == i && c.j == j)
        .map(|c| c.kind)
        .collect();
    debug_assert!(!constraints.is_empty());
    let li = &unary_lists[i];
    let lj_bits = &unary_bits[j];
    let lj_size = unary_lists[j].len() as u64;

    // Classify into: the tightest ball bound (min Le radius; Edge is a
    // separate adjacency test; Eq pins), the widest exclusion (max Gt
    // radius), and boolean filters.
    let mut min_le: Option<u32> = None;
    let mut max_gt: Option<u32> = None;
    let mut need_edge = false;
    let mut need_not_edge = false;
    let mut need_eq = false;
    let mut need_neq = false;
    for k2 in &constraints {
        match *k2 {
            BinKind::Le(d) => min_le = Some(min_le.map_or(d, |m| m.min(d))),
            BinKind::Gt(d) => max_gt = Some(max_gt.map_or(d, |m| m.max(d))),
            BinKind::Edge => need_edge = true,
            BinKind::NotEdge => need_not_edge = true,
            BinKind::Eq => need_eq = true,
            BinKind::Neq => need_neq = true,
        }
    }
    if need_eq && need_neq {
        return Some(0);
    }

    let mut scratch = BfsScratch::new(g.n());
    let mut total = 0u64;
    for &a in li {
        // Per anchor: count b ∈ L_j satisfying everything. Work inside the
        // largest relevant ball; the unbounded remainder (`dist > max_gt`)
        // is |L_j| minus the in-ball part.
        let count_b = if need_eq {
            // b = a: Le(d) always holds (dist 0), Gt(d) never (d ≥ 0),
            // Edge never (no self-loops), NotEdge always, Neq never.
            let ok = lj_bits[a as usize] && max_gt.is_none() && !need_edge && !need_neq;
            ok as u64
        } else {
            match (min_le, max_gt) {
                (Some(le), gt) => {
                    // Enumerate the ball N_le(a), test each member.
                    if gt.is_some_and(|d| d >= le) {
                        0 // dist ≤ le and dist > d ≥ le is unsatisfiable
                    } else {
                        scratch.run(g, a, le);
                        let mut cnt = 0u64;
                        for &b in scratch.reached() {
                            if !lj_bits[b as usize] {
                                continue;
                            }
                            if gt.is_some_and(|d| scratch.dist(b) <= d) {
                                continue;
                            }
                            if need_edge && !g.has_edge(a, b) {
                                continue;
                            }
                            if need_not_edge && g.has_edge(a, b) {
                                continue;
                            }
                            if need_neq && a == b {
                                continue;
                            }
                            cnt += 1;
                        }
                        cnt
                    }
                }
                (None, Some(gt)) => {
                    // Complement counting: |L_j| minus the in-ball part,
                    // with edge/eq filters folded in.
                    scratch.run(g, a, gt);
                    let mut in_ball = 0u64;
                    for &b in scratch.reached() {
                        if lj_bits[b as usize] {
                            in_ball += 1;
                        }
                    }
                    let mut cnt = lj_size - in_ball;
                    // Far vertices are automatically ≠ a and non-adjacent
                    // (gt ≥ 0 excludes a; gt ≥ 1 excludes neighbors).
                    if need_edge {
                        cnt = 0; // edge ⇒ dist ≤ 1 ≤ gt.max(1): contradiction when gt ≥ 1; gt = 0 normalized to Neq
                    }
                    let _ = need_not_edge; // vacuous beyond the ball
                    let _ = need_neq; // vacuous beyond the ball
                    cnt
                }
                (None, None) => {
                    // Only edge/equality constraints.
                    let mut cnt;
                    if need_edge {
                        cnt = g
                            .neighbors(a)
                            .iter()
                            .filter(|&&b| lj_bits[b as usize])
                            .count() as u64;
                        // need_neq vacuous (no self-loops); need_not_edge
                        // contradicts.
                        if need_not_edge {
                            cnt = 0;
                        }
                    } else {
                        cnt = lj_size;
                        if need_not_edge {
                            cnt -= g
                                .neighbors(a)
                                .iter()
                                .filter(|&&b| lj_bits[b as usize])
                                .count() as u64;
                        }
                        if need_neq && lj_bits[a as usize] {
                            cnt -= 1;
                        }
                    }
                    cnt
                }
            }
        };
        total += count_b;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrepareOpts, PreparedQuery};
    use nd_graph::generators;
    use nd_logic::eval::materialize;
    use nd_logic::parse_query;

    fn colored(mut g: ColoredGraph) -> ColoredGraph {
        let n = g.n() as Vertex;
        g.add_color((0..n).filter(|v| v % 3 == 0).collect(), Some("Blue".into()));
        g.add_color((0..n).filter(|v| v % 5 == 1).collect(), Some("Red".into()));
        g
    }

    #[test]
    fn counts_match_materialization() {
        for g in [
            colored(generators::grid(7, 7)),
            colored(generators::random_tree(50, 2)),
            colored(generators::cycle(30)),
        ] {
            for src in [
                "dist(x,y) > 2 && Blue(y)",
                "dist(x,y) <= 3 && Blue(x) && Red(y)",
                "E(x,y) && Blue(x)",
                "Blue(x) && !E(x,y) && x != y",
                "Blue(x) && Red(y)",
                "dist(x,y) > 1 && dist(x,y) <= 4 && Red(y)",
                "q(x,y,z) := dist(x,y) > 3 && Blue(z)", // pair ⊗ singleton
                "x = y && Blue(x)",
            ] {
                let q = parse_query(src).unwrap();
                let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
                let want = materialize(&g, &q).len();
                assert_eq!(pq.count(), want, "query {src}");
            }
        }
    }

    #[test]
    fn triangle_component_falls_back() {
        let g = colored(generators::grid(5, 5));
        let q = parse_query("dist(x,y) > 2 && dist(y,z) > 2 && dist(x,z) > 2").unwrap();
        let pq = PreparedQuery::prepare(&g, &q, &PrepareOpts::default()).unwrap();
        assert_eq!(pq.count(), materialize(&g, &q).len());
    }
}
