//! The prepared-query front-end: **Theorem 2.3** (next solution),
//! **Corollary 2.4** (testing) and **Corollary 2.5** (constant-delay
//! enumeration in lexicographic order).
//!
//! Preparation (Section 5.2.1, adapted to the fragment of
//! [`crate::engine::fragment`]):
//!
//! 1. check the branch's sentences (the `ξ` analogues) once;
//! 2. evaluate every unary formula `U_i` for all vertices (Unary Theorem
//!    substitute) into sorted lists `L_i` + membership bitsets;
//! 3. build one distance oracle (Prop 4.2) per distinct constraint radius;
//! 4. build a `2r`-cover, its `r`-kernels, and — for every position with a
//!    far constraint — skip pointers (Lemma 5.8) over `L_j`.
//!
//! Answering (Section 5.2.2, adapted): `next_value(prefix, j, b)` — the
//! Lemma 5.2 primitive — finds the smallest admissible value `≥ b` for
//! position `j` by case analysis on the constraints to the prefix:
//!
//! * an equality pins the candidate; an edge constraint scans the anchor's
//!   adjacency list; a `dist ≤ d` constraint scans the anchor's cover bag
//!   through the Storing-Theorem successor structure (candidates are
//!   confined to the bag because `N_d(a) ⊆ X(a)`) — the paper's "Case II";
//! * far-only constraints take the minimum of (a) per-anchor scans of the
//!   kernels `K_r(X(a_i))` and (b) a `SKIP` jump over `L_j` past all those
//!   kernels, which is guaranteed far because outside `K_r(X(a))` implies
//!   `dist(·, a) > r` under a `2r`-cover — the paper's "Case I";
//! * no constraints: the successor in `L_j`.
//!
//! `next_solution` is then the Theorem 5.1 ⇆ Lemma 5.2 mutual induction,
//! realized as lexicographic backtracking over `next_value` with an
//! extendability pre-check per future position. Per-candidate work is
//! `O(1)`; the number of candidates inspected per output is bounded by bag/
//! kernel sizes — independent of `n` on sparse families (measured in E5/E7;
//! see DESIGN.md §2 for how this relates to the paper's strictly-constant
//! delay).

use crate::dist::{DistOracle, DistOracleOpts};
use crate::engine::fragment::{compile, BinKind, FragmentQuery, UnsupportedReason};
use crate::engine::naive::NaiveEngine;
use crate::error::{InvalidInput, PrepareError, QueryError};
use crate::skip::SkipPointers;
use nd_cover::{Cover, KernelIndex};
use nd_graph::budget::{Budget, BudgetExceeded, BudgetTracker, Phase, Resource};
use nd_graph::par::try_parallel_map;
use nd_graph::{ColoredGraph, Vertex};
use nd_logic::ast::{ColorRef, Formula, Query};
use nd_logic::eval::eval;
use nd_logic::locality::evaluate_unary;
use nd_persist::{
    malformed, parse_container_frames, ContainerWriter, PersistError, Reader, SectionFrame, Writer,
};
use std::borrow::Borrow;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Preparation options.
#[derive(Clone, Debug)]
pub struct PrepareOpts {
    /// The pseudo-linearity accuracy `ε` used by covers and stores.
    pub epsilon: f64,
    /// Distance-oracle construction knobs.
    pub dist: DistOracleOpts,
    /// Fall back to the naive engine when the query is outside the
    /// fragment (`true`), or report the reason (`false`). Also gates the
    /// budget-degradation rungs of the ladder (see
    /// [`PreparedQuery::prepare`]).
    pub allow_fallback: bool,
    /// Prune backtracking with per-future-position extendability checks.
    pub extendability_check: bool,
    /// Resource caps for the preprocessing phases. Unlimited by default;
    /// a capped run degrades down the ladder and ultimately returns
    /// [`PrepareError::BudgetExceeded`] instead of hanging.
    pub budget: Budget,
    /// Worker threads for the parallel preprocessing phases (branch
    /// fan-out, unary-list evaluation, per-bag kernels, per-position skip
    /// pointers). `1` = fully sequential (the default); `0` = use the
    /// host's available parallelism. The produced index is identical for
    /// every thread count — the fan-out units are pure functions merged by
    /// input slot, and the shared budget tracker enforces one total cap.
    pub threads: usize,
}

impl Default for PrepareOpts {
    fn default() -> Self {
        PrepareOpts {
            epsilon: 0.5,
            dist: DistOracleOpts::default(),
            allow_fallback: true,
            extendability_check: true,
            budget: Budget::UNLIMITED,
            threads: 1,
        }
    }
}

/// Which rung of the graceful-degradation ladder produced the index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradationRung {
    /// The paper's machinery at the requested `ε`.
    #[default]
    Indexed,
    /// The paper's machinery after a budget overrun forced a coarser `ε`
    /// (flatter stores, fewer/larger structures).
    CoarsenedEpsilon,
    /// Naive materialization (budget-checked).
    NaiveFallback,
}

/// Why preparation stepped down from the previous rung.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DegradationReason {
    /// The query is outside the distance-type fragment.
    UnsupportedFragment(UnsupportedReason),
    /// A budget cap interrupted the previous rung.
    BudgetExceeded(BudgetExceeded),
}

/// Sizes of a prepared query's index structures (see
/// [`PreparedQuery::stats`]), plus which degradation rung produced them
/// and what the preparation spent against its budget.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PrepareStats {
    /// The ladder rung that produced the index.
    pub rung: DegradationRung,
    /// Why the ladder stepped below [`DegradationRung::Indexed`] (absent
    /// when the first rung succeeded).
    pub degradation_reason: Option<DegradationReason>,
    /// Node-expansion charges accumulated by the successful rung (or, in
    /// the `partial` stats of [`PrepareError::BudgetExceeded`], by the
    /// last rung attempted).
    pub budget_nodes_spent: u64,
    /// Wall-clock milliseconds consumed by the same rung.
    pub budget_ms_spent: u64,
    /// Union branches compiled.
    pub branches: usize,
    /// Branches whose sentences held.
    pub active_branches: usize,
    /// Distance oracles built (one per distinct constraint radius/branch).
    pub oracles: usize,
    /// Total vertices materialized across all oracle recursion levels.
    pub oracle_vertices: usize,
    /// Deepest oracle recursion.
    pub oracle_depth: u32,
    /// Bags across all branch covers.
    pub cover_bags: usize,
    /// `Σ|X|` across all branch covers.
    pub cover_total_size: usize,
    /// Maximum cover degree.
    pub cover_degree: usize,
    /// `Σ_j |L_j|` across branches.
    pub unary_list_sizes: usize,
    /// Total tabulated skip-pointer entries.
    pub skip_entries: usize,
    /// Whether any skip table hit its size cap.
    pub skip_truncated: bool,
    /// For the naive engine: the materialized solution count.
    pub naive_solutions: Option<usize>,
    /// Resolved worker-thread count the prepare ran with.
    pub threads: usize,
    /// Per-phase wall-clock breakdown, summed across branches (so with a
    /// parallel branch fan-out these behave like CPU time, not elapsed
    /// time): greedy cover construction, …
    pub cover_ms: u64,
    /// … per-bag kernel computation (Lemma 5.7), …
    pub kernel_ms: u64,
    /// … the Storing-Theorem membership store build (trie inserts), …
    pub store_ms: u64,
    /// … and the skip-pointer closure (Lemma 5.8).
    pub skip_ms: u64,
}

impl DegradationRung {
    /// Stable machine-readable name (used in JSON and CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            DegradationRung::Indexed => "indexed",
            DegradationRung::CoarsenedEpsilon => "coarsened_epsilon",
            DegradationRung::NaiveFallback => "naive_fallback",
        }
    }
}

impl PrepareStats {
    /// Serde-free JSON rendering (see `nd_graph::json`): one flat object,
    /// stable keys, suitable for bench artifacts and the serving metrics
    /// endpoint.
    pub fn to_json(&self) -> String {
        use nd_graph::json::JsonObject;
        let mut o = JsonObject::new();
        o.field_str("rung", self.rung.name());
        match &self.degradation_reason {
            Some(r) => o.field_str("degradation_reason", &format!("{r:?}")),
            None => o.field_null("degradation_reason"),
        };
        o.field_u64("budget_nodes_spent", self.budget_nodes_spent)
            .field_u64("budget_ms_spent", self.budget_ms_spent)
            .field_u64("branches", self.branches as u64)
            .field_u64("active_branches", self.active_branches as u64)
            .field_u64("oracles", self.oracles as u64)
            .field_u64("oracle_vertices", self.oracle_vertices as u64)
            .field_u64("oracle_depth", self.oracle_depth as u64)
            .field_u64("cover_bags", self.cover_bags as u64)
            .field_u64("cover_total_size", self.cover_total_size as u64)
            .field_u64("cover_degree", self.cover_degree as u64)
            .field_u64("unary_list_sizes", self.unary_list_sizes as u64)
            .field_u64("skip_entries", self.skip_entries as u64)
            .field_bool("skip_truncated", self.skip_truncated);
        match self.naive_solutions {
            Some(c) => o.field_u64("naive_solutions", c as u64),
            None => o.field_null("naive_solutions"),
        };
        o.field_u64("threads", self.threads as u64)
            .field_u64("cover_ms", self.cover_ms)
            .field_u64("kernel_ms", self.kernel_ms)
            .field_u64("store_ms", self.store_ms)
            .field_u64("skip_ms", self.skip_ms);
        o.finish()
    }

    /// The timing-free view of the stats: every field that must be
    /// identical when two prepares of the same inputs are compared
    /// (e.g. sequential vs. parallel), with wall-clock measurements and
    /// the thread count zeroed out. `budget_nodes_spent` is kept — charge
    /// totals are deterministic counts of work done, not timings.
    pub fn structural(&self) -> PrepareStats {
        PrepareStats {
            budget_ms_spent: 0,
            threads: 0,
            cover_ms: 0,
            kernel_ms: 0,
            store_ms: 0,
            skip_ms: 0,
            ..self.clone()
        }
    }
}

/// Which engine backs a prepared query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// The paper's machinery, with this many union branches.
    Indexed { branches: usize },
    /// Naive materialization (fallback / baseline).
    Naive,
}

/// A query prepared against a fixed graph (Theorem 2.3's data structure).
///
/// Generic over how the graph is owned: `G` is anything that can lend a
/// [`ColoredGraph`] — a plain `&ColoredGraph` for the classic borrowed
/// use, or an [`Arc<ColoredGraph>`] for a self-contained `Send + Sync`
/// value that serving runtimes (`nd-serve`) can share across threads.
/// Every index structure inside is owned, so the only question is who
/// owns the graph itself.
pub struct PreparedQuery<G: Borrow<ColoredGraph>> {
    g: G,
    arity: usize,
    engine: EngineImpl,
    rung: DegradationRung,
    degradation_reason: Option<DegradationReason>,
    budget_nodes_spent: u64,
    budget_ms_spent: u64,
    threads_used: usize,
}

/// A [`PreparedQuery`] that co-owns its graph through an [`Arc`]: fully
/// self-contained, `Send + Sync`, cheap to hand to worker threads.
pub type SharedPreparedQuery = PreparedQuery<Arc<ColoredGraph>>;

enum EngineImpl {
    Indexed(Vec<BranchEngine>),
    Naive(NaiveEngine),
}

impl<G: Borrow<ColoredGraph>> std::fmt::Debug for PreparedQuery<G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("arity", &self.arity)
            .field("engine", &self.engine_kind())
            .field("rung", &self.rung)
            .finish_non_exhaustive()
    }
}

/// Reject color references the graph cannot resolve — `eval` and
/// `evaluate_unary` would panic on them far from the input boundary.
fn validate_colors(g: &ColoredGraph, f: &Formula) -> Result<(), PrepareError> {
    match f {
        Formula::Color(ColorRef::Named(name), _) if g.color_by_name(name).is_none() => {
            return Err(PrepareError::InvalidInput(InvalidInput::UnknownColor(
                name.clone(),
            )));
        }
        Formula::Color(ColorRef::Id(i), _) if (*i as usize) >= g.num_colors() => {
            return Err(PrepareError::InvalidInput(InvalidInput::UnknownColorId(*i)));
        }
        Formula::Not(inner) | Formula::Exists(_, inner) | Formula::Forall(_, inner) => {
            validate_colors(g, inner)?
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                validate_colors(g, sub)?;
            }
        }
        _ => {}
    }
    Ok(())
}

impl<G: Borrow<ColoredGraph>> PreparedQuery<G> {
    /// Preprocess `q` over `g`. Pseudo-linear for fragment queries;
    /// `O(n^k)`-ish for fallback queries.
    ///
    /// Never panics on malformed input. Runs the graceful-degradation
    /// ladder:
    ///
    /// 1. **Indexed** — the paper's machinery at `opts.epsilon`, within
    ///    `opts.budget`;
    /// 2. **CoarsenedEpsilon** — on a budget overrun, one retry with
    ///    `min(2ε, 1)` (fewer/flatter structures), with a fresh budget;
    /// 3. **NaiveFallback** — budget-checked materialization, also used
    ///    when the query is outside the fragment;
    /// 4. a typed [`PrepareError`] when every permitted rung fails.
    ///
    /// Rungs 2–3 require `opts.allow_fallback`; with it off, the first
    /// failure is reported directly. The chosen rung and the reason for
    /// any step-down are recorded in [`PreparedQuery::stats`]. Relational
    /// atoms never fall back (naive evaluation cannot interpret them over
    /// a colored graph): they always yield
    /// [`PrepareError::UnsupportedFragment`].
    pub fn prepare(g: G, q: &Query, opts: &PrepareOpts) -> Result<PreparedQuery<G>, PrepareError> {
        if !(opts.epsilon.is_finite() && opts.epsilon > 0.0) {
            return Err(PrepareError::InvalidInput(InvalidInput::BadEpsilon(
                opts.epsilon,
            )));
        }
        let gr = g.borrow();
        validate_colors(gr, &q.formula)?;
        let threads = nd_graph::resolve_threads(opts.threads);

        let branches = match compile(q) {
            Ok(branches) => branches,
            Err(reason @ UnsupportedReason::RelationalAtom(_)) => {
                return Err(PrepareError::UnsupportedFragment(reason))
            }
            Err(reason) if opts.allow_fallback => {
                let tracker = opts.budget.start();
                return match NaiveEngine::try_prepare(gr, q, &tracker) {
                    Ok(n) => Ok(Self::from_naive(
                        g,
                        q.arity(),
                        n,
                        DegradationReason::UnsupportedFragment(reason),
                        &tracker,
                        threads,
                    )),
                    Err(e) => Err(Self::budget_error(e, 0, &tracker)),
                };
            }
            Err(reason) => return Err(PrepareError::UnsupportedFragment(reason)),
        };

        // Rung 1: indexed at the requested ε.
        let tracker = opts.budget.start();
        let exceeded = match Self::try_indexed(gr, &branches, opts, opts.epsilon, &tracker) {
            Ok(engines) => {
                return Ok(PreparedQuery {
                    arity: q.arity(),
                    engine: EngineImpl::Indexed(engines),
                    rung: DegradationRung::Indexed,
                    degradation_reason: None,
                    budget_nodes_spent: tracker.nodes_spent(),
                    budget_ms_spent: tracker.elapsed().as_millis() as u64,
                    threads_used: threads,
                    g,
                })
            }
            Err(e) => e,
        };

        // Rung 2: coarser ε, fresh budget (skipped when ε is already ≥ 1,
        // where coarsening buys nothing).
        let coarse = (opts.epsilon * 2.0).min(1.0);
        if opts.allow_fallback && coarse > opts.epsilon {
            let tracker2 = opts.budget.start();
            if let Ok(engines) = Self::try_indexed(gr, &branches, opts, coarse, &tracker2) {
                return Ok(PreparedQuery {
                    arity: q.arity(),
                    engine: EngineImpl::Indexed(engines),
                    rung: DegradationRung::CoarsenedEpsilon,
                    degradation_reason: Some(DegradationReason::BudgetExceeded(exceeded)),
                    budget_nodes_spent: tracker2.nodes_spent(),
                    budget_ms_spent: tracker2.elapsed().as_millis() as u64,
                    threads_used: threads,
                    g,
                });
            }
        }

        // Rung 3: budget-checked naive materialization.
        if opts.allow_fallback {
            let tracker3 = opts.budget.start();
            return match NaiveEngine::try_prepare(gr, q, &tracker3) {
                Ok(n) => Ok(Self::from_naive(
                    g,
                    q.arity(),
                    n,
                    DegradationReason::BudgetExceeded(exceeded),
                    &tracker3,
                    threads,
                )),
                Err(e) => Err(Self::budget_error(e, branches.len(), &tracker3)),
            };
        }
        Err(Self::budget_error(exceeded, branches.len(), &tracker))
    }

    /// Prepare every union branch, fanned across `opts.threads` workers.
    /// Branches only read the immutable graph and their own compiled
    /// form, and the merge is by branch index, so the result is identical
    /// to the sequential loop; the shared `tracker` keeps one total
    /// budget across all workers.
    fn try_indexed(
        g: &ColoredGraph,
        branches: &[FragmentQuery],
        opts: &PrepareOpts,
        epsilon: f64,
        tracker: &BudgetTracker,
    ) -> Result<Vec<BranchEngine>, BudgetExceeded> {
        try_parallel_map(opts.threads, branches, |_, fq| {
            BranchEngine::try_prepare(g, fq.clone(), opts, epsilon, tracker)
        })
    }

    fn from_naive(
        g: G,
        arity: usize,
        n: NaiveEngine,
        reason: DegradationReason,
        tracker: &BudgetTracker,
        threads: usize,
    ) -> PreparedQuery<G> {
        PreparedQuery {
            g,
            arity,
            engine: EngineImpl::Naive(n),
            rung: DegradationRung::NaiveFallback,
            degradation_reason: Some(reason),
            budget_nodes_spent: tracker.nodes_spent(),
            budget_ms_spent: tracker.elapsed().as_millis() as u64,
            threads_used: threads,
        }
    }

    /// Build the `BudgetExceeded` error with partial stats — the spend of
    /// the last rung attempted, so callers can see how far preparation got.
    fn budget_error(
        exceeded: BudgetExceeded,
        branches: usize,
        tracker: &BudgetTracker,
    ) -> PrepareError {
        let partial = Box::new(PrepareStats {
            branches,
            degradation_reason: Some(DegradationReason::BudgetExceeded(exceeded.clone())),
            budget_nodes_spent: tracker.nodes_spent(),
            budget_ms_spent: tracker.elapsed().as_millis() as u64,
            ..PrepareStats::default()
        });
        PrepareError::BudgetExceeded { exceeded, partial }
    }

    /// Which engine ended up backing the query.
    pub fn engine_kind(&self) -> EngineKind {
        match &self.engine {
            EngineImpl::Indexed(bs) => EngineKind::Indexed { branches: bs.len() },
            EngineImpl::Naive(_) => EngineKind::Naive,
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The graph this query was prepared against.
    pub fn graph(&self) -> &ColoredGraph {
        self.g.borrow()
    }

    /// Sizes of the preprocessed structures (index observability; used by
    /// the experiment harness to verify pseudo-linearity).
    pub fn stats(&self) -> PrepareStats {
        let mut s = PrepareStats {
            rung: self.rung,
            degradation_reason: self.degradation_reason.clone(),
            budget_nodes_spent: self.budget_nodes_spent,
            budget_ms_spent: self.budget_ms_spent,
            threads: self.threads_used,
            ..PrepareStats::default()
        };
        match &self.engine {
            EngineImpl::Naive(n) => {
                s.naive_solutions = Some(n.count());
            }
            EngineImpl::Indexed(bs) => {
                s.branches = bs.len();
                for b in bs {
                    s.active_branches += b.active as usize;
                    s.oracles += b.oracles.len();
                    for o in b.oracles.values() {
                        let os = o.stats();
                        s.oracle_vertices += os.total_vertices;
                        s.oracle_depth = s.oracle_depth.max(os.depth);
                    }
                    if let Some(c) = &b.cover {
                        s.cover_bags += c.num_bags();
                        s.cover_total_size += c.total_bag_size();
                        s.cover_degree = s.cover_degree.max(c.degree());
                    }
                    s.unary_list_sizes += b.unary_lists.iter().map(Vec::len).sum::<usize>();
                    for sp in b.skips.iter().flatten() {
                        s.skip_entries += sp.table_len();
                        s.skip_truncated |= sp.truncated();
                    }
                    s.cover_ms += b.timings.cover_ms;
                    s.kernel_ms += b.timings.kernel_ms;
                    s.store_ms += b.timings.store_ms;
                    s.skip_ms += b.timings.skip_ms;
                }
            }
        }
        s
    }

    /// **Corollary 2.4**: is `tuple` a solution? Constant time. Rejects
    /// mis-sized or out-of-range probes with a typed error.
    pub fn try_test(&self, tuple: &[Vertex]) -> Result<bool, QueryError> {
        let g = self.g.borrow();
        if tuple.len() != self.arity {
            return Err(QueryError::ArityMismatch {
                expected: self.arity,
                got: tuple.len(),
            });
        }
        if let Some(&v) = tuple.iter().find(|&&v| (v as usize) >= g.n()) {
            return Err(QueryError::VertexOutOfRange { v, n: g.n() });
        }
        Ok(match &self.engine {
            EngineImpl::Indexed(bs) => bs.iter().any(|b| b.test_tuple(g, tuple)),
            EngineImpl::Naive(n) => n.test(tuple),
        })
    }

    /// Panicking convenience over [`PreparedQuery::try_test`] for
    /// pre-validated tuples.
    pub fn test(&self, tuple: &[Vertex]) -> bool {
        self.try_test(tuple).expect("invalid probe tuple")
    }

    /// **Theorem 2.3**: the lexicographically smallest solution `≥ from`,
    /// or `None`. Rejects a mis-sized probe with a typed error
    /// (out-of-range components are fine: they just mean "no successor"
    /// in that subrange).
    pub fn try_next_solution(&self, from: &[Vertex]) -> Result<Option<Vec<Vertex>>, QueryError> {
        if from.len() != self.arity {
            return Err(QueryError::ArityMismatch {
                expected: self.arity,
                got: from.len(),
            });
        }
        let g = self.g.borrow();
        Ok(match &self.engine {
            EngineImpl::Indexed(bs) => {
                let candidates = bs.iter().filter_map(|b| b.next_solution(g, from));
                #[cfg(feature = "sabotage")]
                if crate::sabotage::flip_lex() {
                    return Ok(candidates.max());
                }
                candidates.min()
            }
            EngineImpl::Naive(n) => n.next_solution(from),
        })
    }

    /// Panicking convenience over [`PreparedQuery::try_next_solution`].
    pub fn next_solution(&self, from: &[Vertex]) -> Option<Vec<Vertex>> {
        self.try_next_solution(from).expect("invalid probe tuple")
    }

    /// **Corollary 2.5**: enumerate `q(G)` in increasing lexicographic
    /// order with constant delay.
    pub fn enumerate(&self) -> Enumerate<'_, G> {
        let first = if self.g.borrow().n() == 0 && self.arity > 0 {
            None
        } else {
            self.next_solution(&vec![0; self.arity])
        };
        Enumerate {
            pq: self,
            next: first,
        }
    }

    /// Enumerate `q(G)` starting from the lexicographically smallest
    /// solution `≥ from`. `enumerate_from(&[0; k])` is equivalent to
    /// [`PreparedQuery::enumerate`]. Rejects a mis-sized probe with a
    /// typed error.
    pub fn enumerate_from(&self, from: &[Vertex]) -> Result<Enumerate<'_, G>, QueryError> {
        let first = if self.g.borrow().n() == 0 && self.arity > 0 {
            // Still validate the probe shape for a consistent contract.
            if from.len() != self.arity {
                return Err(QueryError::ArityMismatch {
                    expected: self.arity,
                    got: from.len(),
                });
            }
            None
        } else {
            self.try_next_solution(from)?
        };
        Ok(Enumerate {
            pq: self,
            next: first,
        })
    }

    /// One page of enumeration: up to `limit` solutions `≥ from`, in
    /// lexicographic order. The serving layer's unit of work — a caller
    /// can resume with `lex_increment(last_of_page)` as the next `from`.
    pub fn page(&self, from: &[Vertex], limit: usize) -> Result<Vec<Vec<Vertex>>, QueryError> {
        Ok(self.enumerate_from(from)?.take(limit).collect())
    }

    /// Count all solutions. Pseudo-linear for single-branch fragment
    /// queries whose constraint components have ≤ 2 positions (the
    /// Grohe–Schweikardt counting claim for our fragment — see
    /// `engine::counting`); enumeration-based otherwise.
    pub fn count(&self) -> usize {
        if let EngineImpl::Indexed(bs) = &self.engine {
            if let [branch] = bs.as_slice() {
                if let Some(c) = branch.fast_count(self.g.borrow()) {
                    return c as usize;
                }
            }
        }
        if let EngineImpl::Naive(n) = &self.engine {
            return n.count();
        }
        self.enumerate().count()
    }

    /// The lexicographic successor tuple over `[0, n)^k`, or `None` at the
    /// top. Public so paging clients (`nd-serve`) can resume enumeration
    /// after the last solution of a page.
    pub fn lex_increment(&self, t: &[Vertex]) -> Option<Vec<Vertex>> {
        let n = self.g.borrow().n() as Vertex;
        let mut out = t.to_vec();
        for i in (0..out.len()).rev() {
            if out[i] + 1 < n {
                out[i] += 1;
                return Some(out);
            }
            out[i] = 0;
        }
        None
    }
}

/// Streaming enumeration in lexicographic order.
///
/// A well-behaved std iterator: [`Iterator::size_hint`] is exact whenever
/// the remaining count is knowable in constant time (exhausted, or a
/// Boolean query), and the iterator is [fused](std::iter::FusedIterator)
/// — once `next` returns `None` it returns `None` forever, so it composes
/// with `chain`/`zip`/`take_while` without a defensive [`Iterator::fuse`].
pub struct Enumerate<'a, G: Borrow<ColoredGraph>> {
    pq: &'a PreparedQuery<G>,
    next: Option<Vec<Vertex>>,
}

impl<G: Borrow<ColoredGraph>> Iterator for Enumerate<'_, G> {
    type Item = Vec<Vertex>;

    fn next(&mut self) -> Option<Vec<Vertex>> {
        let cur = self.next.take()?;
        if self.pq.arity == 0 {
            // A true sentence has exactly one (empty) solution.
            self.next = None;
            return Some(cur);
        }
        self.next = self
            .pq
            .lex_increment(&cur)
            .and_then(|succ| self.pq.next_solution(&succ));
        Some(cur)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.next {
            // Exhausted: exactly zero remaining.
            None => (0, Some(0)),
            // Boolean query with a buffered solution: exactly one.
            Some(_) if self.pq.arity == 0 => (1, Some(1)),
            // One solution buffered; the tail length is unknown without
            // enumerating it (counting would break constant delay).
            Some(_) => (1, None),
        }
    }
}

impl<G: Borrow<ColoredGraph>> std::iter::FusedIterator for Enumerate<'_, G> {}

// ---------------------------------------------------------------------
// One branch of the indexed engine.
// ---------------------------------------------------------------------

/// One branch of the indexed engine. Owns every index structure; the
/// graph itself is passed into each method by the `PreparedQuery`
/// front-end, so the branch carries no lifetime and the whole engine can
/// be owned by an `Arc`-backed snapshot.
struct BranchEngine {
    fq: FragmentQuery,
    /// All sentences hold (otherwise the branch is empty and inert).
    active: bool,
    /// One distance oracle per distinct constraint radius `≥ 1`.
    oracles: HashMap<u32, DistOracle>,
    /// `2r`-cover (present iff some constraint is `Le` or `Gt`).
    cover: Option<Cover>,
    /// `r`-kernels of the cover bags (present iff some constraint is `Gt`).
    kernels: Option<KernelIndex>,
    /// Sorted `L_j` per position.
    unary_lists: Vec<Vec<Vertex>>,
    /// Membership bitsets per position.
    unary_bits: Vec<Vec<bool>>,
    /// Skip pointers per position (present iff the position has a far
    /// constraint).
    skips: Vec<Option<SkipPointers>>,
    extend_check: bool,
    /// Per-phase build-time breakdown for this branch.
    timings: PhaseTimings,
}

/// Wall-clock spent in each index-construction phase of one branch.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseTimings {
    cover_ms: u64,
    kernel_ms: u64,
    store_ms: u64,
    skip_ms: u64,
}

impl BranchEngine {
    fn try_prepare(
        g: &ColoredGraph,
        fq: FragmentQuery,
        opts: &PrepareOpts,
        epsilon: f64,
        tracker: &BudgetTracker,
    ) -> Result<BranchEngine, BudgetExceeded> {
        let n = g.n();
        // Step 1: sentences (the ξ analogues). Independence sentences get
        // the fast scattered-set decision of Theorem 5.4's toolbox; other
        // sentences fall back to naive model checking. Each check touches
        // the whole vertex set at least once.
        let mut active = true;
        for s in &fq.sentences {
            tracker.charge_nodes(Phase::SentenceCheck, n as u64 + 1)?;
            let holds = if let Some(ind) = crate::independence::recognize(s) {
                let witnesses = evaluate_unary(g, &ind.psi, ind.var);
                crate::independence::holds(g, &ind, &witnesses)
            } else {
                eval(g, &Query::new(s.clone(), vec![]), &[])
            };
            if !holds {
                active = false;
                break;
            }
        }

        let mut engine = BranchEngine {
            active,
            oracles: HashMap::new(),
            cover: None,
            kernels: None,
            unary_lists: vec![Vec::new(); fq.k],
            unary_bits: vec![Vec::new(); fq.k],
            skips: (0..fq.k).map(|_| None).collect(),
            extend_check: opts.extendability_check,
            timings: PhaseTimings::default(),
            fq,
        };
        if !active {
            return Ok(engine);
        }

        // Step 2: unary lists + bitsets (Unary Theorem substitute). Each
        // position's list is a pure function of (graph, formula), so the
        // positions fan out across the prepare workers.
        let positions: Vec<usize> = (0..engine.fq.k).collect();
        let fq_ref = &engine.fq;
        let unary = try_parallel_map(opts.threads, &positions, |_, &j| {
            tracker.charge_nodes(Phase::UnaryEvaluation, n as u64 + 1)?;
            let list: Vec<Vertex> = match &fq_ref.unary[j] {
                Formula::True => (0..n as Vertex).collect(),
                f => evaluate_unary(g, f, fq_ref.vars[j]),
            };
            tracker.charge_memory(Phase::UnaryEvaluation, 4 * list.len() as u64 + n as u64)?;
            let mut bits = vec![false; n];
            for &v in &list {
                bits[v as usize] = true;
            }
            Ok((list, bits))
        })?;
        for (j, (list, bits)) in unary.into_iter().enumerate() {
            engine.unary_lists[j] = list;
            engine.unary_bits[j] = bits;
        }

        // Step 3: distance oracles per distinct radius.
        let mut opts_dist = opts.dist;
        opts_dist.epsilon = epsilon;
        for c in &engine.fq.binary {
            if let BinKind::Le(d) | BinKind::Gt(d) = c.kind {
                if let std::collections::hash_map::Entry::Vacant(slot) = engine.oracles.entry(d) {
                    slot.insert(DistOracle::try_build(g, d, &opts_dist, tracker)?);
                }
            }
        }

        // Step 4: cover, kernels, skip pointers.
        let r = engine.fq.max_radius();
        let needs_cover = engine
            .fq
            .binary
            .iter()
            .any(|c| matches!(c.kind, BinKind::Le(_) | BinKind::Gt(_)));
        let needs_kernels = engine.fq.binary.iter().any(|c| c.kind.excluding());
        if needs_cover {
            let cover = Cover::try_build(g, 2 * r, epsilon, tracker)?;
            let ct = cover.build_timings();
            engine.timings.cover_ms = ct.greedy_ms;
            engine.timings.store_ms = ct.store_ms;
            engine.cover = Some(cover);
        }
        if needs_kernels {
            let cover = engine.cover.as_ref().unwrap();
            let t_kernel = Instant::now();
            let kernels = KernelIndex::try_build_threads(g, cover, r, opts.threads, tracker)?;
            engine.timings.kernel_ms = t_kernel.elapsed().as_millis() as u64;

            // Skip pointers are per-position and independent (each reads
            // the shared kernel index plus its own L_j), so they fan out
            // like the unary lists.
            let t_skip = Instant::now();
            let far_positions: Vec<(usize, usize)> = (0..engine.fq.k)
                .filter_map(|j| {
                    let far_count = engine
                        .fq
                        .constraints_on(j)
                        .filter(|c| c.kind.excluding())
                        .count();
                    (far_count > 0).then_some((j, far_count))
                })
                .collect();
            // Cap the SC closure so expander-like inputs (huge kernel
            // degrees) degrade to scans instead of blowing memory — the
            // pseudo-linear budget of Lemma 5.8.
            let cap = (64 * n).max(1_000_000);
            let unary_lists = &engine.unary_lists;
            let built = try_parallel_map(opts.threads, &far_positions, |_, &(j, far_count)| {
                SkipPointers::try_build_with_cap(
                    n,
                    &kernels,
                    unary_lists[j].clone(),
                    far_count,
                    cap,
                    tracker,
                )
            })?;
            for ((j, _), sp) in far_positions.into_iter().zip(built) {
                engine.skips[j] = Some(sp);
            }
            engine.timings.skip_ms = t_skip.elapsed().as_millis() as u64;
            engine.kernels = Some(kernels);
        }
        Ok(engine)
    }

    /// Pseudo-linear counting (see `engine::counting`).
    fn fast_count(&self, g: &ColoredGraph) -> Option<u64> {
        crate::engine::counting::fast_count(
            g,
            &self.fq,
            self.active,
            &self.unary_lists,
            &self.unary_bits,
        )
    }

    /// Constant-time binary-constraint test.
    fn test_bin(&self, g: &ColoredGraph, kind: BinKind, a: Vertex, b: Vertex) -> bool {
        match kind {
            BinKind::Le(d) => self.oracles[&d].test(a, b),
            BinKind::Gt(d) => !self.oracles[&d].test(a, b),
            BinKind::Edge => g.has_edge(a, b),
            BinKind::NotEdge => !g.has_edge(a, b),
            BinKind::Eq => a == b,
            BinKind::Neq => a != b,
        }
    }

    /// Corollary 2.4 test for this branch.
    fn test_tuple(&self, g: &ColoredGraph, t: &[Vertex]) -> bool {
        self.active
            && (0..self.fq.k).all(|j| self.unary_bits[j][t[j] as usize])
            && self
                .fq
                .binary
                .iter()
                .all(|c| self.test_bin(g, c.kind, t[c.i], t[c.j]))
    }

    /// Unary + prefix-constraint test for a candidate value at position `j`.
    fn test_candidate(&self, g: &ColoredGraph, prefix: &[Vertex], j: usize, b: Vertex) -> bool {
        self.unary_bits[j][b as usize]
            && self
                .fq
                .constraints_on(j)
                .filter(|c| c.i < prefix.len())
                .all(|c| self.test_bin(g, c.kind, prefix[c.i], b))
    }

    /// The Lemma 5.2 primitive: smallest `b ≥ b0` admissible at position
    /// `j ≥ prefix.len()` given the already-fixed prefix (constraints to
    /// unassigned positions are ignored).
    fn next_value(
        &self,
        g: &ColoredGraph,
        prefix: &[Vertex],
        j: usize,
        b0: Vertex,
    ) -> Option<Vertex> {
        if !self.active || (b0 as usize) >= g.n() {
            return None;
        }
        let relevant: Vec<(usize, BinKind)> = self
            .fq
            .constraints_on(j)
            .filter(|c| c.i < prefix.len())
            .map(|c| (c.i, c.kind))
            .collect();

        // Pick the tightest confining constraint: Eq ≻ Edge ≻ Le(min d).
        if let Some(&(i, _)) = relevant.iter().find(|(_, k)| *k == BinKind::Eq) {
            let cand = prefix[i];
            return (cand >= b0 && self.test_candidate(g, prefix, j, cand)).then_some(cand);
        }
        if let Some(&(i, _)) = relevant.iter().find(|(_, k)| *k == BinKind::Edge) {
            let ns = g.neighbors(prefix[i]);
            let start = ns.partition_point(|&w| w < b0);
            return ns[start..]
                .iter()
                .copied()
                .find(|&w| self.test_candidate(g, prefix, j, w));
        }
        let le_anchor = relevant
            .iter()
            .filter_map(|&(i, k)| match k {
                BinKind::Le(d) => Some((d, i)),
                _ => None,
            })
            .min();
        if let Some((_, i)) = le_anchor {
            // Case II: candidates confined to the anchor's bag; walk it via
            // the Storing-Theorem successor structure.
            let cover = self.cover.as_ref().expect("cover built for Le");
            let bag = cover.bag_of(prefix[i]);
            let mut w = cover.successor_in_bag(bag, b0)?;
            loop {
                if self.test_candidate(g, prefix, j, w) {
                    return Some(w);
                }
                w = cover.successor_in_bag(bag, w.checked_add(1)?)?;
            }
        }

        let far_anchors: Vec<Vertex> = relevant
            .iter()
            .filter(|(_, k)| k.excluding())
            .map(|&(i, _)| prefix[i])
            .collect();
        if !far_anchors.is_empty() {
            // Case I: the answer is in some anchor's kernel, or the SKIP
            // jump past all kernels.
            let cover = self.cover.as_ref().expect("cover built for Gt");
            let kernels = self.kernels.as_ref().expect("kernels built for Gt");
            let mut best: Option<Vertex> = None;
            let better = |best: &Option<Vertex>, w: Vertex| best.is_none_or(|b| w < b);

            for &a in &far_anchors {
                let kern = kernels.kernel(cover.bag_of(a));
                let start = kern.partition_point(|&w| w < b0);
                for &w in &kern[start..] {
                    if !better(&best, w) {
                        break;
                    }
                    if self.test_candidate(g, prefix, j, w) {
                        best = Some(w);
                        break;
                    }
                }
            }

            let sp = self.skips[j].as_ref().expect("skips built for Gt");
            let mut bags: Vec<_> = far_anchors.iter().map(|&a| cover.bag_of(a)).collect();
            bags.sort_unstable();
            bags.dedup();
            let mut b = b0;
            while let Some(w) = sp.skip(kernels, b, &bags) {
                if !better(&best, w) {
                    break;
                }
                if self.test_candidate(g, prefix, j, w) {
                    best = Some(w);
                    break;
                }
                // Only filter constraints (≠, ¬E) can reject here; their
                // total rejections are bounded, so this loop is short.
                match w.checked_add(1) {
                    Some(next) if (next as usize) < g.n() => b = next,
                    _ => break,
                }
            }
            return best;
        }

        // Only filters (≠ / ¬E) or no constraints: scan L_j.
        let list = &self.unary_lists[j];
        let start = list.partition_point(|&w| w < b0);
        list[start..]
            .iter()
            .copied()
            .find(|&w| self.test_candidate(g, prefix, j, w))
    }

    /// Can the prefix be extended to a full solution? (Necessary per-future
    /// -position check; prunes backtracking.)
    fn extendable(&self, g: &ColoredGraph, prefix: &[Vertex]) -> bool {
        (prefix.len()..self.fq.k).all(|m| self.next_value(g, prefix, m, 0).is_some())
    }

    /// Theorem 5.1 for this branch: lexicographic backtracking over
    /// `next_value`.
    fn next_solution(&self, g: &ColoredGraph, from: &[Vertex]) -> Option<Vec<Vertex>> {
        if !self.active {
            return None;
        }
        if self.fq.k == 0 {
            return Some(Vec::new());
        }
        if g.n() == 0 {
            return None;
        }
        let mut prefix: Vec<Vertex> = Vec::with_capacity(self.fq.k);
        self.rec(g, from, &mut prefix, true)
    }

    fn rec(
        &self,
        g: &ColoredGraph,
        from: &[Vertex],
        prefix: &mut Vec<Vertex>,
        tight: bool,
    ) -> Option<Vec<Vertex>> {
        let j = prefix.len();
        let lower = if tight { from[j] } else { 0 };
        let mut cand = self.next_value(g, prefix, j, lower);
        while let Some(b) = cand {
            if j + 1 == self.fq.k {
                let mut sol = prefix.clone();
                sol.push(b);
                return Some(sol);
            }
            let now_tight = tight && b == from[j];
            prefix.push(b);
            if !self.extend_check || self.extendable(g, prefix) {
                if let Some(sol) = self.rec(g, from, prefix, now_tight) {
                    return Some(sol);
                }
            }
            prefix.pop();
            cand = b
                .checked_add(1)
                .and_then(|nb| self.next_value(g, prefix, j, nb));
        }
        None
    }
}

// ---------------------------------------------------------------------
// Persistence (DESIGN.md §9): crash-safe save/load of a prepared index.
// ---------------------------------------------------------------------

/// Section tags of the on-disk index container.
const SEC_GRAPH: [u8; 4] = *b"GRPH";
const SEC_QUERY: [u8; 4] = *b"QURY";
const SEC_META: [u8; 4] = *b"META";
const SEC_ENGINE: [u8; 4] = *b"ENGN";

/// Recursion cap for the `BadDisjunct` chain of a stored reason.
const MAX_REASON_DEPTH: u32 = 32;

fn write_phase(w: &mut Writer, p: Phase) {
    w.u8(match p {
        Phase::SentenceCheck => 0,
        Phase::UnaryEvaluation => 1,
        Phase::DistOracle => 2,
        Phase::CoverConstruction => 3,
        Phase::KernelConstruction => 4,
        Phase::SkipClosure => 5,
        Phase::TrieBuild => 6,
        Phase::NaiveMaterialize => 7,
        Phase::Admission => 8,
    });
}

fn read_phase(r: &mut Reader<'_>) -> Result<Phase, PersistError> {
    Ok(match r.u8("budget phase")? {
        0 => Phase::SentenceCheck,
        1 => Phase::UnaryEvaluation,
        2 => Phase::DistOracle,
        3 => Phase::CoverConstruction,
        4 => Phase::KernelConstruction,
        5 => Phase::SkipClosure,
        6 => Phase::TrieBuild,
        7 => Phase::NaiveMaterialize,
        8 => Phase::Admission,
        _ => return Err(malformed("invalid budget phase")),
    })
}

fn write_resource(w: &mut Writer, res: Resource) {
    w.u8(match res {
        Resource::WallClockMs => 0,
        Resource::NodeExpansions => 1,
        Resource::MemoryBytes => 2,
    });
}

fn read_resource(r: &mut Reader<'_>) -> Result<Resource, PersistError> {
    Ok(match r.u8("budget resource")? {
        0 => Resource::WallClockMs,
        1 => Resource::NodeExpansions,
        2 => Resource::MemoryBytes,
        _ => return Err(malformed("invalid budget resource")),
    })
}

fn write_unsupported(w: &mut Writer, u: &UnsupportedReason) {
    match u {
        UnsupportedReason::WideConjunct(s) => {
            w.u8(0);
            w.str(s);
        }
        UnsupportedReason::ComplexBinary(s) => {
            w.u8(1);
            w.str(s);
        }
        UnsupportedReason::BadDisjunct(inner) => {
            w.u8(2);
            write_unsupported(w, inner);
        }
        UnsupportedReason::RelationalAtom(s) => {
            w.u8(3);
            w.str(s);
        }
    }
}

fn read_unsupported(r: &mut Reader<'_>, depth: u32) -> Result<UnsupportedReason, PersistError> {
    if depth > MAX_REASON_DEPTH {
        return Err(malformed("unsupported-reason nesting too deep"));
    }
    Ok(match r.u8("unsupported-reason tag")? {
        0 => UnsupportedReason::WideConjunct(r.str("wide-conjunct detail")?),
        1 => UnsupportedReason::ComplexBinary(r.str("complex-binary detail")?),
        2 => UnsupportedReason::BadDisjunct(Box::new(read_unsupported(r, depth + 1)?)),
        3 => UnsupportedReason::RelationalAtom(r.str("relational-atom detail")?),
        _ => return Err(malformed("invalid unsupported-reason tag")),
    })
}

fn write_degradation_opt(w: &mut Writer, reason: &Option<DegradationReason>) {
    match reason {
        None => w.u8(0),
        Some(DegradationReason::UnsupportedFragment(u)) => {
            w.u8(1);
            write_unsupported(w, u);
        }
        Some(DegradationReason::BudgetExceeded(b)) => {
            w.u8(2);
            write_phase(w, b.phase);
            write_resource(w, b.resource);
            w.u64(b.spent);
            w.u64(b.cap);
        }
    }
}

fn read_degradation_opt(r: &mut Reader<'_>) -> Result<Option<DegradationReason>, PersistError> {
    Ok(match r.u8("degradation-reason tag")? {
        0 => None,
        1 => Some(DegradationReason::UnsupportedFragment(read_unsupported(
            r, 0,
        )?)),
        2 => Some(DegradationReason::BudgetExceeded(BudgetExceeded {
            phase: read_phase(r)?,
            resource: read_resource(r)?,
            spent: r.u64("budget spent")?,
            cap: r.u64("budget cap")?,
        })),
        _ => return Err(malformed("invalid degradation-reason tag")),
    })
}

impl BranchEngine {
    /// Append the branch's binary encoding to `w`. Oracles are written in
    /// increasing radius order and the skip tables sort their entries, so
    /// the encoding is a pure function of the index value (load → save is
    /// bit-identical).
    fn write_into(&self, w: &mut Writer) {
        w.bool(self.active);
        let mut radii: Vec<u32> = self.oracles.keys().copied().collect();
        radii.sort_unstable();
        w.seq_len(radii.len());
        for d in radii {
            w.u32(d);
            self.oracles[&d].write_into(w);
        }
        match &self.cover {
            None => w.u8(0),
            Some(c) => {
                w.u8(1);
                c.write_into(w);
            }
        }
        match &self.kernels {
            None => w.u8(0),
            Some(k) => {
                w.u8(1);
                k.write_into(w);
            }
        }
        for list in &self.unary_lists {
            w.u32_slice(list);
        }
        for sp in &self.skips {
            match sp {
                None => w.u8(0),
                Some(sp) => {
                    w.u8(1);
                    sp.write_into(w);
                }
            }
        }
        w.bool(self.extend_check);
        w.u64(self.timings.cover_ms);
        w.u64(self.timings.kernel_ms);
        w.u64(self.timings.store_ms);
        w.u64(self.timings.skip_ms);
    }

    /// Decode one branch against its recompiled fragment `fq`. Re-checks
    /// every invariant the answering hot path dereferences without a
    /// guard — a hostile payload behind intact CRCs must surface as a
    /// typed error here, never as a panic inside `next_value`.
    fn read_from(
        r: &mut Reader<'_>,
        g: &ColoredGraph,
        fq: FragmentQuery,
    ) -> Result<BranchEngine, PersistError> {
        let n = g.n();
        let active = r.bool("branch active flag")?;
        let num_oracles = r.seq_len(5, "branch oracle count")?;
        let mut oracles = HashMap::new();
        let mut prev: Option<u32> = None;
        for _ in 0..num_oracles {
            let d = r.u32("oracle radius key")?;
            if prev.is_some_and(|p| p >= d) {
                return Err(malformed("oracle radii not strictly increasing"));
            }
            prev = Some(d);
            let oracle = DistOracle::read_from(r, n)?;
            if oracle.radius() != d {
                return Err(malformed("oracle radius does not match its key"));
            }
            oracles.insert(d, oracle);
        }
        let cover = match r.u8("cover presence tag")? {
            0 => None,
            1 => {
                let c = Cover::read_from(r)?;
                if c.n() != n {
                    return Err(malformed("cover vertex count does not match graph"));
                }
                Some(c)
            }
            _ => return Err(malformed("invalid cover presence tag")),
        };
        let kernels = match r.u8("kernel presence tag")? {
            0 => None,
            1 => {
                let Some(c) = &cover else {
                    return Err(malformed("kernels present without a cover"));
                };
                let k = KernelIndex::read_from(r, n)?;
                if k.num_bags() != c.num_bags() {
                    return Err(malformed("kernel count does not match cover bags"));
                }
                Some(k)
            }
            _ => return Err(malformed("invalid kernel presence tag")),
        };
        let mut unary_lists = Vec::with_capacity(fq.k);
        let mut unary_bits = Vec::with_capacity(fq.k);
        for _ in 0..fq.k {
            let list = r.u32_slice_sorted(n as u32, "unary list")?;
            let mut bits = vec![false; n];
            for &v in &list {
                bits[v as usize] = true;
            }
            unary_lists.push(list);
            unary_bits.push(bits);
        }
        let mut skips = Vec::with_capacity(fq.k);
        for _ in 0..fq.k {
            skips.push(match r.u8("skip presence tag")? {
                0 => None,
                1 => Some(SkipPointers::read_from(r, n)?),
                _ => return Err(malformed("invalid skip presence tag")),
            });
        }
        let extend_check = r.bool("extendability flag")?;
        let timings = PhaseTimings {
            cover_ms: r.u64("branch cover_ms")?,
            kernel_ms: r.u64("branch kernel_ms")?,
            store_ms: r.u64("branch store_ms")?,
            skip_ms: r.u64("branch skip_ms")?,
        };
        if active {
            for c in &fq.binary {
                if let BinKind::Le(d) | BinKind::Gt(d) = c.kind {
                    if !oracles.contains_key(&d) {
                        return Err(malformed("missing distance oracle for constraint radius"));
                    }
                }
            }
            let needs_cover = fq
                .binary
                .iter()
                .any(|c| matches!(c.kind, BinKind::Le(_) | BinKind::Gt(_)));
            if needs_cover && cover.is_none() {
                return Err(malformed("missing cover for distance constraints"));
            }
            if fq.binary.iter().any(|c| c.kind.excluding()) && kernels.is_none() {
                return Err(malformed("missing kernels for far constraints"));
            }
            for (j, sp) in skips.iter().enumerate() {
                if fq.constraints_on(j).any(|c| c.kind.excluding()) && sp.is_none() {
                    return Err(malformed("missing skip pointers for a far position"));
                }
            }
        }
        Ok(BranchEngine {
            fq,
            active,
            oracles,
            cover,
            kernels,
            unary_lists,
            unary_bits,
            skips,
            extend_check,
            timings,
        })
    }
}

/// A deserialized index: the prepared query re-attached to the query AST
/// and source text it was saved with. The serving layer needs all three —
/// the engine to answer, the AST for arity/metadata, and the source text
/// for display and for a cold re-prepare fallback.
pub struct LoadedIndex {
    pub prepared: SharedPreparedQuery,
    pub query: Query,
    pub query_src: String,
}

impl<G: Borrow<ColoredGraph>> PreparedQuery<G> {
    /// Serialize the index (graph + engine + provenance metadata) into the
    /// versioned, checksummed container of DESIGN.md §9. `query` must be
    /// the query this index was prepared for — its compiled branch
    /// structure is cross-checked against the engine before any byte is
    /// written.
    pub fn save_index_bytes(
        &self,
        query: &Query,
        query_src: &str,
    ) -> Result<Vec<u8>, PersistError> {
        let g = self.g.borrow();
        if query.arity() != self.arity {
            return Err(malformed("query arity does not match the prepared index"));
        }
        if let EngineImpl::Indexed(bs) = &self.engine {
            match compile(query) {
                Ok(branches) if branches.len() == bs.len() => {}
                _ => return Err(malformed("query does not compile to the prepared branches")),
            }
        }
        let mut cw = ContainerWriter::new();

        let mut w = Writer::new();
        g.write_into(&mut w);
        cw.section(SEC_GRAPH, w.into_bytes());

        let mut w = Writer::new();
        nd_logic::codec::write_query(query, &mut w);
        w.str(query_src);
        cw.section(SEC_QUERY, w.into_bytes());

        let mut w = Writer::new();
        w.u64(self.arity as u64);
        w.u8(match self.rung {
            DegradationRung::Indexed => 0,
            DegradationRung::CoarsenedEpsilon => 1,
            DegradationRung::NaiveFallback => 2,
        });
        write_degradation_opt(&mut w, &self.degradation_reason);
        w.u64(self.budget_nodes_spent);
        w.u64(self.budget_ms_spent);
        w.u64(self.threads_used as u64);
        cw.section(SEC_META, w.into_bytes());

        let mut w = Writer::new();
        match &self.engine {
            EngineImpl::Indexed(bs) => {
                w.u8(0);
                w.seq_len(bs.len());
                for b in bs {
                    b.write_into(&mut w);
                }
            }
            EngineImpl::Naive(nv) => {
                w.u8(1);
                nv.write_into(&mut w);
            }
        }
        cw.section(SEC_ENGINE, w.into_bytes());

        Ok(cw.finish())
    }

    /// [`PreparedQuery::save_index_bytes`] plus the crash-safe file
    /// protocol: temp file, fsync, atomic rename.
    pub fn save_index(
        &self,
        query: &Query,
        query_src: &str,
        path: &std::path::Path,
    ) -> Result<(), PersistError> {
        let bytes = self.save_index_bytes(query, query_src)?;
        nd_persist::write_file_atomic(path, &bytes)
    }
}

impl SharedPreparedQuery {
    /// Decode an index container. Every section is CRC-checked by the
    /// container layer; every structural invariant of the engine is then
    /// re-validated, so any corruption — truncation, bit flips, or a
    /// forged payload behind valid CRCs — yields a typed error, never a
    /// panic or an engine that panics later.
    pub fn load_index_bytes(bytes: &[u8]) -> Result<LoadedIndex, PersistError> {
        let frames = parse_container_frames(bytes)?;
        let frame = |tag: [u8; 4]| -> Result<SectionFrame<'_>, PersistError> {
            frames
                .iter()
                .find(|f| f.tag == tag)
                .copied()
                .ok_or_else(|| {
                    malformed(format!("missing section {}", String::from_utf8_lossy(&tag)))
                })
        };
        let engine_frame = frame(SEC_ENGINE)?;
        std::thread::scope(|s| {
            // The engine section is the overwhelming bulk of a large
            // index; its CRC pass runs concurrently with decoding. That
            // is sound because every decoder is bounds-checked and
            // typed-error-safe on arbitrary bytes (the chaos suite's
            // invariant) — but nothing decoded may be returned before
            // `verify` has passed, so the checksum result is checked
            // below before the engine value escapes.
            let engine_crc = s.spawn(move || engine_frame.verify());
            let result = Self::load_index_sections(&frame, engine_frame);
            match engine_crc.join() {
                Ok(Ok(())) => result,
                Ok(Err(e)) => Err(e),
                Err(_) => Err(malformed("engine checksum verification panicked")),
            }
        })
    }

    fn load_index_sections<'a>(
        frame: &dyn Fn([u8; 4]) -> Result<SectionFrame<'a>, PersistError>,
        engine_frame: SectionFrame<'a>,
    ) -> Result<LoadedIndex, PersistError> {
        let f = frame(SEC_GRAPH)?;
        f.verify()?;
        let mut r = Reader::new(f.payload);
        let g = ColoredGraph::read_from(&mut r)?;
        r.finish()?;

        let f = frame(SEC_QUERY)?;
        f.verify()?;
        let mut r = Reader::new(f.payload);
        let query = nd_logic::codec::read_query(&mut r)?;
        let query_src = r.str("query source text")?;
        r.finish()?;

        let f = frame(SEC_META)?;
        f.verify()?;
        let mut r = Reader::new(f.payload);
        let arity = r.u64("index arity")? as usize;
        if arity != query.arity() {
            return Err(malformed("stored arity does not match the query"));
        }
        let rung = match r.u8("degradation rung")? {
            0 => DegradationRung::Indexed,
            1 => DegradationRung::CoarsenedEpsilon,
            2 => DegradationRung::NaiveFallback,
            _ => return Err(malformed("invalid degradation rung")),
        };
        let degradation_reason = read_degradation_opt(&mut r)?;
        let budget_nodes_spent = r.u64("budget nodes spent")?;
        let budget_ms_spent = r.u64("budget ms spent")?;
        let threads_used = r.u64("threads used")? as usize;
        r.finish()?;

        let mut r = Reader::new(engine_frame.payload);
        let engine = match r.u8("engine tag")? {
            0 => {
                if rung == DegradationRung::NaiveFallback {
                    return Err(malformed("naive rung with an indexed engine"));
                }
                let branches = compile(&query)
                    .map_err(|_| malformed("stored query does not compile to branches"))?;
                let count = r.seq_len(16, "branch count")?;
                if count != branches.len() {
                    return Err(malformed("stored branch count does not match the query"));
                }
                let mut bs = Vec::with_capacity(count);
                for fq in branches {
                    bs.push(BranchEngine::read_from(&mut r, &g, fq)?);
                }
                EngineImpl::Indexed(bs)
            }
            1 => {
                if rung != DegradationRung::NaiveFallback {
                    return Err(malformed("naive engine without the naive rung"));
                }
                EngineImpl::Naive(NaiveEngine::read_from(&mut r, arity, g.n())?)
            }
            _ => return Err(malformed("invalid engine tag")),
        };
        r.finish()?;

        Ok(LoadedIndex {
            prepared: PreparedQuery {
                g: Arc::new(g),
                arity,
                engine,
                rung,
                degradation_reason,
                budget_nodes_spent,
                budget_ms_spent,
                threads_used,
            },
            query,
            query_src,
        })
    }

    /// Load an index file written by [`PreparedQuery::save_index`].
    pub fn load_index(path: &std::path::Path) -> Result<LoadedIndex, PersistError> {
        let bytes = nd_persist::read_file(path)?;
        Self::load_index_bytes(&bytes)
    }

    /// The shared graph handle, for runtimes that prepare further queries
    /// over the same graph (e.g. a serving session seeded from a loaded
    /// index).
    pub fn graph_shared(&self) -> Arc<ColoredGraph> {
        Arc::clone(&self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use nd_logic::eval::materialize;
    use nd_logic::parse_query;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Full-contract check: enumeration matches naive materialization,
    /// test matches membership, next_solution matches partition points on
    /// random probes.
    fn check_full(g: &ColoredGraph, src: &str, opts: &PrepareOpts, seed: u64) {
        let q = parse_query(src).unwrap();
        let pq = PreparedQuery::prepare(g, &q, opts).unwrap();
        let want = materialize(g, &q);
        let got: Vec<_> = pq.enumerate().collect();
        assert_eq!(got, want, "enumeration mismatch for {src}");

        let mut rng = StdRng::seed_from_u64(seed);
        let k = q.arity();
        for _ in 0..40 {
            let probe: Vec<Vertex> = (0..k)
                .map(|_| rng.random_range(0..g.n() as Vertex))
                .collect();
            let member = want.binary_search(&probe).is_ok();
            assert_eq!(pq.test(&probe), member, "test({probe:?}) for {src}");
            let idx = want.partition_point(|s| s < &probe);
            assert_eq!(
                pq.next_solution(&probe),
                want.get(idx).cloned(),
                "next_solution({probe:?}) for {src}"
            );
        }
    }

    fn colored(g: ColoredGraph, seed: u64) -> ColoredGraph {
        let g = generators::with_random_colors(g, 2, 0.4, seed);
        // Name the colors Blue/Red for query readability.
        let b = g.color_members(nd_graph::ColorId(0)).to_vec();
        let r = g.color_members(nd_graph::ColorId(1)).to_vec();
        let mut fresh = generators::with_random_colors(
            {
                let mut only_edges = nd_graph::GraphBuilder::new(g.n());
                for (u, v) in g.edges() {
                    only_edges.add_edge(u, v);
                }
                only_edges.build()
            },
            0,
            0.0,
            0,
        );
        fresh.add_color(b, Some("Blue".into()));
        fresh.add_color(r, Some("Red".into()));
        fresh
    }

    fn small_opts() -> PrepareOpts {
        PrepareOpts {
            epsilon: 0.5,
            dist: DistOracleOpts {
                max_rounds: 8,
                naive_threshold: 6,
                ..DistOracleOpts::default()
            },
            allow_fallback: true,
            extendability_check: true,
            budget: Budget::UNLIMITED,
            threads: 1,
        }
    }

    const QUERIES: &[&str] = &[
        // Paper Example 1-A.
        "dist(x,y) <= 2",
        // Paper Example 2.
        "dist(x,y) > 2 && Blue(y)",
        // Paper's ternary example.
        "dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)",
        // Mixed close/far.
        "dist(x,y) <= 2 && dist(y,z) > 3 && Red(x)",
        // Edges, inequality, filters.
        "E(x,y) && x != y && Blue(x)",
        "Blue(x) && !E(x,y) && Red(y)",
        // Guarded unary subformulas (parenthesized: a bare quantifier in
        // operand position scopes over the whole rest of the conjunction).
        "(exists u. (E(x,u) && Blue(u))) && dist(x,y) > 2",
        // Union.
        "E(x,y) || (dist(x,y) > 3 && Blue(y))",
        // Equality pin.
        "dist(x,y) <= 1 && x = y",
        // Pure unary product.
        "Blue(x) && Red(y)",
        // Mixed radii far constraints.
        "dist(x,y) > 1 && dist(x,z) > 3 && Red(z)",
    ];

    #[test]
    fn matches_naive_on_random_sparse_graphs() {
        for (gi, base) in [
            generators::random_tree(28, 3),
            generators::grid(5, 5),
            generators::bounded_degree(30, 3, 7),
            generators::cycle(26),
        ]
        .into_iter()
        .enumerate()
        {
            let g = colored(base, gi as u64 + 10);
            for (qi, src) in QUERIES.iter().enumerate() {
                check_full(&g, src, &small_opts(), (gi * 100 + qi) as u64);
            }
        }
    }

    #[test]
    fn all_fragment_queries_use_indexed_engine() {
        let g = colored(generators::grid(4, 4), 5);
        for src in QUERIES {
            let q = parse_query(src).unwrap();
            let pq = PreparedQuery::prepare(&g, &q, &small_opts()).unwrap();
            assert!(
                matches!(pq.engine_kind(), EngineKind::Indexed { .. }),
                "{src} fell back to naive"
            );
        }
    }

    #[test]
    fn fallback_engine_handles_general_fo() {
        let g = colored(generators::cycle(12), 6);
        // A genuinely non-fragment query: common neighbor.
        let src = "exists u. (E(x,u) && E(u,y)) && x != y";
        let q = parse_query(src).unwrap();
        let pq = PreparedQuery::prepare(&g, &q, &small_opts()).unwrap();
        assert_eq!(pq.engine_kind(), EngineKind::Naive);
        let want = materialize(&g, &q);
        let got: Vec<_> = pq.enumerate().collect();
        assert_eq!(got, want);

        let mut strict = small_opts();
        strict.allow_fallback = false;
        assert!(PreparedQuery::prepare(&g, &q, &strict).is_err());
    }

    #[test]
    fn boolean_queries() {
        let g = colored(generators::path(10), 1);
        let yes = parse_query("exists x. Blue(x)").unwrap();
        let pq = PreparedQuery::prepare(&g, &yes, &small_opts()).unwrap();
        assert_eq!(
            pq.enumerate().collect::<Vec<_>>(),
            vec![Vec::<Vertex>::new()]
        );
        assert!(pq.test(&[]));

        let no = parse_query("exists x. (Blue(x) && Red(x) && !Blue(x))").unwrap();
        let pq = PreparedQuery::prepare(&g, &no, &small_opts()).unwrap();
        assert_eq!(pq.enumerate().count(), 0);
        assert!(!pq.test(&[]));
    }

    #[test]
    fn unary_queries() {
        let g = colored(generators::random_tree(40, 2), 3);
        check_full(&g, "Blue(x)", &small_opts(), 1);
        check_full(&g, "exists u. (dist(x,u) <= 2 && Red(u))", &small_opts(), 2);
    }

    #[test]
    fn empty_graph_and_no_solutions() {
        let g = generators::path(0);
        let q = parse_query("E(x,y)").unwrap();
        let pq = PreparedQuery::prepare(&g, &q, &small_opts()).unwrap();
        assert_eq!(pq.enumerate().count(), 0);

        let mut g1 = generators::path(5);
        g1.add_color(vec![], Some("Blue".into()));
        let q = parse_query("Blue(x) && E(x,y)").unwrap();
        let pq = PreparedQuery::prepare(&g1, &q, &small_opts()).unwrap();
        assert_eq!(pq.enumerate().count(), 0);
        assert_eq!(pq.next_solution(&[0, 0]), None);
    }

    #[test]
    fn enumeration_is_strictly_increasing() {
        let g = colored(generators::grid(6, 6), 9);
        let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
        let pq = PreparedQuery::prepare(&g, &q, &small_opts()).unwrap();
        let sols: Vec<_> = pq.enumerate().collect();
        for w in sols.windows(2) {
            assert!(w[0] < w[1], "not strictly increasing: {w:?}");
        }
    }

    #[test]
    fn parallel_prepare_is_identical_to_sequential() {
        // The tentpole invariant: the prepared index is the same value for
        // every thread count. Checked across ≥ 3 seeds via (a) structural
        // stats equality — bag counts, store sizes, skip entries, charge
        // totals — and (b) full enumeration equality.
        for seed in [11u64, 22, 33] {
            let g = colored(generators::random_tree(60, seed), seed);
            for src in [
                "dist(x,y) > 2 && Blue(y)",
                "dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)",
                "E(x,y) || (dist(x,y) > 3 && Blue(y))",
            ] {
                let q = parse_query(src).unwrap();
                let seq = PreparedQuery::prepare(&g, &q, &small_opts()).unwrap();
                let seq_sols: Vec<_> = seq.enumerate().collect();
                for threads in [2usize, 4] {
                    let mut opts = small_opts();
                    opts.threads = threads;
                    let par = PreparedQuery::prepare(&g, &q, &opts).unwrap();
                    assert_eq!(
                        seq.stats().structural(),
                        par.stats().structural(),
                        "stats diverged for {src} seed={seed} threads={threads}"
                    );
                    assert_eq!(par.stats().threads, threads);
                    let par_sols: Vec<_> = par.enumerate().collect();
                    assert_eq!(
                        seq_sols, par_sols,
                        "solutions diverged for {src} seed={seed} threads={threads}"
                    );
                }
            }
        }
    }

    /// Tentpole roundtrip: save → load reproduces bit-identical probe
    /// behavior (enumeration, membership tests, successor probes) and a
    /// bit-identical re-save, across the indexed engine (all fragment
    /// query shapes), the naive fallback, and Boolean queries.
    #[test]
    fn index_save_load_roundtrip() {
        let g = colored(generators::grid(4, 4), 7);
        let extra = [
            // Naive fallback (outside the fragment).
            "exists u. (E(x,u) && E(u,y)) && x != y",
            // Boolean.
            "exists x. Blue(x)",
        ];
        for src in QUERIES.iter().chain(extra.iter()) {
            let q = parse_query(src).unwrap();
            let pq = PreparedQuery::prepare(&g, &q, &small_opts()).unwrap();
            let bytes = pq.save_index_bytes(&q, src).unwrap();
            let loaded = SharedPreparedQuery::load_index_bytes(&bytes)
                .unwrap_or_else(|e| panic!("load failed for {src}: {e}"));
            assert_eq!(loaded.query_src, *src);
            assert_eq!(loaded.query, q);
            assert_eq!(loaded.prepared.stats(), pq.stats(), "{src}");

            let want: Vec<_> = pq.enumerate().collect();
            let got: Vec<_> = loaded.prepared.enumerate().collect();
            assert_eq!(got, want, "enumeration diverged after load for {src}");
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..25 {
                let probe: Vec<Vertex> = (0..q.arity())
                    .map(|_| rng.random_range(0..g.n() as Vertex))
                    .collect();
                assert_eq!(pq.test(&probe), loaded.prepared.test(&probe), "{src}");
                assert_eq!(
                    pq.next_solution(&probe),
                    loaded.prepared.next_solution(&probe),
                    "{src}"
                );
            }

            let again = loaded
                .prepared
                .save_index_bytes(&loaded.query, &loaded.query_src)
                .unwrap();
            assert_eq!(again, bytes, "re-save not bit-identical for {src}");
        }
    }

    /// Chaos: every truncation point, every single-bit flip, and a stale
    /// format version must produce a typed error — never a panic, and
    /// never a silently-accepted corrupt index.
    #[test]
    fn index_load_rejects_corruption() {
        let g = colored(generators::grid(4, 4), 3);
        let src = "dist(x,y) > 2 && Blue(y)";
        let q = parse_query(src).unwrap();
        let pq = PreparedQuery::prepare(&g, &q, &small_opts()).unwrap();
        let bytes = pq.save_index_bytes(&q, src).unwrap();

        for cut in 0..bytes.len() {
            assert!(
                SharedPreparedQuery::load_index_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        for i in 0..bytes.len() {
            let mut c = bytes.clone();
            c[i] ^= 0x40;
            assert!(
                SharedPreparedQuery::load_index_bytes(&c).is_err(),
                "bit flip at {i} accepted"
            );
        }
        let mut stale = bytes.clone();
        stale[8] = stale[8].wrapping_add(1); // format version u32 at offset 8
        assert!(matches!(
            SharedPreparedQuery::load_index_bytes(&stale),
            Err(PersistError::UnsupportedVersion { .. })
        ));

        // Mismatched save inputs are rejected before writing.
        let other = parse_query("Blue(x)").unwrap();
        assert!(pq.save_index_bytes(&other, "Blue(x)").is_err());
    }

    #[test]
    fn degradation_reason_codec_roundtrip() {
        let reasons = [
            None,
            Some(DegradationReason::UnsupportedFragment(
                UnsupportedReason::BadDisjunct(Box::new(UnsupportedReason::WideConjunct(
                    "three-variable component".into(),
                ))),
            )),
            Some(DegradationReason::UnsupportedFragment(
                UnsupportedReason::RelationalAtom("R".into()),
            )),
            Some(DegradationReason::BudgetExceeded(BudgetExceeded {
                phase: Phase::CoverConstruction,
                resource: Resource::NodeExpansions,
                spent: 7,
                cap: 3,
            })),
        ];
        for reason in &reasons {
            let mut w = Writer::new();
            write_degradation_opt(&mut w, reason);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(&read_degradation_opt(&mut r).unwrap(), reason);
            r.finish().unwrap();
        }
        assert!(read_degradation_opt(&mut Reader::new(&[9])).is_err());
        assert!(read_degradation_opt(&mut Reader::new(&[2, 200])).is_err());
    }

    #[test]
    fn without_extendability_check_still_correct() {
        let mut opts = small_opts();
        opts.extendability_check = false;
        let g = colored(generators::random_tree(25, 8), 4);
        for src in [
            "dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)",
            "E(x,y) && Blue(x)",
        ] {
            check_full(&g, src, &opts, 77);
        }
    }
}
