//! Compilation of FO⁺ queries into the **distance-type fragment**.
//!
//! The Rank-Preserving Normal Form (Theorem 5.4) reduces any FO⁺ query to a
//! Boolean combination of (i) global independence *sentences* `ξ`,
//! (ii) per-component *local* formulas `ψ` evaluated inside cover bags, and
//! (iii) the distance-type skeleton relating the components. Our indexable
//! fragment expresses exactly that output shape directly (DESIGN.md §2):
//!
//! ```text
//! q(x_1, …, x_k) = D_1 ∨ … ∨ D_m                      (top-level disjuncts)
//! D = ξ_1 ∧ … ∧ ξ_s                                    (sentences)
//!     ∧ U_1(x_1) ∧ … ∧ U_k(x_k)                        (unary formulas)
//!     ∧ ⋀ δ(x_i, x_j)                                  (binary constraints)
//! ```
//!
//! where each `δ` is a distance atom `dist ≤ d` / `dist > d`, an (anti-)edge
//! or an (in-)equality, and each `U_i` is an arbitrary unary FO⁺ formula
//! (evaluated via the guarded-locality machinery of `nd-logic`). Queries
//! outside this shape are reported [`UnsupportedReason`] and handled by the
//! naive engine.

use nd_logic::ast::{Formula, Query, VarId};

/// A binary constraint kind between two answer variables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinKind {
    /// `dist(x_i, x_j) ≤ d` with `d ≥ 1` (`d = 0` normalizes to [`BinKind::Eq`]).
    Le(u32),
    /// `dist(x_i, x_j) > d` (`d = 0` normalizes to [`BinKind::Neq`]).
    Gt(u32),
    /// `E(x_i, x_j)`.
    Edge,
    /// `¬E(x_i, x_j)`.
    NotEdge,
    /// `x_i = x_j`.
    Eq,
    /// `x_i ≠ x_j`.
    Neq,
}

impl BinKind {
    /// Does this constraint confine the candidate set of the larger
    /// variable to a neighborhood of the smaller one?
    pub fn confining(self) -> bool {
        matches!(self, BinKind::Le(_) | BinKind::Edge | BinKind::Eq)
    }

    /// Is this a far constraint handled by kernels/skip pointers?
    pub fn excluding(self) -> bool {
        matches!(self, BinKind::Gt(_))
    }

    /// The radius this constraint contributes to the global `r`.
    pub fn radius(self) -> u32 {
        match self {
            BinKind::Le(d) | BinKind::Gt(d) => d,
            BinKind::Edge | BinKind::NotEdge => 1,
            BinKind::Eq | BinKind::Neq => 0,
        }
    }
}

/// A constraint between answer positions `i < j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BinaryConstraint {
    pub i: usize,
    pub j: usize,
    pub kind: BinKind,
}

/// One compiled conjunctive branch of a query.
#[derive(Clone, Debug)]
pub struct FragmentQuery {
    /// Arity `k`.
    pub k: usize,
    /// Boolean subformulas (arity 0) — the `ξ`-analogues, checked once at
    /// preparation time.
    pub sentences: Vec<Formula>,
    /// Per position, the conjunction of unary conjuncts (free variable =
    /// the position's query variable). `True` when unconstrained.
    pub unary: Vec<Formula>,
    /// The query variable of each position (for unary evaluation).
    pub vars: Vec<VarId>,
    /// Binary constraints, `i < j`.
    pub binary: Vec<BinaryConstraint>,
}

impl FragmentQuery {
    /// Maximum constraint radius `r` (≥ 1 when any binary constraint is
    /// present; the cover/oracle radius of the prepared engine).
    pub fn max_radius(&self) -> u32 {
        self.binary
            .iter()
            .map(|c| c.kind.radius().max(1))
            .max()
            .unwrap_or(0)
    }

    /// Constraints incident to position `j` from smaller positions.
    pub fn constraints_on(&self, j: usize) -> impl Iterator<Item = &BinaryConstraint> {
        self.binary.iter().filter(move |c| c.j == j)
    }
}

/// Why a query does not fit the fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UnsupportedReason {
    /// A conjunct mentions more than two free variables.
    WideConjunct(String),
    /// A two-variable conjunct is not a recognized binary atom shape.
    ComplexBinary(String),
    /// A disjunct of the top-level disjunction failed to compile.
    BadDisjunct(Box<UnsupportedReason>),
    /// Relational atoms must be rewritten (Lemma 2.2) before preparation.
    RelationalAtom(String),
}

impl std::fmt::Display for UnsupportedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnsupportedReason::WideConjunct(s) => {
                write!(f, "conjunct with >2 free variables: {s}")
            }
            UnsupportedReason::ComplexBinary(s) => {
                write!(f, "unrecognized two-variable conjunct: {s}")
            }
            UnsupportedReason::BadDisjunct(r) => write!(f, "disjunct not in fragment: {r}"),
            UnsupportedReason::RelationalAtom(s) => {
                write!(f, "relational atom {s} (apply Lemma 2.2 first)")
            }
        }
    }
}

/// Compile a query into fragment branches (one per top-level disjunct).
pub fn compile(q: &Query) -> Result<Vec<FragmentQuery>, UnsupportedReason> {
    if let Some(name) = find_rel_atom(&q.formula) {
        return Err(UnsupportedReason::RelationalAtom(name));
    }
    let disjuncts: Vec<&Formula> = match &q.formula {
        Formula::Or(ds) => ds.iter().collect(),
        other => vec![other],
    };
    let mut out = Vec::with_capacity(disjuncts.len());
    for d in disjuncts {
        match compile_conjunctive(d, q) {
            Ok(fq) => out.push(fq),
            Err(e) if disjuncts_len(&q.formula) > 1 => {
                return Err(UnsupportedReason::BadDisjunct(Box::new(e)))
            }
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

fn disjuncts_len(f: &Formula) -> usize {
    match f {
        Formula::Or(ds) => ds.len(),
        _ => 1,
    }
}

fn find_rel_atom(f: &Formula) -> Option<String> {
    match f {
        Formula::Rel(name, _) => Some(name.clone()),
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => find_rel_atom(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().find_map(find_rel_atom),
        _ => None,
    }
}

fn compile_conjunctive(f: &Formula, q: &Query) -> Result<FragmentQuery, UnsupportedReason> {
    let k = q.arity();
    let pos_of = |v: VarId| q.free.iter().position(|&w| w == v);
    let mut fq = FragmentQuery {
        k,
        sentences: Vec::new(),
        unary: vec![Formula::True; k],
        vars: q.free.clone(),
        binary: Vec::new(),
    };
    let conjuncts: Vec<&Formula> = match f {
        Formula::And(cs) => cs.iter().collect(),
        other => vec![other],
    };
    for c in conjuncts {
        let mut fv = c.free_vars();
        fv.retain(|v| pos_of(*v).is_some()); // only answer variables matter
        match fv.len() {
            0 => fq.sentences.push(c.clone()),
            1 => {
                let i = pos_of(fv[0]).unwrap();
                fq.unary[i] = Formula::and([fq.unary[i].clone(), c.clone()]);
            }
            2 => {
                let kind = classify_binary(c, fv[0], fv[1])
                    .ok_or_else(|| UnsupportedReason::ComplexBinary(c.to_string()))?;
                let (i, j) = (pos_of(fv[0]).unwrap(), pos_of(fv[1]).unwrap());
                let (i, j, kind) = if i < j { (i, j, kind) } else { (j, i, kind) };
                fq.binary.push(BinaryConstraint { i, j, kind });
            }
            _ => return Err(UnsupportedReason::WideConjunct(c.to_string())),
        }
    }
    Ok(fq)
}

/// Recognize a two-variable conjunct as a binary constraint. All recognized
/// shapes are symmetric, so the variable order does not matter.
fn classify_binary(f: &Formula, _a: VarId, _b: VarId) -> Option<BinKind> {
    match f {
        Formula::DistLe(_, _, 0) => Some(BinKind::Eq),
        Formula::DistLe(_, _, d) => Some(BinKind::Le(*d)),
        Formula::Edge(..) => Some(BinKind::Edge),
        Formula::Eq(..) => Some(BinKind::Eq),
        Formula::Not(inner) => match inner.as_ref() {
            Formula::DistLe(_, _, 0) => Some(BinKind::Neq),
            Formula::DistLe(_, _, d) => Some(BinKind::Gt(*d)),
            Formula::Edge(..) => Some(BinKind::NotEdge),
            Formula::Eq(..) => Some(BinKind::Neq),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_logic::parse_query;

    #[test]
    fn example_2_compiles() {
        let q = parse_query("dist(x,y) > 2 && Blue(y)").unwrap();
        let branches = compile(&q).unwrap();
        assert_eq!(branches.len(), 1);
        let fq = &branches[0];
        assert_eq!(fq.k, 2);
        assert_eq!(
            fq.binary,
            vec![BinaryConstraint {
                i: 0,
                j: 1,
                kind: BinKind::Gt(2)
            }]
        );
        assert_eq!(fq.unary[0], Formula::True);
        assert_ne!(fq.unary[1], Formula::True);
        assert_eq!(fq.max_radius(), 2);
    }

    #[test]
    fn ternary_far_query() {
        let q = parse_query("q(x,y,z) := dist(x,z) > 2 && dist(y,z) > 2 && Blue(z)").unwrap();
        let fq = &compile(&q).unwrap()[0];
        assert_eq!(fq.k, 3);
        assert_eq!(fq.binary.len(), 2);
        assert!(fq
            .binary
            .iter()
            .all(|c| c.kind == BinKind::Gt(2) && c.j == 2));
    }

    #[test]
    fn guarded_unary_conjuncts() {
        // Parenthesize the quantifier: in operand position it would scope
        // over everything to its right.
        let q = parse_query("(exists u. (E(x,u) && Blue(u))) && dist(x,y) <= 3 && Red(y)").unwrap();
        let fq = &compile(&q).unwrap()[0];
        assert_eq!(
            fq.binary,
            vec![BinaryConstraint {
                i: 0,
                j: 1,
                kind: BinKind::Le(3)
            }]
        );
        assert_ne!(fq.unary[0], Formula::True);
        assert_ne!(fq.unary[1], Formula::True);
    }

    #[test]
    fn sentences_split_out() {
        let q = parse_query("(exists u. Blue(u)) && E(x, y)").unwrap();
        let fq = &compile(&q).unwrap()[0];
        assert_eq!(fq.sentences.len(), 1);
        assert_eq!(
            fq.binary,
            vec![BinaryConstraint {
                i: 0,
                j: 1,
                kind: BinKind::Edge
            }]
        );
    }

    #[test]
    fn union_branches() {
        let q = parse_query("E(x,y) || dist(x,y) > 4").unwrap();
        let branches = compile(&q).unwrap();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[1].binary[0].kind, BinKind::Gt(4));
    }

    #[test]
    fn normalizations() {
        let q = parse_query("dist(x,y) <= 0 && x != y").unwrap();
        let fq = &compile(&q).unwrap()[0];
        assert_eq!(fq.binary[0].kind, BinKind::Eq);
        assert_eq!(fq.binary[1].kind, BinKind::Neq);
        let q = parse_query("dist(x,y) > 0").unwrap();
        assert_eq!(compile(&q).unwrap()[0].binary[0].kind, BinKind::Neq);
    }

    #[test]
    fn unsupported_shapes() {
        let q = parse_query("E(x,y) || (E(y,z) && E(z,x))").unwrap();
        // Three free variables in one conjunct of the second disjunct? No —
        // each conjunct has 2. But the disjuncts have different free-var
        // sets, which is fine: missing variables are unconstrained.
        assert!(compile(&q).is_ok());

        let q = parse_query("exists u. (E(x,u) && E(u,y))").unwrap();
        // Two free variables under a quantifier: not a recognized binary.
        assert!(matches!(
            compile(&q),
            Err(UnsupportedReason::ComplexBinary(_))
        ));

        let q = parse_query("R(x, y)").unwrap();
        assert!(matches!(
            compile(&q),
            Err(UnsupportedReason::RelationalAtom(_))
        ));
    }

    #[test]
    fn wide_conjunct_rejected() {
        // A single atom can't span 3 variables, but a disjunction inside a
        // conjunct can.
        let q = parse_query("(E(x,y) || E(y,z)) && E(x,z)").unwrap();
        assert!(matches!(
            compile(&q),
            Err(UnsupportedReason::WideConjunct(_))
        ));
    }

    #[test]
    fn constraints_on_position() {
        let q = parse_query("E(x,y) && dist(x,z) > 2 && Blue(z)").unwrap();
        let fq = &compile(&q).unwrap()[0];
        assert_eq!(fq.constraints_on(1).count(), 1);
        assert_eq!(fq.constraints_on(2).count(), 1);
        assert_eq!(fq.constraints_on(0).count(), 0);
    }
}
