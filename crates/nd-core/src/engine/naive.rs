//! The naive fallback engine: full materialization at preparation time.
//!
//! Exposes the same testing / next-solution / enumeration API as the
//! indexed engine, so (a) every FO⁺ query is supported end-to-end, and
//! (b) the experiment harness has an honest baseline whose preprocessing is
//! `O(n^{k+qr})` and whose index is `O(|q(G)|)` — the costs the paper's
//! machinery avoids.

use nd_graph::budget::{BudgetExceeded, BudgetTracker, Phase};
use nd_graph::{ColoredGraph, Vertex};
use nd_logic::ast::Query;
use nd_logic::eval::{eval_in, Assignment, EvalCtx};

pub struct NaiveEngine {
    arity: usize,
    /// All solutions, lexicographically sorted.
    solutions: Vec<Vec<Vertex>>,
}

impl NaiveEngine {
    /// Unbudgeted convenience; see [`NaiveEngine::try_prepare`].
    pub fn prepare(g: &ColoredGraph, q: &Query) -> NaiveEngine {
        Self::try_prepare(g, q, &BudgetTracker::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    /// Materialize `q(G)` (the `O(n^k)` nested loop), charging every
    /// examined tuple against `tracker` so that a capped run bails out
    /// with [`BudgetExceeded`] instead of grinding through the product
    /// space.
    pub fn try_prepare(
        g: &ColoredGraph,
        q: &Query,
        tracker: &BudgetTracker,
    ) -> Result<NaiveEngine, BudgetExceeded> {
        let mut ctx = EvalCtx::new(g);
        let mut asg: Assignment = Vec::new();
        let mut tuple = vec![0 as Vertex; q.arity()];
        let mut out = Vec::new();
        rec_materialize(&mut ctx, q, 0, &mut tuple, &mut asg, &mut out, tracker)?;
        Ok(NaiveEngine {
            arity: q.arity(),
            solutions: out,
        })
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn count(&self) -> usize {
        self.solutions.len()
    }

    pub fn test(&self, tuple: &[Vertex]) -> bool {
        self.solutions
            .binary_search_by(|s| s.as_slice().cmp(tuple))
            .is_ok()
    }

    pub fn next_solution(&self, from: &[Vertex]) -> Option<Vec<Vertex>> {
        let idx = self.solutions.partition_point(|s| s.as_slice() < from);
        self.solutions.get(idx).cloned()
    }

    /// Append the engine's binary encoding to `w` (DESIGN.md §9): the
    /// materialized solution set as flat arity-sized tuples. The arity
    /// itself is not stored — the loader knows it from the query section.
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        if self.arity == 0 {
            w.bool(!self.solutions.is_empty());
            return;
        }
        w.seq_len(self.solutions.len());
        for s in &self.solutions {
            for &v in s {
                w.u32(v);
            }
        }
    }

    /// Decode an engine with the given `arity` over an `n`-vertex graph
    /// (both supplied by the caller from already-validated sections).
    /// Re-validates the strict lexicographic order the binary searches of
    /// [`Self::test`] / [`Self::next_solution`] rely on.
    pub fn read_from(
        r: &mut nd_persist::Reader<'_>,
        arity: usize,
        n: usize,
    ) -> Result<NaiveEngine, nd_persist::PersistError> {
        use nd_persist::malformed;
        if arity == 0 {
            let holds = r.bool("naive boolean solution")?;
            return Ok(NaiveEngine {
                arity,
                solutions: if holds { vec![Vec::new()] } else { Vec::new() },
            });
        }
        let count = r.seq_len(4 * arity, "naive solution count")?;
        let mut solutions: Vec<Vec<Vertex>> = Vec::with_capacity(count);
        for _ in 0..count {
            let mut tuple = Vec::with_capacity(arity);
            for _ in 0..arity {
                let v = r.u32("naive solution component")?;
                if (v as usize) >= n {
                    return Err(malformed("naive solution component out of range"));
                }
                tuple.push(v);
            }
            if solutions.last().is_some_and(|prev| prev >= &tuple) {
                return Err(malformed(
                    "naive solutions not in strict lexicographic order",
                ));
            }
            solutions.push(tuple);
        }
        Ok(NaiveEngine { arity, solutions })
    }
}

fn assign(asg: &mut Assignment, var: nd_logic::ast::VarId, val: Option<Vertex>) {
    if asg.len() <= var.0 as usize {
        asg.resize(var.0 as usize + 1, None);
    }
    asg[var.0 as usize] = val;
}

/// The lexicographic nested loop of `nd_logic::eval::materialize`, with a
/// budget charge per examined tuple (and per quantifier-free evaluation
/// at the leaves).
fn rec_materialize(
    ctx: &mut EvalCtx<'_>,
    q: &Query,
    pos: usize,
    tuple: &mut Vec<Vertex>,
    asg: &mut Assignment,
    out: &mut Vec<Vec<Vertex>>,
    tracker: &BudgetTracker,
) -> Result<(), BudgetExceeded> {
    if pos == q.arity() {
        tracker.charge_nodes(Phase::NaiveMaterialize, 1)?;
        if eval_in(ctx, &q.formula, asg) {
            tracker.charge_memory(Phase::NaiveMaterialize, 4 * tuple.len().max(1) as u64)?;
            out.push(tuple.clone());
        }
        return Ok(());
    }
    for a in 0..ctx.g.n() as Vertex {
        tuple[pos] = a;
        assign(asg, q.free[pos], Some(a));
        rec_materialize(ctx, q, pos + 1, tuple, asg, out, tracker)?;
    }
    assign(asg, q.free[pos], None);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use nd_logic::parse_query;

    #[test]
    fn api_contract() {
        let g = generators::cycle(6);
        let q = parse_query("E(x,y)").unwrap();
        let e = NaiveEngine::prepare(&g, &q);
        assert_eq!(e.count(), 12);
        assert!(e.test(&[0, 1]));
        assert!(!e.test(&[0, 2]));
        assert_eq!(e.next_solution(&[0, 0]), Some(vec![0, 1]));
        assert_eq!(e.next_solution(&[0, 2]), Some(vec![0, 5]));
        assert_eq!(e.next_solution(&[5, 5]), None);
        assert_eq!(e.arity(), 2);
    }

    #[test]
    fn binary_codec_roundtrip_and_rejection() {
        let g = generators::cycle(6);
        let q = parse_query("E(x,y)").unwrap();
        let e = NaiveEngine::prepare(&g, &q);
        let mut w = nd_persist::Writer::new();
        e.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = nd_persist::Reader::new(&bytes);
        let back = NaiveEngine::read_from(&mut r, 2, g.n()).unwrap();
        r.finish().unwrap();
        assert_eq!(back.count(), e.count());
        assert!(back.test(&[0, 1]));
        assert_eq!(back.next_solution(&[0, 2]), Some(vec![0, 5]));
        for cut in 0..bytes.len() {
            assert!(
                NaiveEngine::read_from(&mut nd_persist::Reader::new(&bytes[..cut]), 2, g.n())
                    .is_err(),
                "cut {cut}"
            );
        }
        // Out-of-range components and unsorted tuples are rejected.
        assert!(NaiveEngine::read_from(&mut nd_persist::Reader::new(&bytes), 2, 2).is_err());
        let mut w = nd_persist::Writer::new();
        w.seq_len(2);
        for v in [0u32, 1, 0, 1] {
            w.u32(v);
        }
        let dup = w.into_bytes();
        assert!(NaiveEngine::read_from(&mut nd_persist::Reader::new(&dup), 2, 6).is_err());

        // Boolean (arity-0) engines encode as a single flag.
        let b = NaiveEngine {
            arity: 0,
            solutions: vec![Vec::new()],
        };
        let mut w = nd_persist::Writer::new();
        b.write_into(&mut w);
        let bytes = w.into_bytes();
        let back = NaiveEngine::read_from(&mut nd_persist::Reader::new(&bytes), 0, 6).unwrap();
        assert!(back.test(&[]));
    }
}
