//! The naive fallback engine: full materialization at preparation time.
//!
//! Exposes the same testing / next-solution / enumeration API as the
//! indexed engine, so (a) every FO⁺ query is supported end-to-end, and
//! (b) the experiment harness has an honest baseline whose preprocessing is
//! `O(n^{k+qr})` and whose index is `O(|q(G)|)` — the costs the paper's
//! machinery avoids.

use nd_graph::{ColoredGraph, Vertex};
use nd_logic::ast::Query;
use nd_logic::eval::materialize;

pub struct NaiveEngine {
    arity: usize,
    /// All solutions, lexicographically sorted.
    solutions: Vec<Vec<Vertex>>,
}

impl NaiveEngine {
    pub fn prepare(g: &ColoredGraph, q: &Query) -> NaiveEngine {
        NaiveEngine {
            arity: q.arity(),
            solutions: materialize(g, q),
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn count(&self) -> usize {
        self.solutions.len()
    }

    pub fn test(&self, tuple: &[Vertex]) -> bool {
        self.solutions
            .binary_search_by(|s| s.as_slice().cmp(tuple))
            .is_ok()
    }

    pub fn next_solution(&self, from: &[Vertex]) -> Option<Vec<Vertex>> {
        let idx = self
            .solutions
            .partition_point(|s| s.as_slice() < from);
        self.solutions.get(idx).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use nd_logic::parse_query;

    #[test]
    fn api_contract() {
        let g = generators::cycle(6);
        let q = parse_query("E(x,y)").unwrap();
        let e = NaiveEngine::prepare(&g, &q);
        assert_eq!(e.count(), 12);
        assert!(e.test(&[0, 1]));
        assert!(!e.test(&[0, 2]));
        assert_eq!(e.next_solution(&[0, 0]), Some(vec![0, 1]));
        assert_eq!(e.next_solution(&[0, 2]), Some(vec![0, 5]));
        assert_eq!(e.next_solution(&[5, 5]), None);
        assert_eq!(e.arity(), 2);
    }
}
