//! The naive fallback engine: full materialization at preparation time.
//!
//! Exposes the same testing / next-solution / enumeration API as the
//! indexed engine, so (a) every FO⁺ query is supported end-to-end, and
//! (b) the experiment harness has an honest baseline whose preprocessing is
//! `O(n^{k+qr})` and whose index is `O(|q(G)|)` — the costs the paper's
//! machinery avoids.

use nd_graph::budget::{BudgetExceeded, BudgetTracker, Phase};
use nd_graph::{ColoredGraph, Vertex};
use nd_logic::ast::Query;
use nd_logic::eval::{eval_in, Assignment, EvalCtx};

pub struct NaiveEngine {
    arity: usize,
    /// All solutions, lexicographically sorted.
    solutions: Vec<Vec<Vertex>>,
}

impl NaiveEngine {
    /// Unbudgeted convenience; see [`NaiveEngine::try_prepare`].
    pub fn prepare(g: &ColoredGraph, q: &Query) -> NaiveEngine {
        Self::try_prepare(g, q, &BudgetTracker::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    /// Materialize `q(G)` (the `O(n^k)` nested loop), charging every
    /// examined tuple against `tracker` so that a capped run bails out
    /// with [`BudgetExceeded`] instead of grinding through the product
    /// space.
    pub fn try_prepare(
        g: &ColoredGraph,
        q: &Query,
        tracker: &BudgetTracker,
    ) -> Result<NaiveEngine, BudgetExceeded> {
        let mut ctx = EvalCtx::new(g);
        let mut asg: Assignment = Vec::new();
        let mut tuple = vec![0 as Vertex; q.arity()];
        let mut out = Vec::new();
        rec_materialize(&mut ctx, q, 0, &mut tuple, &mut asg, &mut out, tracker)?;
        Ok(NaiveEngine {
            arity: q.arity(),
            solutions: out,
        })
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn count(&self) -> usize {
        self.solutions.len()
    }

    pub fn test(&self, tuple: &[Vertex]) -> bool {
        self.solutions
            .binary_search_by(|s| s.as_slice().cmp(tuple))
            .is_ok()
    }

    pub fn next_solution(&self, from: &[Vertex]) -> Option<Vec<Vertex>> {
        let idx = self.solutions.partition_point(|s| s.as_slice() < from);
        self.solutions.get(idx).cloned()
    }
}

fn assign(asg: &mut Assignment, var: nd_logic::ast::VarId, val: Option<Vertex>) {
    if asg.len() <= var.0 as usize {
        asg.resize(var.0 as usize + 1, None);
    }
    asg[var.0 as usize] = val;
}

/// The lexicographic nested loop of `nd_logic::eval::materialize`, with a
/// budget charge per examined tuple (and per quantifier-free evaluation
/// at the leaves).
fn rec_materialize(
    ctx: &mut EvalCtx<'_>,
    q: &Query,
    pos: usize,
    tuple: &mut Vec<Vertex>,
    asg: &mut Assignment,
    out: &mut Vec<Vec<Vertex>>,
    tracker: &BudgetTracker,
) -> Result<(), BudgetExceeded> {
    if pos == q.arity() {
        tracker.charge_nodes(Phase::NaiveMaterialize, 1)?;
        if eval_in(ctx, &q.formula, asg) {
            tracker.charge_memory(Phase::NaiveMaterialize, 4 * tuple.len().max(1) as u64)?;
            out.push(tuple.clone());
        }
        return Ok(());
    }
    for a in 0..ctx.g.n() as Vertex {
        tuple[pos] = a;
        assign(asg, q.free[pos], Some(a));
        rec_materialize(ctx, q, pos + 1, tuple, asg, out, tracker)?;
    }
    assign(asg, q.free[pos], None);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use nd_logic::parse_query;

    #[test]
    fn api_contract() {
        let g = generators::cycle(6);
        let q = parse_query("E(x,y)").unwrap();
        let e = NaiveEngine::prepare(&g, &q);
        assert_eq!(e.count(), 12);
        assert!(e.test(&[0, 1]));
        assert!(!e.test(&[0, 2]));
        assert_eq!(e.next_solution(&[0, 0]), Some(vec![0, 1]));
        assert_eq!(e.next_solution(&[0, 2]), Some(vec![0, 5]));
        assert_eq!(e.next_solution(&[5, 5]), None);
        assert_eq!(e.arity(), 2);
    }
}
