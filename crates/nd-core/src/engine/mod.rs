//! Query compilation and the `PreparedQuery` front-end.

pub mod counting;
pub mod fragment;
pub mod naive;
pub mod prepared;
