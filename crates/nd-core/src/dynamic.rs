//! A **dynamic** index for single-far-constraint queries — a first step on
//! the paper's stated future work.
//!
//! The conclusion of the paper asks whether the enumeration index can be
//! maintained under updates instead of being recomputed. For the simplest
//! non-trivial query class — the paper's own Example 2,
//!
//! ```text
//! q(x, y) = U(y) ∧ dist(x, y) > r
//! ```
//!
//! with a *dynamic* unary predicate `U` (vertices gain and lose the color
//! at runtime, the graph stays fixed) — the Storing Theorem already
//! provides everything needed:
//!
//! * per cover bag `X`, maintain the set `L ∖ K_r(X)` (witnesses outside
//!   the bag's kernel) in one shared Storing-Theorem trie keyed by
//!   `(bag, vertex)`;
//! * adding/removing a witness `v` touches one key per kernel *not*
//!   containing… no — per bag whose kernel does **not** contain `v` would
//!   be linear, so instead key by the bags that *do* contain `v` in their
//!   kernel and complement at query time: `SKIP₁(b, X)` = the smallest
//!   witness `≥ b` that is not in `K_r(X)`. We store, per bag `X` with
//!   `v ∈ K_r(X)`, the key `(X, v)` in an *exclusion* trie, and all
//!   witnesses in a global trie. A query walks the global successor chain,
//!   consulting the exclusion trie to leap over excluded runs via its own
//!   successor pointers.
//!
//! Concretely `skip1(b, X)` interleaves the two successor structures: the
//! global trie proposes the next witness `w ≥ b`; the exclusion trie's
//! successor for `(X, w)` decides in `O(1)` whether the *next* witness is
//! also excluded. Each loop iteration either answers or consumes one
//! excluded witness, so a query costs `O(1 + ℓ)` where `ℓ` is the number of
//! witnesses inside `K_r(X)` between `b` and the answer — at most the
//! kernel size, i.e. pseudo-constant on sparse classes. Updates cost
//! `O(δ(v) · n^ε)` where `δ(v)` is the number of kernels containing `v`.
//!
//! This does not reach the paper's full ambition (arbitrary FO, edge
//! updates), but it makes Example 2 fully dynamic with pseudo-constant
//! update cost and exact queries — and it is property-tested against
//! recomputation.

use nd_cover::{BagId, Cover, KernelIndex};
use nd_graph::Vertex;
use nd_store::{FnStore, StoreParams};

/// Dynamic witness set with per-bag kernel exclusion queries.
pub struct DynamicFarIndex {
    /// All current witnesses, keyed `(v)`.
    witnesses: FnStore,
    /// Excluded pairs `(bag, v)` for every bag with `v ∈ K_r(X)`.
    excluded: FnStore,
    params_w: StoreParams,
    params_e: StoreParams,
    n: usize,
}

impl DynamicFarIndex {
    /// Panicking convenience over [`DynamicFarIndex::try_new`].
    pub fn new(n: usize, num_bags: usize, epsilon: f64) -> DynamicFarIndex {
        Self::try_new(n, num_bags, epsilon).expect("invalid dynamic index parameters")
    }

    /// Empty index over a graph with `n` vertices and the given number of
    /// cover bags. Rejects a degenerate `ε` or a domain too wide for the
    /// packed trie keys.
    pub fn try_new(
        n: usize,
        num_bags: usize,
        epsilon: f64,
    ) -> Result<DynamicFarIndex, nd_store::StoreError> {
        let params_w = StoreParams::try_new(n.max(1) as u64, 1, epsilon)?;
        let params_e = StoreParams::try_new(n.max(num_bags).max(1) as u64, 2, epsilon)?;
        Ok(DynamicFarIndex {
            witnesses: FnStore::new(params_w),
            excluded: FnStore::new(params_e),
            params_w,
            params_e,
            n,
        })
    }

    /// Build from an initial witness list.
    pub fn build(
        n: usize,
        kernels: &KernelIndex,
        num_bags: usize,
        witnesses: &[Vertex],
        epsilon: f64,
    ) -> DynamicFarIndex {
        let mut idx = DynamicFarIndex::new(n, num_bags, epsilon);
        for &v in witnesses {
            idx.insert(kernels, v);
        }
        idx
    }

    /// Number of current witnesses.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// Is `v` currently a witness? Constant time.
    pub fn contains(&self, v: Vertex) -> bool {
        matches!(
            self.witnesses.lookup(&[v as u64]),
            nd_store::Lookup::Found(_)
        )
    }

    /// Add a witness. `O(δ(v) · n^ε)` — one trie update plus one per
    /// kernel containing `v`.
    pub fn insert(&mut self, kernels: &KernelIndex, v: Vertex) -> bool {
        if self.witnesses.insert(&[v as u64], 1).is_some() {
            return false;
        }
        for &x in kernels.kernel_bags_of(v) {
            self.excluded.insert(&[x as u64, v as u64], 1);
        }
        true
    }

    /// Remove a witness. Same cost as [`Self::insert`].
    pub fn remove(&mut self, kernels: &KernelIndex, v: Vertex) -> bool {
        if self.witnesses.remove(&[v as u64]).is_none() {
            return false;
        }
        for &x in kernels.kernel_bags_of(v) {
            self.excluded.remove(&[x as u64, v as u64]);
        }
        true
    }

    /// Smallest witness `≥ b`, ignoring exclusions. Constant time.
    pub fn successor(&self, b: Vertex) -> Option<Vertex> {
        if (b as usize) >= self.n {
            return None;
        }
        self.witnesses
            .successor_inclusive_packed(self.params_w.pack(&[b as u64]))
            .map(|p| self.params_w.unpack(p)[0] as Vertex)
    }

    /// `SKIP₁(b, X)`: the smallest witness `≥ b` outside `K_r(X)`.
    /// Cost `O(1 + runs)` where `runs` counts maximal blocks of
    /// consecutive-in-`L` witnesses lying inside the kernel between `b` and
    /// the answer.
    pub fn skip1(&self, bag: BagId, b: Vertex) -> Option<Vertex> {
        let mut cur = self.successor(b)?;
        loop {
            // Is cur excluded for this bag?
            let key = self.params_e.pack(&[bag as u64, cur as u64]);
            match self.witnesses.lookup(&[cur as u64]) {
                nd_store::Lookup::Found(_) => {}
                _ => unreachable!("successor returned a non-witness"),
            }
            if !matches!(
                self.excluded.lookup_packed(key),
                nd_store::LookupPacked::Found(_)
            ) {
                return Some(cur);
            }
            // cur is excluded: jump to the next *non-excluded* point. The
            // exclusion trie's successor gives the next excluded witness
            // e > cur for this bag; every witness strictly between cur and
            // e is not excluded, so the global successor of cur either
            // answers immediately or equals e (and we loop, having consumed
            // one excluded witness).
            let next_w = match cur.checked_add(1) {
                Some(nw) if (nw as usize) < self.n => self.successor(nw)?,
                _ => return None,
            };
            let next_e = self
                .excluded
                .successor_strict(&[bag as u64, cur as u64])
                .filter(|k| k[0] == bag as u64)
                .map(|k| k[1] as Vertex);
            match next_e {
                Some(e) if e == next_w => {
                    cur = next_w; // still excluded, consume and continue
                }
                _ => return Some(next_w), // next witness escapes the kernel
            }
        }
    }

    /// Reference scan for tests.
    #[doc(hidden)]
    pub fn skip1_naive(&self, kernels: &KernelIndex, bag: BagId, b: Vertex) -> Option<Vertex> {
        let mut cur = self.successor(b)?;
        loop {
            if !kernels.in_kernel(bag, cur) {
                return Some(cur);
            }
            cur = match cur.checked_add(1) {
                Some(nb) if (nb as usize) < self.n => self.successor(nb)?,
                _ => return None,
            };
        }
    }
}

/// Convenience: build the static machinery (cover + kernels) and the
/// dynamic index together for a given radius.
pub struct DynamicFarQuery {
    pub cover: Cover,
    pub kernels: KernelIndex,
    pub index: DynamicFarIndex,
    r: u32,
}

impl DynamicFarQuery {
    /// Panicking convenience over [`DynamicFarQuery::try_new`].
    pub fn new(
        g: &nd_graph::ColoredGraph,
        r: u32,
        witnesses: &[Vertex],
        epsilon: f64,
    ) -> DynamicFarQuery {
        Self::try_new(
            g,
            r,
            witnesses,
            epsilon,
            &nd_graph::BudgetTracker::unlimited(),
        )
        .expect("invalid dynamic query input")
    }

    /// Preprocess `g` for the dynamic Example 2 query `U(y) ∧ dist(x,y) > r`
    /// with initial witness set `witnesses`. Validates `ε` and the witness
    /// ids, and charges cover/kernel construction against `tracker`.
    pub fn try_new(
        g: &nd_graph::ColoredGraph,
        r: u32,
        witnesses: &[Vertex],
        epsilon: f64,
        tracker: &nd_graph::BudgetTracker,
    ) -> Result<DynamicFarQuery, crate::NdError> {
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(
                crate::PrepareError::InvalidInput(crate::InvalidInput::BadEpsilon(epsilon)).into(),
            );
        }
        if let Some(&v) = witnesses.iter().find(|&&v| (v as usize) >= g.n()) {
            return Err(nd_graph::GraphError::VertexOutOfRange { v, n: g.n() }.into());
        }
        let cover = Cover::try_build(g, 2 * r, epsilon, tracker)?;
        let kernels = KernelIndex::try_build(g, &cover, r, tracker)?;
        let mut index = DynamicFarIndex::try_new(g.n(), cover.num_bags(), epsilon)?;
        for &v in witnesses {
            index.insert(&kernels, v);
        }
        Ok(DynamicFarQuery {
            cover,
            kernels,
            index,
            r,
        })
    }

    pub fn radius(&self) -> u32 {
        self.r
    }

    /// Smallest witness `≥ b` at distance `> r` from `a`… up to kernel
    /// granularity: returns the smallest witness `≥ b` outside
    /// `K_r(X(a))`, which is guaranteed far; witnesses *inside* the kernel
    /// may also be far and are the caller's bag-local responsibility
    /// (exactly as in the static Case I split of Section 5.2.2).
    pub fn next_far_witness(&self, a: Vertex, b: Vertex) -> Option<Vertex> {
        self.index.skip1(self.cover.bag_of(a), b)
    }

    /// Toggle a vertex's witness status; returns the new status.
    pub fn toggle(&mut self, v: Vertex) -> bool {
        if self.index.contains(v) {
            self.index.remove(&self.kernels, v);
            false
        } else {
            self.index.insert(&self.kernels, v);
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn skip1_matches_naive_under_updates() {
        let mut rng = StdRng::seed_from_u64(5);
        for g in [
            generators::grid(10, 10),
            generators::random_tree(120, 3),
            generators::bounded_degree(150, 4, 7),
        ] {
            let r = 2;
            let cover = Cover::build(&g, 2 * r, 0.5);
            let kernels = KernelIndex::build(&g, &cover, r);
            let mut idx = DynamicFarIndex::new(g.n(), cover.num_bags(), 0.5);
            for round in 0..200 {
                let v = rng.random_range(0..g.n() as Vertex);
                if idx.contains(v) {
                    assert!(idx.remove(&kernels, v));
                } else {
                    assert!(idx.insert(&kernels, v));
                }
                // Spot-check queries after every update.
                for _ in 0..4 {
                    let bag = rng.random_range(0..cover.num_bags() as BagId);
                    let b = rng.random_range(0..g.n() as Vertex);
                    assert_eq!(
                        idx.skip1(bag, b),
                        idx.skip1_naive(&kernels, bag, b),
                        "round {round}, bag {bag}, b {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn far_witness_guarantee() {
        let g = generators::grid(12, 12);
        let r = 2;
        let witnesses: Vec<Vertex> = (0..g.n() as Vertex).filter(|v| v % 3 == 0).collect();
        let q = DynamicFarQuery::new(&g, r, &witnesses, 0.5);
        let mut scratch = nd_graph::BfsScratch::new(g.n());
        for a in (0..g.n() as Vertex).step_by(17) {
            let mut b = 0;
            while let Some(w) = q.next_far_witness(a, b) {
                assert!(
                    scratch.distance_capped(&g, a, w, r).is_none(),
                    "witness {w} too close to {a}"
                );
                b = match w.checked_add(1) {
                    Some(nb) if (nb as usize) < g.n() => nb,
                    _ => break,
                };
            }
        }
    }

    #[test]
    fn toggle_roundtrip() {
        let g = generators::path(30);
        let mut q = DynamicFarQuery::new(&g, 2, &[], 0.5);
        assert!(q.index.is_empty());
        assert!(q.toggle(7));
        assert!(q.index.contains(7));
        assert_eq!(q.index.len(), 1);
        assert!(!q.toggle(7));
        assert!(q.index.is_empty());
        assert_eq!(q.radius(), 2);
    }

    #[test]
    fn dynamic_agrees_with_static_rebuild() {
        // After a random update sequence, queries agree with an index built
        // from scratch on the final witness set.
        let g = generators::random_tree(80, 9);
        let r = 2;
        let cover = Cover::build(&g, 2 * r, 0.5);
        let kernels = KernelIndex::build(&g, &cover, r);
        let mut rng = StdRng::seed_from_u64(11);
        let mut idx = DynamicFarIndex::new(g.n(), cover.num_bags(), 0.5);
        let mut model = std::collections::BTreeSet::new();
        for _ in 0..120 {
            let v = rng.random_range(0..g.n() as Vertex);
            if model.contains(&v) {
                model.remove(&v);
                idx.remove(&kernels, v);
            } else {
                model.insert(v);
                idx.insert(&kernels, v);
            }
        }
        let fresh = DynamicFarIndex::build(
            g.n(),
            &kernels,
            cover.num_bags(),
            &model.iter().copied().collect::<Vec<_>>(),
            0.5,
        );
        assert_eq!(idx.len(), fresh.len());
        for bag in 0..cover.num_bags() as BagId {
            for b in 0..g.n() as Vertex {
                assert_eq!(idx.skip1(bag, b), fresh.skip1(bag, b));
            }
        }
    }
}
