//! The paper's main contribution: after pseudo-linear preprocessing of a
//! sparse colored graph, answer
//!
//! * **testing** (Corollary 2.4) — `ā ∈ q(G)`? in constant time,
//! * **next-solution** (Theorem 2.3) — the lexicographically smallest
//!   solution `≥ ā` in constant time,
//! * **enumeration** (Corollary 2.5) — all of `q(G)` in lexicographic order
//!   with constant delay,
//!
//! for first-order queries `q` in the *distance-type fragment* (conjunctions
//! of guarded unary formulas per variable and binary distance constraints
//! between variables, plus top-level disjunctions thereof — the output shape
//! of the Rank-Preserving Normal Form; see DESIGN.md §2). Queries outside
//! the fragment transparently fall back to a naive engine exposing the same
//! API (and serving as the experimental baseline).
//!
//! Module map (paper section in parentheses):
//!
//! * [`dist`] — the constant-time distance oracle (Proposition 4.2):
//!   neighborhood covers + splitter-game recursion + removal recoloring.
//! * [`skip`] — skip pointers (Lemma 5.8): `SKIP(b, S)` with the `SC(b)`
//!   closure of Claims 5.9/5.10.
//! * [`removal`] — the Removal Lemma (Lemma 5.5) as a general formula
//!   rewriting + graph recoloring.
//! * [`engine`] — query compilation and the `PreparedQuery` front-end
//!   (Sections 5.2.1/5.2.2).
//! * [`error`] — the workspace-wide typed error rollup ([`NdError`]) and
//!   the engine-level [`PrepareError`] / [`QueryError`]. Public entry
//!   points return these instead of panicking; preprocessing respects the
//!   resource caps of [`Budget`] and degrades down a ladder (see
//!   `PreparedQuery::prepare`) before giving up.

pub mod dist;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod independence;
pub mod removal;
#[cfg(feature = "sabotage")]
pub mod sabotage;
pub mod skip;

pub use dist::DistOracle;
pub use dynamic::{DynamicFarIndex, DynamicFarQuery};
pub use engine::fragment::{BinKind, FragmentQuery, UnsupportedReason};
pub use engine::prepared::{
    DegradationReason, DegradationRung, EngineKind, Enumerate, LoadedIndex, PrepareOpts,
    PrepareStats, PreparedQuery, SharedPreparedQuery,
};
pub use error::{InvalidInput, NdError, PrepareError, QueryError};
pub use nd_graph::budget::{Budget, BudgetExceeded, BudgetTracker, Phase, Resource};
pub use skip::SkipPointers;

/// The accuracy parameter `ε` of every pseudo-linear bound. Must be
/// positive; smaller values mean flatter (more `n^ε`-like) auxiliary
/// structures at the price of deeper tries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Epsilon(f64);

impl Epsilon {
    /// Panicking convenience over [`Epsilon::try_new`] for literal values.
    pub fn new(eps: f64) -> Epsilon {
        Self::try_new(eps).expect("epsilon must be positive and finite")
    }

    /// Validate `ε`: it must be a finite positive real.
    pub fn try_new(eps: f64) -> Result<Epsilon, NdError> {
        if eps > 0.0 && eps.is_finite() {
            Ok(Epsilon(eps))
        } else {
            Err(NdError::Prepare(PrepareError::InvalidInput(
                InvalidInput::BadEpsilon(eps),
            )))
        }
    }

    pub fn get(self) -> f64 {
        self.0
    }
}

impl Default for Epsilon {
    /// `ε = 1/2`: a sensible laptop-scale default.
    fn default() -> Self {
        Epsilon(0.5)
    }
}
