//! `(r, q)`-independence sentences (Section 5.1.2).
//!
//! An independence sentence asserts the existence of `k' ≤ q` pairwise
//! far-apart witnesses of a quantifier-free unary property:
//!
//! ```text
//! ∃z_1 … ∃z_{k'} ( ⋀_{i<j} dist(z_i, z_j) > r'  ∧  ⋀_i ψ(z_i) )
//! ```
//!
//! These are the only *global* (non-bag-local) checks the Rank-Preserving
//! Normal Form leaves behind, so evaluating them fast matters: naive
//! evaluation is `O(n^{k'})`. We use the classical sparse-graph argument:
//!
//! 1. greedily build a maximal `r'`-scattered subset `S` of the witness set
//!    `L = ψ(G)` (one pass over `L` with capped BFS balls — pseudo-linear
//!    on sparse graphs);
//! 2. if `|S| ≥ k'`, the sentence holds (greedy witnesses are a solution);
//! 3. otherwise *every* `L`-vertex is within distance `r'` of `S` (by
//!    maximality), so any solution lives inside `⋃_{s∈S} N_{r'}(s)` — a set
//!    of at most `(k'-1) · maxball` vertices — and an exact bounded search
//!    there decides the sentence. This is the standard FPT kernelization
//!    for scattered sets.

use nd_graph::{BfsScratch, ColoredGraph, Vertex};
use nd_logic::ast::{Formula, VarId};

/// A recognized independence sentence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndependenceSentence {
    /// Number of witnesses `k'`.
    pub count: usize,
    /// Pairwise distance bound `r'` (witnesses must be at distance `> r'`).
    pub radius: u32,
    /// The unary witness property `ψ(z)` (free variable [`Self::var`]).
    pub psi: Formula,
    pub var: VarId,
}

/// Try to recognize `f` as an independence sentence. Expected shape:
/// nested existentials over a conjunction of pairwise `dist > r'` atoms
/// (all with the same `r'`) and unary conjuncts, every unary conjunct
/// identical up to the variable.
pub fn recognize(f: &Formula) -> Option<IndependenceSentence> {
    // Peel quantifiers.
    let mut vars = Vec::new();
    let mut body = f;
    while let Formula::Exists(v, inner) = body {
        vars.push(*v);
        body = inner;
    }
    if vars.is_empty() {
        return None;
    }
    let conjuncts: Vec<&Formula> = match body {
        Formula::And(cs) => cs.iter().collect(),
        other => vec![other],
    };
    let mut radius: Option<u32> = None;
    let mut far_pairs = Vec::new();
    let mut unary: Vec<(VarId, Formula)> = Vec::new();
    for c in conjuncts {
        match c {
            Formula::Not(inner) => {
                if let Formula::DistLe(x, y, d) = inner.as_ref() {
                    if vars.contains(x) && vars.contains(y) && x != y {
                        if radius.is_some_and(|r| r != *d) {
                            return None; // mixed radii
                        }
                        radius = Some(*d);
                        far_pairs.push((*x.min(y), *x.max(y)));
                        continue;
                    }
                }
                // A negated unary conjunct.
                let fv = c.free_vars();
                if fv.len() == 1 && vars.contains(&fv[0]) {
                    unary.push((fv[0], c.clone()));
                    continue;
                }
                return None;
            }
            other => {
                let fv = other.free_vars();
                if fv.len() == 1 && vars.contains(&fv[0]) && other.quantifier_rank() == 0 {
                    unary.push((fv[0], other.clone()));
                    continue;
                }
                return None;
            }
        }
    }
    let radius = radius?;
    // All pairs must be far-constrained.
    let k = vars.len();
    if far_pairs.len() != k * (k - 1) / 2 {
        return None;
    }
    for i in 0..k {
        for j in (i + 1)..k {
            let (a, b) = (vars[i].min(vars[j]), vars[i].max(vars[j]));
            if !far_pairs.contains(&(a, b)) {
                return None;
            }
        }
    }
    // The unary property must be the same for every variable (up to the
    // variable name). Collect per-variable conjunctions and compare after
    // renaming to a canonical variable.
    let canon = VarId(u32::MAX);
    let mut per_var: Vec<Formula> = Vec::with_capacity(k);
    for &v in &vars {
        let parts: Vec<Formula> = unary
            .iter()
            .filter(|(w, _)| *w == v)
            .map(|(_, f2)| f2.rename(&|x| if x == v { canon } else { x }))
            .collect();
        per_var.push(Formula::and(parts));
    }
    if per_var.windows(2).any(|w| w[0] != w[1]) {
        return None;
    }
    Some(IndependenceSentence {
        count: k,
        radius,
        psi: per_var.into_iter().next().unwrap(),
        var: canon,
    })
}

/// Decide an independence sentence over `g`, given the (sorted) witness
/// list `L = ψ(G)`.
pub fn holds(g: &ColoredGraph, sentence: &IndependenceSentence, witnesses: &[Vertex]) -> bool {
    let k = sentence.count;
    let r = sentence.radius;
    if k == 0 {
        return true;
    }
    if witnesses.len() < k {
        return false;
    }
    // Step 1: greedy maximal r-scattered subset of L (stop early at k).
    let mut scratch = BfsScratch::new(g.n());
    let mut blocked = vec![false; g.n()];
    let mut greedy: Vec<Vertex> = Vec::new();
    for &v in witnesses {
        if blocked[v as usize] {
            continue;
        }
        greedy.push(v);
        if greedy.len() >= k {
            return true; // greedy picks are pairwise > r apart
        }
        scratch.run(g, v, r);
        for &w in scratch.reached() {
            blocked[w as usize] = true;
        }
    }
    // Step 2: kernelize — every witness is within r of some greedy pick,
    // so a solution lives in the union of their r-balls.
    let mut candidates: Vec<Vertex> = Vec::new();
    for &s in &greedy {
        scratch.run(g, s, r);
        for &w in scratch.reached() {
            if witnesses.binary_search(&w).is_ok() {
                candidates.push(w);
            }
        }
    }
    candidates.sort_unstable();
    candidates.dedup();
    // Step 3: exact bounded search over the kernel. Each pick runs one BFS
    // and filters the remaining candidates to those still compatible —
    // large radii shrink the candidate list drastically per level, which
    // keeps hard (negative) instances tractable.
    search(g, &candidates, r, k, &mut scratch)
}

fn search(
    g: &ColoredGraph,
    candidates: &[Vertex],
    r: u32,
    need: usize,
    scratch: &mut BfsScratch,
) -> bool {
    if need == 0 {
        return true;
    }
    if candidates.len() < need {
        return false;
    }
    for (idx, &v) in candidates.iter().enumerate() {
        if candidates.len() - idx < need {
            return false;
        }
        scratch.run(g, v, r);
        let rest: Vec<Vertex> = candidates[idx + 1..]
            .iter()
            .copied()
            .filter(|&w| scratch.dist(w) == nd_graph::bfs::UNREACHED)
            .collect();
        if search(g, &rest, r, need - 1, scratch) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use nd_logic::eval::eval;
    use nd_logic::locality::evaluate_unary;
    use nd_logic::{parse_query, Query};

    fn check(g: &ColoredGraph, src: &str) {
        let q = parse_query(src).unwrap();
        assert_eq!(q.arity(), 0, "test sentence must be boolean");
        let sentence = recognize(&q.formula)
            .unwrap_or_else(|| panic!("{src} should be recognized as independence"));
        let witnesses = evaluate_unary(g, &sentence.psi, sentence.var);
        let fast = holds(g, &sentence, &witnesses);
        let slow = eval(g, &Query::new(q.formula.clone(), vec![]), &[]);
        assert_eq!(fast, slow, "sentence {src}");
    }

    fn blue_every(n: usize, step: usize) -> ColoredGraph {
        let mut g = generators::path(n);
        g.add_color(
            (0..n as Vertex).filter(|v| v % step as u32 == 0).collect(),
            Some("Blue".into()),
        );
        g
    }

    #[test]
    fn recognizer_accepts_standard_shapes() {
        let q = parse_query("exists x. exists y. (dist(x,y) > 3 && Blue(x) && Blue(y))").unwrap();
        let s = recognize(&q.formula).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.radius, 3);

        let q = parse_query(
            "exists x. exists y. exists z. (dist(x,y) > 2 && dist(x,z) > 2 && dist(y,z) > 2)",
        )
        .unwrap();
        let s = recognize(&q.formula).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.psi, Formula::True);
    }

    #[test]
    fn recognizer_rejects_non_independence() {
        for src in [
            "exists x. exists y. (dist(x,y) <= 2 && Blue(x))", // close, not far
            "exists x. exists y. (dist(x,y) > 2 && Blue(x))",  // asymmetric ψ
            "exists x. exists y. (dist(x,y) > 2 && dist(x,y) > 3 && Blue(x) && Blue(y))", // mixed radii... same pair twice
            "exists x. exists y. exists z. (dist(x,y) > 2 && Blue(x) && Blue(y) && Blue(z))", // missing pair
        ] {
            let q = parse_query(src).unwrap();
            assert!(recognize(&q.formula).is_none(), "{src}");
        }
    }

    #[test]
    fn decision_matches_naive_on_paths() {
        let g = blue_every(40, 5);
        check(
            &g,
            "exists x. exists y. (dist(x,y) > 3 && Blue(x) && Blue(y))",
        );
        check(
            &g,
            "exists x. exists y. (dist(x,y) > 38 && Blue(x) && Blue(y))",
        );
        check(
            &g,
            "exists x. exists y. exists z. (dist(x,y) > 10 && dist(x,z) > 10 && dist(y,z) > 10 && Blue(x) && Blue(y) && Blue(z))",
        );
        // Impossible: needs 3 witnesses pairwise > 20 apart on a 40-path.
        check(
            &g,
            "exists x. exists y. exists z. (dist(x,y) > 20 && dist(x,z) > 20 && dist(y,z) > 20 && Blue(x) && Blue(y) && Blue(z))",
        );
    }

    #[test]
    fn decision_on_grids_and_trees() {
        let mut g = generators::grid(8, 8);
        g.add_color(vec![0, 7, 56, 63, 27], Some("Blue".into()));
        check(
            &g,
            "exists x. exists y. (dist(x,y) > 9 && Blue(x) && Blue(y))",
        );
        check(
            &g,
            "exists x. exists y. (dist(x,y) > 13 && Blue(x) && Blue(y))",
        );
        check(
            &g,
            "exists x. exists y. exists z. (dist(x,y) > 6 && dist(x,z) > 6 && dist(y,z) > 6 && Blue(x) && Blue(y) && Blue(z))",
        );

        let mut t = generators::binary_tree(63);
        t.add_color((0..63).collect(), Some("Blue".into()));
        check(
            &t,
            "exists x. exists y. (dist(x,y) > 8 && Blue(x) && Blue(y))",
        );
    }

    #[test]
    fn greedy_shortcut_on_abundant_witnesses() {
        // Many far-apart witnesses: the greedy pass must decide instantly.
        let g = blue_every(10_000, 7);
        let q = parse_query(
            "exists x. exists y. exists z. (dist(x,y) > 5 && dist(x,z) > 5 && dist(y,z) > 5 && Blue(x) && Blue(y) && Blue(z))",
        )
        .unwrap();
        let s = recognize(&q.formula).unwrap();
        let witnesses: Vec<Vertex> = (0..10_000).filter(|v| v % 7 == 0).collect();
        assert!(holds(&g, &s, &witnesses));
    }

    #[test]
    fn kernelized_search_handles_tight_cases() {
        // Witnesses clustered in one ball: greedy finds 1, kernel search
        // must correctly reject.
        let mut g = generators::star(50);
        g.add_color((1..=10).collect(), Some("Blue".into()));
        check(
            &g,
            "exists x. exists y. (dist(x,y) > 2 && Blue(x) && Blue(y))",
        );
        // Leaves are pairwise at distance exactly 2: > 1 holds.
        check(
            &g,
            "exists x. exists y. (dist(x,y) > 1 && Blue(x) && Blue(y))",
        );
    }
}
