//! Skip pointers (**Lemma 5.8**).
//!
//! Given a graph `G`, an `r`-neighborhood cover `X` with kernels
//! `K_r(X)`, and a target list `L ⊆ V`, the structure answers in constant
//! time, for any vertex `b` and any set `S` of at most `k` bags,
//!
//! ```text
//! SKIP(b, S) = min { b' ∈ L : b' ≥ b  ∧  b' ∉ ⋃_{X ∈ S} K_r(X) }
//! ```
//!
//! i.e. the next list member that escapes every kernel of `S`. Because a
//! vertex outside `K_r(X(a))` is guaranteed to be at distance `> r` from `a`
//! (when the cover radius is at least `2r`), this is what lets the
//! answering phase jump over entire "too close to the prefix" regions in
//! `O(1)` — the heart of constant delay for far-apart answer tuples.
//!
//! The full `SKIP` table is quadratic, so only the closure `SC(b)` of
//! "reachable" bag sets is materialized (Claims 5.9/5.10): `{X} ∈ SC(b)`
//! for every kernel containing `b`, and `S ∪ {Y} ∈ SC(b)` whenever
//! `S ∈ SC(b)`, `|S| < k` and `SKIP(b, S) ∈ K_r(Y)`. Per vertex this is
//! `O(δ^k)` sets (`δ` = kernel degree), keeping the table pseudo-linear.
//! Arbitrary queries are then answered by the constant-time reduction of
//! Claim 5.9.

use nd_cover::{BagId, KernelIndex};
use nd_graph::budget::{BudgetExceeded, BudgetTracker, Phase};
use nd_graph::Vertex;
use std::collections::HashMap;

/// A sorted, deduplicated set of at most 4 bag ids packed into one `u128`
/// (32 bits per id, most significant first, padded with all-ones) — a
/// `Copy` table key, so building and probing the table never allocates.
type BagSet = u128;

const MAX_SET: usize = 4;
const EMPTY_SLOT: u32 = u32::MAX;

#[inline]
fn encode_set(s: &[BagId]) -> BagSet {
    debug_assert!(s.len() <= MAX_SET);
    debug_assert!(s.windows(2).all(|w| w[0] < w[1]));
    let mut out: u128 = 0;
    for i in 0..MAX_SET {
        let v = s.get(i).copied().unwrap_or(EMPTY_SLOT);
        out = (out << 32) | v as u128;
    }
    out
}

/// Insert `y` into a sorted fixed-capacity set; no-op if present. Returns
/// `None` when the set is full.
#[inline]
fn set_with(s: &[BagId], y: BagId) -> Option<Vec<BagId>> {
    if s.len() >= MAX_SET {
        return None;
    }
    match s.binary_search(&y) {
        Ok(_) => Some(s.to_vec()),
        Err(pos) => {
            let mut out = Vec::with_capacity(s.len() + 1);
            out.extend_from_slice(&s[..pos]);
            out.push(y);
            out.extend_from_slice(&s[pos..]);
            Some(out)
        }
    }
}

/// The Lemma 5.8 structure.
pub struct SkipPointers {
    k: usize,
    n: usize,
    /// Sorted target list `L`.
    list: Vec<Vertex>,
    in_list: Vec<bool>,
    /// `next_in_list[v]`: smallest member of `L` strictly greater than `v`.
    next_in_list: Vec<Option<Vertex>>,
    /// `SKIP(b, S)` for all `S ∈ SC(b)`.
    table: HashMap<(Vertex, BagSet), Option<Vertex>>,
    /// When the `δ^k` closure would exceed this many entries (kernel
    /// degrees blow up on expander-like inputs), the closure is truncated;
    /// queries stay correct via a linear-scan fallback.
    truncated: bool,
}

impl SkipPointers {
    /// Precompute the pointers for up to `k` simultaneous bags.
    /// Cost `O(n · δ^k)` table entries, each `O(1)` amortized.
    pub fn build(n: usize, kernels: &KernelIndex, list: Vec<Vertex>, k: usize) -> SkipPointers {
        Self::build_with_cap(n, kernels, list, k, usize::MAX)
    }

    /// [`Self::build`] with a table-size cap. Past the cap no further bag
    /// sets are tabulated; `skip` degrades to a correct scan when it needs
    /// an untabulated set.
    pub fn build_with_cap(
        n: usize,
        kernels: &KernelIndex,
        list: Vec<Vertex>,
        k: usize,
        max_entries: usize,
    ) -> SkipPointers {
        Self::try_build_with_cap(
            n,
            kernels,
            list,
            k,
            max_entries,
            &BudgetTracker::unlimited(),
        )
        .expect("unlimited budget cannot be exceeded")
    }

    /// [`Self::build_with_cap`] with cooperative cancellation: every table
    /// entry is charged against `tracker`, so a capped preprocessing run
    /// aborts the `SC(b)` closure with [`BudgetExceeded`] instead of
    /// filling memory on adversarial kernel degrees. `k` is clamped into
    /// `1..=4` (larger simultaneous sets degrade to verified scans at
    /// query time; see [`Self::skip`]).
    pub fn try_build_with_cap(
        n: usize,
        kernels: &KernelIndex,
        mut list: Vec<Vertex>,
        k: usize,
        max_entries: usize,
        tracker: &BudgetTracker,
    ) -> Result<SkipPointers, BudgetExceeded> {
        let k = k.clamp(1, MAX_SET);
        list.sort_unstable();
        list.dedup();
        let mut in_list = vec![false; n];
        for &v in &list {
            in_list[v as usize] = true;
        }
        let mut next_in_list: Vec<Option<Vertex>> = vec![None; n];
        {
            let mut next = None;
            for v in (0..n).rev() {
                next_in_list[v] = next;
                if in_list[v] {
                    next = Some(v as Vertex);
                }
            }
        }
        let mut sp = SkipPointers {
            k,
            n,
            list,
            in_list,
            next_in_list,
            table: HashMap::new(),
            truncated: false,
        };
        tracker.charge_memory(Phase::SkipClosure, 9 * n as u64)?;
        // Claim 5.10: compute SKIP(b, S) for S ∈ SC(b), b descending, sets
        // in breadth-first (size) order.
        'outer: for b in (0..n as Vertex).rev() {
            let mut queue: Vec<Vec<BagId>> =
                kernels.kernel_bags_of(b).iter().map(|&x| vec![x]).collect();
            let mut head = 0;
            while head < queue.len() {
                let s = std::mem::take(&mut queue[head]);
                head += 1;
                let key = (b, encode_set(&s));
                if sp.table.contains_key(&key) {
                    continue;
                }
                if sp.table.len() >= max_entries {
                    sp.truncated = true;
                    break 'outer;
                }
                tracker.charge_nodes(Phase::SkipClosure, 1)?;
                tracker.charge_memory(Phase::SkipClosure, 48)?;
                let skip = sp.compute_skip(kernels, b, &s);
                sp.table.insert(key, skip);
                if s.len() < k {
                    if let Some(v) = skip {
                        for &y in kernels.kernel_bags_of(v) {
                            if s.binary_search(&y).is_err() {
                                if let Some(bigger) = set_with(&s, y) {
                                    queue.push(bigger);
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(sp)
    }

    /// Number of precomputed table entries (experiment E8: `O(n·δ^k)`).
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Was the closure truncated at the size cap (queries then use the
    /// scan fallback when they step outside the tabulated sets)?
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The sorted target list `L`.
    pub fn list(&self) -> &[Vertex] {
        &self.list
    }

    /// `SKIP(b, S)` for an arbitrary set `S` of at most `k` bags
    /// (Claim 5.9). Constant time. Sets larger than the prepared `k` are
    /// answered by a correct (linear) scan instead of panicking.
    pub fn skip(&self, kernels: &KernelIndex, b: Vertex, bags: &[BagId]) -> Option<Vertex> {
        let mut s: Vec<BagId> = bags.to_vec();
        s.sort_unstable();
        s.dedup();
        if s.len() > self.k {
            return self.scan_fallback(kernels, b, &s);
        }
        self.compute_skip(kernels, b, &s)
    }

    /// The Claim 5.9 case analysis. Uses only `next_in_list` and table
    /// entries for vertices `> b`, which is what makes the descending
    /// construction of Claim 5.10 well-founded.
    fn compute_skip(&self, kernels: &KernelIndex, b: Vertex, s: &[BagId]) -> Option<Vertex> {
        debug_assert!(s.windows(2).all(|w| w[0] < w[1]));
        // Case 1: b itself qualifies.
        if self.in_list[b as usize] && s.iter().all(|&x| !kernels.in_kernel(x, b)) {
            return Some(b);
        }
        // Case 2: move to the next list element c > b.
        let c = self.next_in_list[b as usize]?;
        let blocking: Vec<BagId> = s
            .iter()
            .copied()
            .filter(|&x| kernels.in_kernel(x, c))
            .collect();
        if blocking.is_empty() {
            return Some(c);
        }
        // Grow a maximal S' ⊆ S with S' ∈ SC(c), starting from a singleton
        // {X} with c ∈ K_r(X) (which is in SC(c) by construction).
        let mut s_prime: Vec<BagId> = vec![blocking[0]];
        let mut grew = true;
        while grew && s_prime.len() < s.len() {
            grew = false;
            for &y in s {
                if s_prime.binary_search(&y).is_err() {
                    if let Some(candidate) = set_with(&s_prime, y) {
                        if self.table.contains_key(&(c, encode_set(&candidate))) {
                            s_prime = candidate;
                            grew = true;
                        }
                    }
                }
            }
        }
        match self.table.get(&(c, encode_set(&s_prime))) {
            Some(v) => *v,
            // The table was truncated at the size cap — or decoded from a
            // file whose closure is incomplete (hostile bytes pass the CRC
            // only on purpose-built inputs, but they must not panic): fall
            // back to a correct linear scan of L.
            None => self.scan_fallback(kernels, c, s),
        }
    }

    /// Correct (but linear) fallback used only past the table cap.
    fn scan_fallback(&self, kernels: &KernelIndex, from: Vertex, s: &[BagId]) -> Option<Vertex> {
        let mut cur = if self.in_list[from as usize] {
            Some(from)
        } else {
            self.next_in_list[from as usize]
        };
        while let Some(v) = cur {
            if s.iter().all(|&x| !kernels.in_kernel(x, v)) {
                return Some(v);
            }
            cur = self.next_in_list[v as usize];
        }
        None
    }

    /// Exhaustive reference implementation for tests.
    #[doc(hidden)]
    pub fn skip_naive(&self, kernels: &KernelIndex, b: Vertex, bags: &[BagId]) -> Option<Vertex> {
        self.list
            .iter()
            .copied()
            .filter(|&v| v >= b)
            .find(|&v| bags.iter().all(|&x| !kernels.in_kernel(x, v)))
    }

    /// Memory guard used by stats: n of the underlying graph.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Append the structure's binary encoding to `w` (DESIGN.md §9).
    ///
    /// The tabulated `SC(b)` closure — the expensive part — is serialized
    /// as sorted `(vertex, bag-set, skip)` triples (sorted so the encoding
    /// is deterministic despite the hash map); the cheap `in_list` /
    /// `next_in_list` arrays are rebuilt on load in `O(n)`.
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        w.u32(self.k as u32);
        w.u32_slice(&self.list);
        w.bool(self.truncated);
        let mut entries: Vec<(Vertex, BagSet, Option<Vertex>)> = self
            .table
            .iter()
            .map(|(&(v, s), &val)| (v, s, val))
            .collect();
        entries.sort_unstable();
        w.seq_len(entries.len());
        for (v, set, val) in entries {
            w.u32(v);
            w.u128(set);
            match val {
                None => w.u8(0),
                Some(x) => {
                    w.u8(1);
                    w.u32(x);
                }
            }
        }
    }

    /// Decode the structure for an `n`-vertex graph (`n` supplied by the
    /// caller from the already-validated graph, so a corrupt count cannot
    /// drive the rebuild allocations). Table values are range-checked —
    /// the answering phase feeds them straight into per-position bitsets.
    pub fn read_from(
        r: &mut nd_persist::Reader<'_>,
        n: usize,
    ) -> Result<SkipPointers, nd_persist::PersistError> {
        use nd_persist::malformed;
        let k = r.u32("skip arity")? as usize;
        if !(1..=MAX_SET).contains(&k) {
            return Err(malformed("skip arity outside 1..=4"));
        }
        let list = r.u32_slice_sorted(n as u32, "skip list")?;
        let truncated = r.bool("skip truncated flag")?;
        let count = r.seq_len(21, "skip table")?;
        let mut table = HashMap::with_capacity(count);
        let mut prev: Option<(Vertex, BagSet)> = None;
        for _ in 0..count {
            let v = r.u32("skip table vertex")?;
            if (v as usize) >= n {
                return Err(malformed("skip table vertex out of range"));
            }
            let set = r.u128("skip table bag set")?;
            if prev.is_some_and(|p| p >= (v, set)) {
                return Err(malformed("skip table keys not strictly sorted"));
            }
            prev = Some((v, set));
            let val = match r.u8("skip table value tag")? {
                0 => None,
                1 => {
                    let x = r.u32("skip table value")?;
                    if (x as usize) >= n {
                        return Err(malformed("skip table value out of range"));
                    }
                    Some(x)
                }
                other => return Err(malformed(format!("unknown skip value tag {other}"))),
            };
            table.insert((v, set), val);
        }
        let mut in_list = vec![false; n];
        for &v in &list {
            in_list[v as usize] = true;
        }
        let mut next_in_list: Vec<Option<Vertex>> = vec![None; n];
        let mut next = None;
        for v in (0..n).rev() {
            next_in_list[v] = next;
            if in_list[v] {
                next = Some(v as Vertex);
            }
        }
        Ok(SkipPointers {
            k,
            n,
            list,
            in_list,
            next_in_list,
            table,
            truncated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_cover::Cover;
    use nd_graph::generators;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn setup(
        g: &nd_graph::ColoredGraph,
        r: u32,
        list: Vec<Vertex>,
        k: usize,
    ) -> (KernelIndex, SkipPointers) {
        // Cover radius 2r so that "outside K_r" implies "distance > r" —
        // mirroring the kr-radius cover of Section 5.
        let cover = Cover::build(g, 2 * r, 0.5);
        let kernels = KernelIndex::build(g, &cover, r);
        let sp = SkipPointers::build(g.n(), &kernels, list, k);
        (kernels, sp)
    }

    fn random_bagsets(
        kernels: &KernelIndex,
        n: usize,
        k: usize,
        rng: &mut StdRng,
    ) -> Vec<Vec<BagId>> {
        let mut out = Vec::new();
        for _ in 0..60 {
            let mut s = Vec::new();
            for _ in 0..k {
                // Bias towards kernels of random vertices so sets are
                // non-trivial.
                let v = rng.random_range(0..n as Vertex);
                let kb = kernels.kernel_bags_of(v);
                if !kb.is_empty() {
                    s.push(kb[rng.random_range(0..kb.len())]);
                }
            }
            s.sort_unstable();
            s.dedup();
            if !s.is_empty() {
                out.push(s);
            }
        }
        out
    }

    #[test]
    fn skip_matches_naive_scan() {
        let mut rng = StdRng::seed_from_u64(99);
        for (g, r, k) in [
            (generators::path(80), 2u32, 2usize),
            (generators::grid(9, 9), 1, 2),
            (generators::random_tree(100, 3), 2, 3),
            (generators::bounded_degree(120, 4, 1), 2, 2),
        ] {
            let list: Vec<Vertex> = (0..g.n() as Vertex).filter(|v| v % 3 != 1).collect();
            let (kernels, sp) = setup(&g, r, list, k);
            for bags in random_bagsets(&kernels, g.n(), k, &mut rng) {
                for probe in 0..g.n() as Vertex {
                    assert_eq!(
                        sp.skip(&kernels, probe, &bags),
                        sp.skip_naive(&kernels, probe, &bags),
                        "b={probe}, S={bags:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_list() {
        let g = generators::path(20);
        let (kernels, sp) = setup(&g, 2, vec![], 2);
        assert_eq!(sp.skip(&kernels, 0, &[0]), None);
    }

    #[test]
    fn full_list_no_bags_is_identity_successor() {
        let g = generators::cycle(30);
        let list: Vec<Vertex> = (0..30).collect();
        let (kernels, sp) = setup(&g, 1, list, 2);
        for b in 0..30 as Vertex {
            assert_eq!(sp.skip(&kernels, b, &[]), Some(b));
        }
    }

    #[test]
    fn skipping_over_a_kernel_blocks_far_enough() {
        // The guarantee the enumeration relies on: a skipped-to vertex is at
        // distance > r from the kernel's assigned center vertex.
        let g = generators::grid(12, 12);
        let r = 2;
        let cover = Cover::build(&g, 2 * r, 0.5);
        let kernels = KernelIndex::build(&g, &cover, r);
        let list: Vec<Vertex> = (0..g.n() as Vertex).collect();
        let sp = SkipPointers::build(g.n(), &kernels, list, 2);
        let mut scratch = nd_graph::BfsScratch::new(g.n());
        for a in (0..g.n() as Vertex).step_by(13) {
            let mut bags = kernels.kernel_bags_of(a).to_vec();
            bags.truncate(2); // the structure was prepared for k = 2
            if bags.is_empty() {
                continue;
            }
            for b in (0..g.n() as Vertex).step_by(7) {
                if let Some(v) = sp.skip(&kernels, b, &bags) {
                    // v avoids every kernel around a, and X(a)'s kernel in
                    // particular, so dist(a, v) > r.
                    let close = scratch.distance_capped(&g, a, v, r).is_some();
                    // a ∈ K_r(X(a)) always (cover radius 2r ≥ r); if v were
                    // within distance r of a, then N_r(v) ⊆ N_2r(a) ⊆ X(a),
                    // i.e. v ∈ K_r(X(a)) — contradiction.
                    let xa = cover.bag_of(a);
                    if bags.contains(&xa) {
                        assert!(!close, "skip returned {v} too close to {a}");
                    }
                }
            }
        }
    }

    #[test]
    fn binary_codec_roundtrip_answers_identically() {
        let g = generators::grid(9, 9);
        let list: Vec<Vertex> = (0..g.n() as Vertex).filter(|v| v % 4 != 2).collect();
        let (kernels, sp) = setup(&g, 2, list, 2);
        let mut w = nd_persist::Writer::new();
        sp.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = nd_persist::Reader::new(&bytes);
        let back = SkipPointers::read_from(&mut r, g.n()).unwrap();
        r.finish().unwrap();
        assert_eq!(back.table_len(), sp.table_len());
        assert_eq!(back.truncated(), sp.truncated());
        let mut rng = StdRng::seed_from_u64(5);
        for bags in random_bagsets(&kernels, g.n(), 2, &mut rng) {
            for probe in 0..g.n() as Vertex {
                assert_eq!(
                    back.skip(&kernels, probe, &bags),
                    sp.skip(&kernels, probe, &bags)
                );
            }
        }
        // Deterministic re-encode despite the hash-map table.
        let mut w2 = nd_persist::Writer::new();
        back.write_into(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn binary_codec_rejects_corruption() {
        let g = generators::path(40);
        let list: Vec<Vertex> = (0..40).collect();
        let (_, sp) = setup(&g, 2, list, 2);
        let mut w = nd_persist::Writer::new();
        sp.write_into(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SkipPointers::read_from(&mut nd_persist::Reader::new(&bytes[..cut]), g.n())
                    .is_err(),
                "cut {cut}"
            );
        }
        // Out-of-range table vertices / values are rejected (they would
        // otherwise index per-position bitsets out of bounds downstream).
        assert!(SkipPointers::read_from(&mut nd_persist::Reader::new(&bytes), 3).is_err());
    }

    #[test]
    fn table_obeys_the_claim_bound() {
        // Claim 5.10: |SC(b)| = O(δ^k) per vertex, δ = kernel degree.
        let g = generators::random_tree(400, 8);
        let list: Vec<Vertex> = (0..g.n() as Vertex).collect();
        let (kernels, sp) = setup(&g, 2, list, 2);
        let delta = kernels.degree();
        let bound = g.n() * (delta + 1).pow(2);
        assert!(
            sp.table_len() <= bound,
            "table {} exceeds n·(δ+1)^k = {bound} (δ = {delta})",
            sp.table_len()
        );
        // And it is far below the quadratic full table.
        assert!(sp.table_len() < g.n() * g.n());
    }
}
