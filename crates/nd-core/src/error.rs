//! The workspace-wide typed error hierarchy.
//!
//! Every crate in the DAG owns the errors of its layer — [`GraphError`]
//! (nd-graph), [`StoreError`] (nd-store), [`BudgetExceeded`] (nd-graph's
//! budget module, shared by nd-cover and this crate) — and this module
//! rolls them up into [`NdError`] plus the engine-level [`PrepareError`]
//! and [`QueryError`]. Public entry points of this crate never panic on
//! malformed input: they return one of these types (panicking convenience
//! wrappers are kept, documented, for pre-validated callers).

use crate::engine::fragment::UnsupportedReason;
use crate::engine::prepared::PrepareStats;
use nd_graph::io::ReadError;
use nd_graph::{BudgetExceeded, GraphError};
use nd_store::StoreError;
use std::fmt;

/// Why [`crate::PreparedQuery::prepare`] could not produce an index.
#[derive(Clone, Debug, PartialEq)]
pub enum PrepareError {
    /// The query is outside the distance-type fragment and
    /// `allow_fallback` is off.
    UnsupportedFragment(UnsupportedReason),
    /// A preprocessing budget cap was hit on every rung of the degradation
    /// ladder. `partial` carries the statistics accumulated up to the
    /// point of cancellation (branch counts, budget spend), so callers can
    /// see how far preparation got. Boxed to keep the `Err` variant small
    /// on the happy path.
    BudgetExceeded {
        exceeded: BudgetExceeded,
        partial: Box<PrepareStats>,
    },
    /// Malformed input detected before any index work started.
    InvalidInput(InvalidInput),
}

/// Input defects rejected by `prepare` and friends.
#[derive(Clone, Debug, PartialEq)]
pub enum InvalidInput {
    /// `ε` must be a finite positive real.
    BadEpsilon(f64),
    /// The query mentions a color name the graph does not define (naive
    /// evaluation would otherwise panic deep inside `eval`).
    UnknownColor(String),
    /// The query mentions a color id `≥ g.num_colors()`.
    UnknownColorId(u32),
    /// A graph-layer defect (out-of-range vertex, oversized domain).
    Graph(GraphError),
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::UnsupportedFragment(r) => {
                write!(f, "query outside the distance-type fragment: {r}")
            }
            PrepareError::BudgetExceeded { exceeded, .. } => {
                write!(f, "preprocessing aborted: {exceeded}")
            }
            PrepareError::InvalidInput(i) => write!(f, "invalid input: {i}"),
        }
    }
}

impl fmt::Display for InvalidInput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidInput::BadEpsilon(e) => {
                write!(f, "epsilon must be a finite positive real, got {e}")
            }
            InvalidInput::UnknownColor(name) => {
                write!(
                    f,
                    "query mentions color {name:?}, which the graph does not define"
                )
            }
            InvalidInput::UnknownColorId(i) => {
                write!(
                    f,
                    "query mentions color id {i}, which the graph does not define"
                )
            }
            InvalidInput::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PrepareError {}
impl std::error::Error for InvalidInput {}

impl From<UnsupportedReason> for PrepareError {
    fn from(r: UnsupportedReason) -> Self {
        PrepareError::UnsupportedFragment(r)
    }
}

impl From<GraphError> for PrepareError {
    fn from(e: GraphError) -> Self {
        PrepareError::InvalidInput(InvalidInput::Graph(e))
    }
}

/// Why a runtime query (`try_test` / `try_next_solution`) was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The probe tuple does not match the query arity.
    ArityMismatch { expected: usize, got: usize },
    /// A probe component is not a vertex of the prepared graph.
    VertexOutOfRange { v: nd_graph::Vertex, n: usize },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::ArityMismatch { expected, got } => {
                write!(f, "tuple has {got} components, query arity is {expected}")
            }
            QueryError::VertexOutOfRange { v, n } => {
                write!(
                    f,
                    "tuple component {v} is not a vertex of the graph (n = {n})"
                )
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Workspace-wide error rollup: everything the library can report, under
/// one `match`-able roof for binaries and tests.
#[derive(Debug)]
pub enum NdError {
    Graph(GraphError),
    Store(StoreError),
    Budget(BudgetExceeded),
    Prepare(PrepareError),
    Query(QueryError),
    Read(ReadError),
}

impl fmt::Display for NdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NdError::Graph(e) => write!(f, "graph error: {e}"),
            NdError::Store(e) => write!(f, "store error: {e}"),
            NdError::Budget(e) => write!(f, "{e}"),
            NdError::Prepare(e) => write!(f, "prepare error: {e}"),
            NdError::Query(e) => write!(f, "query error: {e}"),
            NdError::Read(e) => write!(f, "read error: {e}"),
        }
    }
}

impl std::error::Error for NdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NdError::Graph(e) => Some(e),
            NdError::Store(e) => Some(e),
            NdError::Budget(e) => Some(e),
            NdError::Prepare(e) => Some(e),
            NdError::Query(e) => Some(e),
            NdError::Read(e) => Some(e),
        }
    }
}

impl From<GraphError> for NdError {
    fn from(e: GraphError) -> Self {
        NdError::Graph(e)
    }
}
impl From<StoreError> for NdError {
    fn from(e: StoreError) -> Self {
        NdError::Store(e)
    }
}
impl From<BudgetExceeded> for NdError {
    fn from(e: BudgetExceeded) -> Self {
        NdError::Budget(e)
    }
}
impl From<PrepareError> for NdError {
    fn from(e: PrepareError) -> Self {
        NdError::Prepare(e)
    }
}
impl From<QueryError> for NdError {
    fn from(e: QueryError) -> Self {
        NdError::Query(e)
    }
}
impl From<ReadError> for NdError {
    fn from(e: ReadError) -> Self {
        NdError::Read(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::{Phase, Resource};

    #[test]
    fn display_and_source_chains() {
        let b = BudgetExceeded {
            phase: Phase::CoverConstruction,
            resource: Resource::NodeExpansions,
            spent: 11,
            cap: 10,
        };
        let nd: NdError = b.clone().into();
        assert!(nd.to_string().contains("cover construction"));
        assert!(std::error::Error::source(&nd).is_some());

        let p = PrepareError::BudgetExceeded {
            exceeded: b,
            partial: Box::new(PrepareStats::default()),
        };
        assert!(p.to_string().contains("preprocessing aborted"));

        let q = QueryError::ArityMismatch {
            expected: 2,
            got: 3,
        };
        assert!(q.to_string().contains("arity"));

        let inv: PrepareError = GraphError::TooManyVertices { n: usize::MAX }.into();
        assert!(inv.to_string().contains("invalid input"));
    }
}
