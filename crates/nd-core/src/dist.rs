//! The constant-time distance oracle of **Proposition 4.2**.
//!
//! After a pseudo-linear preprocessing of `G` (for a fixed radius `r`), test
//! `dist(a, b) ≤ r` in constant time. The construction follows Section 4.2:
//!
//! 1. compute an `(r, 2r)`-neighborhood cover `X` (Theorem 4.4 substitute);
//! 2. for every bag `X`, compute Splitter's answer `s_X` to its center
//!    (Remark 4.7; heuristic strategy from `nd-splitter`);
//! 3. recolor: `R_i = {w ∈ X : dist_{G[X]}(w, s_X) ≤ i}` for `i ≤ r` —
//!    the distance-oracle instance of the Removal Lemma;
//! 4. recurse on `X' = G[X ∖ {s_X}]` with one fewer splitter round.
//!
//! A test `dist(a, b) ≤ r` localizes to the bag `X(a)` (because
//! `N_r(a) ⊆ X(a)`) and then either goes through `s_X` (decided by the `R_i`
//! tables in `O(1)`) or avoids it (decided by the recursive oracle on `X'`).
//!
//! The recursion bottoms out on small or edgeless graphs with a naive
//! all-balls table (the paper's `λ = 1` base case, generalized to a size
//! threshold so that heuristic splitter moves never jeopardize termination
//! or cost — DESIGN.md §2).

use nd_cover::Cover;
use nd_graph::budget::{BudgetExceeded, BudgetTracker, Phase};
use nd_graph::{BfsScratch, ColoredGraph, InducedSubgraph, Vertex};
use nd_splitter::splitter_move;

/// Tuning knobs for the oracle construction.
#[derive(Clone, Copy, Debug)]
pub struct DistOracleOpts {
    /// `ε` for the cover membership structures.
    pub epsilon: f64,
    /// Maximum recursion depth (the splitter-game round budget `λ`).
    pub max_rounds: u32,
    /// Graphs of at most this many vertices use the naive base case.
    pub naive_threshold: usize,
    /// Global work budget: recursion stops (switching to naive bases) once
    /// the total number of vertices materialized across all levels exceeds
    /// `budget_factor · n`. This is the practical stand-in for the paper's
    /// `λ(r)`-bounded recursion: with a true winning strategy each level is
    /// pseudo-linear and there are `λ` of them; with heuristic splitter
    /// moves the budget enforces the same total.
    pub budget_factor: usize,
    /// Memory guard for the naive base case: when the per-vertex ball
    /// tables of a base graph would exceed this many entries (balls explode
    /// on expander-like graphs at large radii), the base answers by capped
    /// BFS instead — still exact, no longer `O(1)`. The degradation is
    /// counted in [`OracleStats::bfs_fallbacks`].
    pub ball_entry_cap: usize,
}

impl Default for DistOracleOpts {
    fn default() -> Self {
        DistOracleOpts {
            epsilon: 0.5,
            max_rounds: 12,
            naive_threshold: 300,
            budget_factor: 20,
            ball_entry_cap: 20_000_000,
        }
    }
}

/// Constant-time `dist(·,·) ≤ r` tests over a fixed graph.
pub struct DistOracle {
    r: u32,
    root: Node,
    stats: OracleStats,
}

/// Size accounting for experiment E4.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleStats {
    /// Total vertices across all recursive levels.
    pub total_vertices: usize,
    /// Total edges across all recursive levels.
    pub total_edges: usize,
    /// Number of naive base-case nodes.
    pub base_cases: usize,
    /// Base cases that had to degrade to BFS-per-query (ball tables would
    /// have exceeded the memory cap).
    pub bfs_fallbacks: usize,
    /// Maximum recursion depth reached.
    pub depth: u32,
    /// Number of bags across all levels.
    pub bags: usize,
}

enum Node {
    /// Base case: per-vertex sorted `r`-ball membership lists.
    Naive(Vec<Box<[Vertex]>>),
    /// Base case with near-full balls (dense graphs): the same tables as
    /// [`Node::Naive`] packed as one bitmap row per vertex. Chosen whenever
    /// the bitmap is the smaller representation; membership is `O(1)` and
    /// warm restarts copy rows off the wire instead of re-expanding lists.
    NaiveDense(BallGrid),
    /// Degenerate base case: answer by capped BFS (exact, not `O(1)`;
    /// only when ball tables would blow the memory cap).
    Bfs(ColoredGraph),
    /// Recursive case (Section 4.2.1 steps 2–5).
    Split(Box<SplitNode>),
}

/// Row-major bitmap of `n` balls over an `n`-vertex base graph.
struct BallGrid {
    n: usize,
    words_per_row: usize,
    bits: Box<[u64]>,
}

impl BallGrid {
    fn contains(&self, a: Vertex, b: Vertex) -> bool {
        let w = self.bits[a as usize * self.words_per_row + (b as usize >> 6)];
        w >> (b as usize & 63) & 1 == 1
    }

    fn row(&self, a: usize) -> &[u64] {
        &self.bits[a * self.words_per_row..(a + 1) * self.words_per_row]
    }
}

struct SplitNode {
    cover: Cover,
    bags: Vec<BagNode>,
}

struct BagNode {
    /// `X' = G[X ∖ {s_X}]`, vertex ids local to the *parent* level graph.
    sub: InducedSubgraph,
    /// Splitter's answer for this bag (parent-level id).
    s: Vertex,
    /// `min(r+1, dist_{G[X]}(w, s_X))`, indexed by `X'`-local id — the
    /// `R_i` recoloring of step 4 packed into one byte per vertex.
    ri: Vec<u8>,
    /// Distance of `s_X` to itself is 0; kept for symmetry of the test.
    inner: Node,
}

impl DistOracle {
    /// Preprocess `g` for `dist ≤ r` tests.
    ///
    /// Unbudgeted convenience; see [`DistOracle::try_build`].
    pub fn build(g: &ColoredGraph, r: u32, opts: &DistOracleOpts) -> DistOracle {
        Self::try_build(g, r, opts, &BudgetTracker::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    /// Preprocess `g` for `dist ≤ r` tests, charging every materialized
    /// recursion level against `tracker` (cooperative cancellation — a
    /// capped run returns [`BudgetExceeded`] instead of recursing on).
    pub fn try_build(
        g: &ColoredGraph,
        r: u32,
        opts: &DistOracleOpts,
        tracker: &BudgetTracker,
    ) -> Result<DistOracle, BudgetExceeded> {
        let mut stats = OracleStats::default();
        let mut budget = (opts.budget_factor.saturating_mul(g.n())).max(10_000) as isize;
        let root = build_node(
            g,
            r,
            opts,
            opts.max_rounds,
            0,
            &mut stats,
            &mut budget,
            tracker,
        )?;
        Ok(DistOracle { r, root, stats })
    }

    /// The preprocessed radius.
    pub fn radius(&self) -> u32 {
        self.r
    }

    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Is `dist(a, b) ≤ r`? Constant time (`O(λ)` pointer chases).
    pub fn test(&self, a: Vertex, b: Vertex) -> bool {
        test_node(&self.root, self.r, a, b)
    }

    /// Append the oracle's binary encoding to `w` (DESIGN.md §9).
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        w.u32(self.r);
        w.u64(self.stats.total_vertices as u64);
        w.u64(self.stats.total_edges as u64);
        w.u64(self.stats.base_cases as u64);
        w.u64(self.stats.bfs_fallbacks as u64);
        w.u32(self.stats.depth);
        w.u64(self.stats.bags as u64);
        write_node(&self.root, w);
    }

    /// Decode an oracle over an `n`-vertex graph (`n` comes from the
    /// already-validated graph section, never from the file, so a corrupt
    /// count cannot drive allocations). Re-validates every invariant
    /// `test` relies on: per-level vertex counts, bag/sub embeddings,
    /// recoloring-table lengths.
    pub fn read_from(
        r: &mut nd_persist::Reader<'_>,
        n: usize,
    ) -> Result<DistOracle, nd_persist::PersistError> {
        let radius = r.u32("oracle radius")?;
        let to_usize = |v: u64, what: &str| {
            usize::try_from(v).map_err(|_| nd_persist::malformed(format!("{what} overflows")))
        };
        let stats = OracleStats {
            total_vertices: to_usize(r.u64("oracle total vertices")?, "oracle total vertices")?,
            total_edges: to_usize(r.u64("oracle total edges")?, "oracle total edges")?,
            base_cases: to_usize(r.u64("oracle base cases")?, "oracle base cases")?,
            bfs_fallbacks: to_usize(r.u64("oracle bfs fallbacks")?, "oracle bfs fallbacks")?,
            depth: r.u32("oracle depth")?,
            bags: to_usize(r.u64("oracle bags")?, "oracle bags")?,
        };
        let root = read_node(r, n, 0)?;
        Ok(DistOracle {
            r: radius,
            root,
            stats,
        })
    }

    /// Is `dist(a, b) ≤ d` for some `d ≤ r`? The oracle only indexes the
    /// single radius `r`; finer tests fall back to capped BFS from the
    /// smaller-degree endpoint — still cheap, but not `O(1)`; the engine
    /// uses [`Self::test`] on the hot path and this only for per-candidate
    /// filtering of mixed-radius queries.
    pub fn test_at(&self, g: &ColoredGraph, a: Vertex, b: Vertex, d: u32) -> bool {
        if d == self.r {
            return self.test(a, b);
        }
        if self.test(a, b) {
            if d >= self.r {
                return true; // dist ≤ r ≤ d
            }
        } else if d <= self.r {
            return false; // dist > r ≥ d
        }
        let mut scratch = BfsScratch::new(g.n());
        scratch.distance_capped(g, a, b, d).is_some()
    }
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    g: &ColoredGraph,
    r: u32,
    opts: &DistOracleOpts,
    rounds_left: u32,
    depth: u32,
    stats: &mut OracleStats,
    budget: &mut isize,
    tracker: &BudgetTracker,
) -> Result<Node, BudgetExceeded> {
    stats.total_vertices += g.n();
    stats.total_edges += g.m();
    stats.depth = stats.depth.max(depth);
    *budget -= g.n() as isize;
    tracker.charge_nodes(Phase::DistOracle, g.n() as u64 + 1)?;
    if g.n() <= opts.naive_threshold || rounds_left == 0 || g.m() == 0 || *budget <= 0 {
        stats.base_cases += 1;
        let mut scratch = BfsScratch::new(g.n());
        let mut balls: Vec<Box<[Vertex]>> = Vec::with_capacity(g.n());
        let mut entries = 0usize;
        for v in 0..g.n() as Vertex {
            let ball = scratch.ball_sorted(g, v, r);
            entries += ball.len();
            tracker.charge_nodes(Phase::DistOracle, ball.len() as u64)?;
            if entries > opts.ball_entry_cap {
                stats.bfs_fallbacks += 1;
                return Ok(Node::Bfs(g.clone()));
            }
            balls.push(ball.into_boxed_slice());
        }
        tracker.charge_memory(Phase::DistOracle, 4 * entries as u64)?;
        // Same criterion as the on-disk `sorted_set` encoding: when the
        // bitmap form is smaller overall, keep it in memory too, so saves
        // stream rows out and loads stream them back in without expansion.
        let words_per_row = g.n().div_ceil(64);
        if g.n() * words_per_row * 8 < 4 * entries {
            let mut bits = vec![0u64; g.n() * words_per_row];
            for (v, ball) in balls.iter().enumerate() {
                let row = &mut bits[v * words_per_row..(v + 1) * words_per_row];
                for &u in ball.iter() {
                    row[(u / 64) as usize] |= 1u64 << (u % 64);
                }
            }
            return Ok(Node::NaiveDense(BallGrid {
                n: g.n(),
                words_per_row,
                bits: bits.into_boxed_slice(),
            }));
        }
        return Ok(Node::Naive(balls));
    }

    // Step 2: the (r, 2r)-cover.
    let cover = Cover::try_build(g, r, opts.epsilon, tracker)?;
    let mut bags = Vec::with_capacity(cover.num_bags());
    for id in 0..cover.num_bags() as u32 {
        let bag = cover.bag(id);
        // Step 3: Splitter's answer to the bag center, computed on the bag
        // subgraph (Remark 4.7: time O(‖N_2r(c_X)‖)).
        let bag_sub = InducedSubgraph::new_uncolored(g, &bag.verts);
        let center_local = bag_sub
            .to_local(bag.center)
            .expect("center belongs to its bag");
        let s_local = splitter_move(&bag_sub, center_local, 2 * r);
        let s = bag_sub.to_global(s_local);

        // Step 4: R_i = dist_{G[X]}(·, s_X) capped at r+1, via one BFS in
        // the bag subgraph.
        let mut scratch = BfsScratch::new(bag_sub.n());
        scratch.run(&bag_sub.graph, s_local, r);
        let mut verts_wo_s: Vec<Vertex> = bag.verts.clone();
        let pos = verts_wo_s.binary_search(&s).expect("s is in the bag");
        verts_wo_s.remove(pos);
        let sub = InducedSubgraph::new_uncolored(g, &verts_wo_s);
        let ri: Vec<u8> = verts_wo_s
            .iter()
            .map(|&w| {
                let wl = bag_sub.to_local(w).unwrap();
                let d = scratch.dist(wl);
                if d == nd_graph::bfs::UNREACHED {
                    (r + 1).min(255) as u8
                } else {
                    d.min(r + 1).min(255) as u8
                }
            })
            .collect();

        // Step 5: recurse on X' with one fewer round.
        let inner = build_node(
            &sub.graph,
            r,
            opts,
            rounds_left - 1,
            depth + 1,
            stats,
            budget,
            tracker,
        )?;
        bags.push(BagNode { sub, s, ri, inner });
    }
    stats.bags += bags.len();
    Ok(Node::Split(Box::new(SplitNode { cover, bags })))
}

/// Decode-side recursion cap. The builder never exceeds `max_rounds`
/// (default 12) levels; hostile files must not be able to recurse the
/// decoder off the stack.
const MAX_DECODE_DEPTH: u32 = 64;

fn write_node(node: &Node, w: &mut nd_persist::Writer) {
    match node {
        Node::Naive(balls) => {
            w.u8(0);
            w.seq_len(balls.len());
            // Radius-r balls on dense graphs are near-full vertex sets;
            // the adaptive encoding stores those as bitmaps, which is
            // what keeps warm restarts fast on the dense families.
            for ball in balls {
                w.sorted_set(ball, balls.len() as u32);
            }
        }
        Node::NaiveDense(grid) => {
            w.u8(3);
            w.seq_len(grid.n);
            for a in 0..grid.n {
                w.sorted_set_words(grid.row(a), grid.n as u32);
            }
        }
        Node::Bfs(g) => {
            w.u8(1);
            g.write_into(w);
        }
        Node::Split(split) => {
            w.u8(2);
            split.cover.write_into(w);
            w.seq_len(split.bags.len());
            for bag in &split.bags {
                bag.sub.write_into(w);
                w.u32(bag.s);
                w.byte_slice(&bag.ri);
                write_node(&bag.inner, w);
            }
        }
    }
}

/// Decode one recursion level over an `n`-vertex graph. Every structural
/// property `test_node` indexes by — ball-table length, subgraph size,
/// `X ∖ {s}` embeddings — is re-checked here; the membership store is the
/// one structure not cross-validated (see `test_node`), which degrades to
/// wrong-but-safe answers on forged payloads.
fn read_node(
    r: &mut nd_persist::Reader<'_>,
    n: usize,
    depth: u32,
) -> Result<Node, nd_persist::PersistError> {
    use nd_persist::malformed;
    if depth > MAX_DECODE_DEPTH {
        return Err(malformed("oracle recursion exceeds the depth cap"));
    }
    Ok(match r.u8("oracle node tag")? {
        0 => {
            let count = r.seq_len(8, "oracle ball count")?;
            if count != n {
                return Err(malformed(
                    "oracle ball table does not match the vertex count",
                ));
            }
            let mut balls = Vec::with_capacity(count);
            for _ in 0..count {
                let ball = r.sorted_set(n as u32, "oracle ball")?;
                balls.push(ball.into_boxed_slice());
            }
            Node::Naive(balls)
        }
        1 => {
            let g = ColoredGraph::read_from(r)?;
            if g.n() != n {
                return Err(malformed(
                    "oracle bfs graph does not match the vertex count",
                ));
            }
            Node::Bfs(g)
        }
        2 => {
            let cover = Cover::read_from(r)?;
            if cover.n() != n {
                return Err(malformed("oracle cover does not match the vertex count"));
            }
            let num_bags = r.seq_len(1, "oracle bag count")?;
            if num_bags != cover.num_bags() {
                return Err(malformed("oracle bag list does not match the cover"));
            }
            let mut bags = Vec::with_capacity(num_bags);
            for id in 0..num_bags {
                let sub = InducedSubgraph::read_from(r)?;
                let s = r.u32("oracle splitter vertex")?;
                let ri = r.byte_slice("oracle recoloring table")?;
                let verts = &cover.bag(id as u32).verts;
                if verts.binary_search(&s).is_err() {
                    return Err(malformed("oracle splitter vertex outside its bag"));
                }
                // sub must be exactly X ∖ {s}: the test path localizes any
                // bag member ≠ s through it and unwraps the result.
                if sub.n() + 1 != verts.len()
                    || !verts.iter().filter(|&&v| v != s).eq(sub.global_ids.iter())
                {
                    return Err(malformed(
                        "oracle subgraph is not the bag minus its splitter",
                    ));
                }
                if ri.len() != sub.n() {
                    return Err(malformed("oracle recoloring table has the wrong length"));
                }
                let inner = read_node(r, sub.n(), depth + 1)?;
                bags.push(BagNode { sub, s, ri, inner });
            }
            Node::Split(Box::new(SplitNode { cover, bags }))
        }
        3 => {
            let count = r.seq_len(8, "oracle ball count")?;
            if count != n {
                return Err(malformed(
                    "oracle ball table does not match the vertex count",
                ));
            }
            let words_per_row = n.div_ceil(64);
            let mut bits = vec![0u64; count * words_per_row];
            for row in bits.chunks_exact_mut(words_per_row.max(1)) {
                r.sorted_set_into_words(n as u32, row, "oracle ball")?;
            }
            Node::NaiveDense(BallGrid {
                n,
                words_per_row,
                bits: bits.into_boxed_slice(),
            })
        }
        other => return Err(malformed(format!("unknown oracle node tag {other}"))),
    })
}

fn test_node(node: &Node, r: u32, a: Vertex, b: Vertex) -> bool {
    match node {
        Node::Naive(balls) => balls[a as usize].binary_search(&b).is_ok(),
        Node::NaiveDense(grid) => grid.contains(a, b),
        Node::Bfs(g) => BfsScratch::new(g.n()).distance_capped(g, a, b, r).is_some(),
        Node::Split(split) => {
            // Localize to the canonical bag of a: N_r(a) ⊆ X(a).
            let id = split.cover.bag_of(a);
            if !split.cover.contains(id, b) {
                return false;
            }
            let bag = &split.bags[id as usize];
            let s = bag.s;
            // On an oracle built in-process the bag always contains both
            // endpoints here. On a decoded oracle the membership store is
            // not cross-validated against the bag lists (doing so would
            // cost a trie probe per member at load), so a forged payload
            // behind intact CRCs can make `contains` lie — answer false
            // rather than panic in that case.
            match (a == s, b == s) {
                (true, true) => true,
                (true, false) => match bag.sub.to_local(b) {
                    Some(lb) => bag.ri[lb as usize] as u32 <= r,
                    None => false,
                },
                (false, true) => match bag.sub.to_local(a) {
                    Some(la) => bag.ri[la as usize] as u32 <= r,
                    None => false,
                },
                (false, false) => {
                    let (Some(la), Some(lb)) = (bag.sub.to_local(a), bag.sub.to_local(b)) else {
                        return false;
                    };
                    if bag.ri[la as usize] as u32 + bag.ri[lb as usize] as u32 <= r {
                        return true; // path through s_X
                    }
                    test_node(&bag.inner, r, la, lb) // path avoiding s_X
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn check_against_bfs(
        g: &ColoredGraph,
        r: u32,
        opts: &DistOracleOpts,
        probes: usize,
        seed: u64,
    ) {
        let oracle = DistOracle::build(g, r, opts);
        let mut scratch = BfsScratch::new(g.n());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..probes {
            let a = rng.random_range(0..g.n() as Vertex);
            let b = rng.random_range(0..g.n() as Vertex);
            let want = scratch.distance_capped(g, a, b, r).is_some();
            assert_eq!(oracle.test(a, b), want, "dist({a},{b}) <= {r}");
        }
    }

    fn check_exhaustive(g: &ColoredGraph, r: u32, opts: &DistOracleOpts) {
        let oracle = DistOracle::build(g, r, opts);
        let mut scratch = BfsScratch::new(g.n());
        for a in g.vertices() {
            scratch.run(g, a, r);
            for b in g.vertices() {
                let want = scratch.dist(b) != nd_graph::bfs::UNREACHED;
                assert_eq!(oracle.test(a, b), want, "dist({a},{b}) <= {r}");
            }
        }
    }

    /// Force the recursive path even on small test graphs.
    fn recursive_opts() -> DistOracleOpts {
        DistOracleOpts {
            naive_threshold: 4,
            ..DistOracleOpts::default()
        }
    }

    #[test]
    fn exhaustive_on_small_families() {
        for (g, r) in [
            (generators::path(30), 3),
            (generators::cycle(24), 4),
            (generators::grid(6, 6), 2),
            (generators::random_tree(40, 11), 3),
            (generators::star(20), 2),
            (generators::caterpillar(8, 2), 2),
            (generators::binary_tree(31), 3),
        ] {
            check_exhaustive(&g, r, &recursive_opts());
        }
    }

    #[test]
    fn randomized_on_larger_families() {
        let opts = DistOracleOpts::default();
        check_against_bfs(&generators::grid(30, 30), 4, &opts, 400, 1);
        check_against_bfs(&generators::random_tree(1200, 5), 5, &opts, 400, 2);
        check_against_bfs(&generators::bounded_degree(1500, 4, 9), 3, &opts, 400, 3);
        check_against_bfs(&generators::random_forest(900, 0.9, 3), 4, &opts, 400, 4);
    }

    #[test]
    fn dense_contrast_still_correct() {
        // On dense graphs the oracle degrades in size but stays correct.
        check_exhaustive(&generators::clique(20), 2, &recursive_opts());
        check_exhaustive(&generators::gnm(40, 200, 7), 2, &recursive_opts());
    }

    #[test]
    fn reflexive_and_radius_zero() {
        let g = generators::path(10);
        let oracle = DistOracle::build(&g, 0, &recursive_opts());
        for v in g.vertices() {
            assert!(oracle.test(v, v));
        }
        assert!(!oracle.test(0, 1));
    }

    #[test]
    fn disconnected_components() {
        let g = generators::random_forest(60, 0.6, 2);
        check_exhaustive(&g, 3, &recursive_opts());
    }

    #[test]
    fn stats_accounting() {
        let g = generators::grid(20, 20);
        let oracle = DistOracle::build(&g, 2, &DistOracleOpts::default());
        let s = oracle.stats();
        assert!(s.total_vertices >= g.n());
        assert!(s.depth >= 1);
        assert!(s.bags > 0);
        assert_eq!(oracle.radius(), 2);
    }

    #[test]
    fn binary_codec_roundtrips_recursive_oracles() {
        for (g, r) in [
            (generators::grid(8, 8), 2u32),
            (generators::random_tree(60, 7), 3),
            (generators::path(0), 1),
        ] {
            let oracle = DistOracle::build(&g, r, &recursive_opts());
            let mut w = nd_persist::Writer::new();
            oracle.write_into(&mut w);
            let bytes = w.into_bytes();
            let mut rd = nd_persist::Reader::new(&bytes);
            let back = DistOracle::read_from(&mut rd, g.n()).unwrap();
            rd.finish().unwrap();
            assert_eq!(back.radius(), r);
            assert_eq!(back.stats().total_vertices, oracle.stats().total_vertices);
            for a in g.vertices() {
                for b in g.vertices() {
                    assert_eq!(back.test(a, b), oracle.test(a, b), "dist({a},{b})");
                }
            }
            // Deterministic re-encode: loading and saving is the identity.
            let mut w2 = nd_persist::Writer::new();
            back.write_into(&mut w2);
            assert_eq!(w2.into_bytes(), bytes);
        }
    }

    #[test]
    fn binary_codec_rejects_corruption() {
        let g = generators::grid(7, 7);
        let oracle = DistOracle::build(&g, 2, &recursive_opts());
        let mut w = nd_persist::Writer::new();
        oracle.write_into(&mut w);
        let bytes = w.into_bytes();
        // Every truncation is a typed error, never a panic.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(
                DistOracle::read_from(&mut nd_persist::Reader::new(&bytes[..cut]), g.n()).is_err(),
                "cut {cut}"
            );
        }
        // A mismatched vertex count is rejected outright.
        assert!(DistOracle::read_from(&mut nd_persist::Reader::new(&bytes), g.n() + 1).is_err());
        // Hostile intact-looking bytes: either a typed error, or a decoded
        // oracle whose queries are safe to run (possibly wrong, never a
        // panic). Overwrite one byte at a stride across the payload.
        for i in (0..bytes.len()).step_by(11) {
            let mut c = bytes.clone();
            c[i] = c[i].wrapping_add(1);
            if let Ok(back) = DistOracle::read_from(&mut nd_persist::Reader::new(&c), g.n()) {
                for a in (0..g.n() as Vertex).step_by(5) {
                    for b in (0..g.n() as Vertex).step_by(5) {
                        let _ = back.test(a, b);
                    }
                }
            }
        }
    }

    #[test]
    fn test_at_mixed_radius() {
        let g = generators::path(12);
        let oracle = DistOracle::build(&g, 4, &recursive_opts());
        assert!(oracle.test_at(&g, 0, 2, 2));
        assert!(!oracle.test_at(&g, 0, 3, 2));
        assert!(oracle.test_at(&g, 0, 4, 4));
        assert!(!oracle.test_at(&g, 0, 5, 4));
    }
}
