//! The **Removal Lemma** (Lemma 5.5): rewriting a query when one node is
//! deleted from the graph.
//!
//! Given a colored graph `G`, an FO⁺ query `φ(z̄)`, a subset `ȳ ⊆ z̄` of its
//! free variables, and a node `s`, produce a recolored graph `H` on
//! `V ∖ {s}` and a query `φ'(z̄ ∖ ȳ)` such that for all tuples `b̄` whose
//! `s`-positions are exactly the `ȳ`-positions,
//!
//! ```text
//! G ⊨ φ(b̄)   ⟺   H ⊨ φ'(b̄ ∖ ȳ)
//! ```
//!
//! The recoloring adds, for each distance bound `i` up to the largest
//! distance constant of `φ` (at least 1, to absorb edge atoms), the color
//! `{w : dist_G(w, s) ≤ i}` — one BFS from `s`. The rewriting then
//!
//! * substitutes `s` into atoms (edges/distances to `s` become the new
//!   colors; equalities become constants),
//! * compensates for paths through the deleted node: `dist_G(x,y) ≤ d`
//!   becomes `dist_H(x,y) ≤ d ∨ ⋁_{i+j≤d} (D_i(x) ∧ D_j(y))`,
//! * splits every quantifier into its `H`-part and its `v := s` instance:
//!   `∃v ψ ↦ ∃v ψ' ∨ ψ'[v:=s]` (dually for `∀`).
//!
//! Quantifier rank and distance constants — hence `q`-rank — are preserved,
//! exactly as Lemma 5.5 requires; the formula may grow by a factor `2^{qr}`,
//! which is a function of the query only.

use nd_graph::{BfsScratch, ColoredGraph, InducedSubgraph, Vertex};
use nd_logic::ast::{ColorRef, Formula, VarId};
use std::collections::BTreeSet;

/// Output of the removal rewriting.
pub struct Removal {
    /// `H`: the recolored graph on `V ∖ {s}` (vertex ids compressed).
    pub graph: ColoredGraph,
    /// The rewritten query `φ'` over `H` (color references by id).
    pub formula: Formula,
    /// The removed node (in `G`'s ids).
    pub s: Vertex,
    /// `@dist_s_i` color ids, index `i-1` holds radius `i`.
    pub dist_colors: Vec<ColorRef>,
}

impl Removal {
    /// Translate a `G`-vertex (≠ `s`) to its `H` id.
    pub fn to_h(&self, v: Vertex) -> Option<Vertex> {
        match v.cmp(&self.s) {
            std::cmp::Ordering::Less => Some(v),
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Greater => Some(v - 1),
        }
    }

    /// Translate an `H`-vertex back to `G`.
    pub fn to_g(&self, v: Vertex) -> Vertex {
        if v < self.s {
            v
        } else {
            v + 1
        }
    }
}

/// Panicking convenience over [`try_remove_node`] for pre-validated
/// inputs.
pub fn remove_node(g: &ColoredGraph, phi: &Formula, y_vars: &[VarId], s: Vertex) -> Removal {
    try_remove_node(g, phi, y_vars, s).expect("invalid removal input")
}

/// Apply the Removal Lemma: remove `s` from `g`, rewriting `φ` with the
/// variables of `y_vars` pinned to `s`. Rejects an `s` outside the graph
/// and formulas with relational atoms (which must be rewritten away by
/// Lemma 2.2 first) instead of panicking.
pub fn try_remove_node(
    g: &ColoredGraph,
    phi: &Formula,
    y_vars: &[VarId],
    s: Vertex,
) -> Result<Removal, crate::NdError> {
    if (s as usize) >= g.n() {
        return Err(nd_graph::GraphError::VertexOutOfRange { v: s, n: g.n() }.into());
    }
    if let Some(name) = find_rel_atom(phi) {
        return Err(crate::PrepareError::UnsupportedFragment(
            crate::UnsupportedReason::RelationalAtom(name),
        )
        .into());
    }
    Ok(remove_node_unchecked(g, phi, y_vars, s))
}

fn find_rel_atom(f: &Formula) -> Option<String> {
    match f {
        Formula::Rel(name, _) => Some(name.clone()),
        Formula::Not(g) | Formula::Exists(_, g) | Formula::Forall(_, g) => find_rel_atom(g),
        Formula::And(gs) | Formula::Or(gs) => gs.iter().find_map(find_rel_atom),
        _ => None,
    }
}

fn remove_node_unchecked(g: &ColoredGraph, phi: &Formula, y_vars: &[VarId], s: Vertex) -> Removal {
    let max_d = phi.max_dist_atom().max(1);

    // H = G[V ∖ {s}] with all original colors restricted, plus the distance
    // colors D_1 … D_max_d.
    let verts: Vec<Vertex> = (0..g.n() as Vertex).filter(|&v| v != s).collect();
    let sub = InducedSubgraph::new(g, &verts);
    let mut h = sub.graph;
    let mut scratch = BfsScratch::new(g.n());
    scratch.run(g, s, max_d);
    let mut dist_colors = Vec::with_capacity(max_d as usize);
    for i in 1..=max_d {
        let members: Vec<Vertex> = verts
            .iter()
            .enumerate()
            .filter(|(_, &w)| scratch.dist(w) != nd_graph::bfs::UNREACHED && scratch.dist(w) <= i)
            .map(|(lw, _)| lw as Vertex)
            .collect();
        let id = h.add_color(members, Some(format!("@rm{s}_dist{i}")));
        dist_colors.push(ColorRef::Id(id.0));
    }

    let pinned: BTreeSet<VarId> = y_vars.iter().copied().collect();
    let rw = Rewriter {
        g,
        s,
        dist_colors: &dist_colors,
    };
    let formula = rw.elim(phi, &pinned);

    Removal {
        graph: h,
        formula,
        s,
        dist_colors,
    }
}

struct Rewriter<'g> {
    g: &'g ColoredGraph,
    s: Vertex,
    dist_colors: &'g [ColorRef],
}

impl Rewriter<'_> {
    /// `D_i(x)`: `dist_G(x, s) ≤ i` as a color atom of `H`.
    fn dist_color(&self, i: u32, x: VarId) -> Formula {
        debug_assert!(i >= 1 && (i as usize) <= self.dist_colors.len());
        Formula::Color(self.dist_colors[i as usize - 1].clone(), x)
    }

    fn elim(&self, f: &Formula, pinned: &BTreeSet<VarId>) -> Formula {
        let is_s = |v: &VarId| pinned.contains(v);
        match f {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Edge(x, y) => match (is_s(x), is_s(y)) {
                (true, true) => Formula::False, // no self-loops
                (true, false) => self.dist_color(1, *y),
                (false, true) => self.dist_color(1, *x),
                (false, false) => Formula::Edge(*x, *y),
            },
            Formula::Eq(x, y) => match (is_s(x), is_s(y)) {
                (true, true) => Formula::True,
                // The surviving variable ranges over V ∖ {s}.
                (true, false) | (false, true) => Formula::False,
                (false, false) => Formula::Eq(*x, *y),
            },
            Formula::DistLe(x, y, d) => match (is_s(x), is_s(y)) {
                (true, true) => Formula::True,
                (true, false) => {
                    if *d == 0 {
                        Formula::False
                    } else {
                        self.dist_color(*d, *y)
                    }
                }
                (false, true) => {
                    if *d == 0 {
                        Formula::False
                    } else {
                        self.dist_color(*d, *x)
                    }
                }
                (false, false) => {
                    // Either a path inside H, or a path through s.
                    let mut parts = vec![Formula::DistLe(*x, *y, *d)];
                    for i in 1..*d {
                        let j = *d - i;
                        parts.push(Formula::and([
                            self.dist_color(i, *x),
                            self.dist_color(j, *y),
                        ]));
                    }
                    Formula::or(parts)
                }
            },
            Formula::Color(c, x) => {
                if is_s(x) {
                    let holds = match c {
                        ColorRef::Id(i) => self.g.has_color(self.s, nd_graph::ColorId(*i)),
                        ColorRef::Named(name) => self
                            .g
                            .color_by_name(name)
                            .is_some_and(|cid| self.g.has_color(self.s, cid)),
                    };
                    if holds {
                        Formula::True
                    } else {
                        Formula::False
                    }
                } else {
                    Formula::Color(c.clone(), *x)
                }
            }
            Formula::Rel(name, _) => {
                panic!("relational atom {name} must be rewritten away before removal")
            }
            Formula::Not(inner) => Formula::Not(Box::new(self.elim(inner, pinned))),
            Formula::And(fs) => Formula::and(fs.iter().map(|g2| self.elim(g2, pinned))),
            Formula::Or(fs) => Formula::or(fs.iter().map(|g2| self.elim(g2, pinned))),
            Formula::Exists(v, body) => {
                // ∃v over V  =  (∃v over V∖{s})  ∨  body[v := s].
                let h_branch = Formula::Exists(*v, Box::new(self.elim(body, pinned)));
                let mut pinned_s = pinned.clone();
                pinned_s.insert(*v);
                let s_branch = self.elim(body, &pinned_s);
                Formula::or([h_branch, s_branch])
            }
            Formula::Forall(v, body) => {
                let h_branch = Formula::Forall(*v, Box::new(self.elim(body, pinned)));
                let mut pinned_s = pinned.clone();
                pinned_s.insert(*v);
                let s_branch = self.elim(body, &pinned_s);
                Formula::and([h_branch, s_branch])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;
    use nd_logic::ast::Query;
    use nd_logic::eval::eval;
    use nd_logic::parse_query;

    /// Exhaustive equivalence check of the lemma's guarantee over all
    /// tuples, all choices of ȳ ⊆ z̄, and several removal nodes.
    fn check(g: &ColoredGraph, src: &str, removals: &[Vertex]) {
        let q = parse_query(src).unwrap();
        let k = q.arity();
        for &s in removals {
            for mask in 0..(1u32 << k) {
                let y_vars: Vec<VarId> = (0..k)
                    .filter(|i| mask >> i & 1 == 1)
                    .map(|i| q.free[i])
                    .collect();
                let removal = remove_node(g, &q.formula, &y_vars, s);
                let surviving: Vec<VarId> = q
                    .free
                    .iter()
                    .copied()
                    .filter(|v| !y_vars.contains(v))
                    .collect();
                let q_prime = Query::new(removal.formula.clone(), surviving.clone());

                // Enumerate all G-tuples whose s-positions are exactly ȳ.
                let mut tuple = vec![0 as Vertex; k];
                check_rec(g, &q, &removal, &q_prime, mask, &mut tuple, 0, s);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_rec(
        g: &ColoredGraph,
        q: &Query,
        removal: &Removal,
        q_prime: &Query,
        mask: u32,
        tuple: &mut Vec<Vertex>,
        pos: usize,
        s: Vertex,
    ) {
        if pos == tuple.len() {
            let want = eval(g, q, tuple);
            let h_tuple: Vec<Vertex> = tuple
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 0)
                .map(|(_, &b)| removal.to_h(b).unwrap())
                .collect();
            let got = eval(&removal.graph, q_prime, &h_tuple);
            assert_eq!(got, want, "tuple {tuple:?}, s={s}, mask={mask:b}");
            return;
        }
        if mask >> pos & 1 == 1 {
            tuple[pos] = s;
            check_rec(g, q, removal, q_prime, mask, tuple, pos + 1, s);
        } else {
            for b in 0..g.n() as Vertex {
                if b == s {
                    continue;
                }
                tuple[pos] = b;
                check_rec(g, q, removal, q_prime, mask, tuple, pos + 1, s);
            }
        }
    }

    fn small_colored() -> ColoredGraph {
        let mut g = generators::cycle(8);
        g.add_color(vec![0, 3, 5], Some("Blue".into()));
        g
    }

    #[test]
    fn edge_and_equality_atoms() {
        check(&small_colored(), "E(x, y)", &[0, 4]);
        check(&small_colored(), "x = y", &[2]);
    }

    #[test]
    fn distance_atoms_path_through_s() {
        // Removing a cut vertex of the path: distances must be compensated
        // by the D_i colors.
        let g = generators::path(9);
        check(&g, "dist(x, y) <= 3", &[4, 0, 8]);
        check(&g, "dist(x, y) > 2", &[3]);
    }

    #[test]
    fn colors_and_connectives() {
        check(
            &small_colored(),
            "Blue(x) && (E(x, y) || dist(x, y) <= 2)",
            &[3, 6],
        );
    }

    #[test]
    fn quantifier_splitting() {
        check(&small_colored(), "exists z. (E(x, z) && E(z, y))", &[1, 5]);
        check(
            &small_colored(),
            "forall z. (!E(x, z) || Blue(z)) && x = x",
            &[0],
        );
    }

    #[test]
    fn q_rank_is_preserved() {
        let g = generators::path(6);
        let q = parse_query("exists z. (dist(x, z) <= 4 && E(z, y))").unwrap();
        let removal = remove_node(&g, &q.formula, &[], 3);
        assert_eq!(
            removal.formula.quantifier_rank(),
            q.formula.quantifier_rank()
        );
        assert!(removal.formula.max_dist_atom() <= q.formula.max_dist_atom());
    }

    #[test]
    fn id_translation() {
        let g = generators::path(5);
        let r = remove_node(&g, &Formula::True, &[], 2);
        assert_eq!(r.to_h(1), Some(1));
        assert_eq!(r.to_h(2), None);
        assert_eq!(r.to_h(3), Some(2));
        assert_eq!(r.to_g(2), 3);
        assert_eq!(r.graph.n(), 4);
        // Path 0-1-2-3-4 minus vertex 2 = two segments.
        assert_eq!(r.graph.m(), 2);
    }
}
