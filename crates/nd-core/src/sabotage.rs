//! Deliberate, runtime-toggled engine bugs for conformance-harness
//! self-tests.
//!
//! A differential oracle is only trustworthy if it demonstrably *catches*
//! bugs. This module (compiled only under the `sabotage` cargo feature,
//! which `nd-conform` enables for its own tests) exposes switches that
//! inject realistic defects into the answering path. With every switch
//! off — the default — the engine behaves identically to a build without
//! the feature, so enabling the feature workspace-wide (as `cargo test`
//! feature-unification does) is harmless.
//!
//! Never enable the `sabotage` feature in a production dependency graph.

use std::sync::atomic::{AtomicBool, Ordering};

/// When set, the indexed engine resolves multi-branch `next_solution`
/// races with `max` instead of `min` — a flipped lexicographic
/// comparison, the classic off-by-an-order bug class the conformance
/// harness exists to catch. Single-branch queries are unaffected, which
/// is exactly what makes the bug realistic: it hides until a union query
/// with overlapping branches comes along.
static FLIP_LEX: AtomicBool = AtomicBool::new(false);

/// Toggle the flipped-lex bug. Returns the previous value so tests can
/// restore state.
pub fn set_flip_lex(on: bool) -> bool {
    FLIP_LEX.swap(on, Ordering::SeqCst)
}

/// Is the flipped-lex bug currently armed?
pub fn flip_lex() -> bool {
    FLIP_LEX.load(Ordering::SeqCst)
}

/// RAII guard: arms the flipped-lex bug for a scope, restores on drop
/// (including on panic, so a failing assertion cannot poison the next
/// test in the same process).
pub struct FlipLexGuard {
    prev: bool,
}

impl FlipLexGuard {
    #[allow(clippy::new_without_default)]
    pub fn new() -> FlipLexGuard {
        FlipLexGuard {
            prev: set_flip_lex(true),
        }
    }
}

impl Drop for FlipLexGuard {
    fn drop(&mut self) {
        self.prev = set_flip_lex(self.prev);
    }
}
