//! Deterministic fuzzing of the `nd-serve` line protocol.
//!
//! The conformance harness proper ([`crate::run`]) drives the protocol
//! with *well-formed* requests and diffs the answers. This module attacks
//! the other half of the serving contract — robustness:
//!
//! * any byte soup on a line yields an `err usage: ...` reply, never a
//!   panic, never a dropped session;
//! * `quit`/`exit` terminate, blank lines are silently ignored;
//! * admission control and deadlines fail *typed and deterministic*: a
//!   zero-capacity pool answers `err overloaded:`, a zero-deadline pool
//!   answers `err deadline:` — exercised without any real timing races
//!   (the deadline is expired at submit time by construction);
//! * the session verbs of PR 6 hold the same line: `swap` with a
//!   malformed path (empty, non-existent, a directory, seeded junk)
//!   replies a typed `err` line without advancing the epoch, a valid
//!   `swap` advances it, and after `shutdown` every verb keeps replying
//!   typed `err shutdown:` lines instead of dropping the session.
//!
//! Everything is seeded: the same `(seed, iterations)` replays the same
//! byte sequences, so a failure is a reproduction recipe.

use crate::{ConformReport, Disagreement};
use nd_core::{Budget, PrepareOpts};
use nd_graph::generators;
use nd_graph::ColoredGraph;
use nd_logic::parse_query;
use nd_serve::protocol::{handle_command, Reply};
use nd_serve::{ServeOpts, ServerPool, Session, Snapshot};
use std::time::Duration;

/// splitmix64, same stream discipline as the main harness.
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const FIXTURE_QUERY: &str = "Blue(x) && dist(x,y) <= 2";

fn fixture_graph() -> ColoredGraph {
    let mut g = generators::cycle(12);
    g.add_color(vec![0, 3, 6, 9], Some("Blue".into()));
    g
}

fn fixture_pool(admission: Budget) -> ServerPool {
    let q = parse_query(FIXTURE_QUERY).unwrap();
    let snapshot = Snapshot::build_owned(fixture_graph(), &q, &PrepareOpts::default())
        .expect("fixture must prepare");
    ServerPool::start(
        snapshot,
        &ServeOpts {
            workers: 1,
            admission,
            ..Default::default()
        },
    )
}

fn fixture_session() -> Session {
    Session::start(
        fixture_graph().into_shared(),
        &parse_query(FIXTURE_QUERY).unwrap(),
        PrepareOpts::default(),
        ServeOpts {
            workers: 1,
            ..Default::default()
        },
        4,
    )
    .expect("fixture must prepare")
}

/// One seeded protocol line: valid commands, near-valid mutations, and
/// raw junk, in roughly equal measure.
fn random_line(s: &mut Stream) -> String {
    match s.below(12) {
        0 => format!("test {},{}", s.below(12), s.below(12)),
        1 => format!("next {},{}", s.below(12), s.below(12)),
        2 => format!("page {},{} {}", s.below(12), s.below(12), s.below(5)),
        3 => "stats".into(),
        4 => "metrics".into(),
        5 => "help".into(),
        6 => String::new(),
        // Near-valid mutations: wrong arity, negative and overflowing
        // components, missing or trailing arguments, wrong separators.
        7 => format!("test {}", s.below(12)),
        8 => "next -1,3".into(),
        9 => format!("page {},{}", s.below(12), s.below(12)),
        10 => format!("test {},{}", u64::MAX, s.below(12)),
        // Raw junk: seeded printable noise (never `quit` — session length
        // is part of the determinism contract).
        _ => {
            let len = 1 + s.below(10) as usize;
            (0..len)
                .map(|_| char::from(b' ' + (s.below(94) as u8)))
                .collect()
        }
    }
}

/// Classify a reply line for the robustness contract.
fn violates_contract(line: &str, reply: &Option<Reply>) -> Option<String> {
    let trimmed = line.trim();
    match reply {
        None if trimmed.is_empty() => None,
        None => Some(format!("line {line:?} silently swallowed")),
        Some(Reply::Quit) => Some(format!("line {line:?} unexpectedly ended the session")),
        Some(Reply::Line(r)) => {
            // Every reply is a single line (the framing invariant).
            if r.contains('\n') {
                return Some(format!("multi-line reply to {line:?}: {r:?}"));
            }
            // A well-formed probe on the unlimited fixture must succeed.
            let in_range_pair = |t: &str| {
                nd_serve::protocol::parse_csv_tuple(t)
                    .is_ok_and(|v| v.len() == 2 && v.iter().all(|&x| (x as usize) < 12))
            };
            let well_formed = matches!(
                trimmed.split(' ').next(),
                Some("stats" | "metrics" | "help")
            ) || (trimmed.starts_with("test ") || trimmed.starts_with("next "))
                && trimmed
                    .split_once(' ')
                    .is_some_and(|(_, t)| in_range_pair(t));
            if well_formed && r.starts_with("err") {
                return Some(format!("well-formed {line:?} rejected: {r}"));
            }
            None
        }
    }
}

/// Fuzz the protocol for `iterations` seeded lines; every contract
/// violation becomes a [`Disagreement`] with config `protocol-fuzz`.
pub fn fuzz_protocol(seed: u64, iterations: usize) -> ConformReport {
    let mut s = Stream(seed);
    let mut report = ConformReport {
        seed,
        cases: iterations,
        ..ConformReport::default()
    };
    let pool = fixture_pool(Budget::UNLIMITED);
    report.configs_checked += 1;

    for _ in 0..iterations {
        let line = random_line(&mut s);
        let reply = handle_command(&pool, &line);
        report.probes += 1;
        if let Some(detail) = violates_contract(&line, &reply) {
            report.disagreements.push(Disagreement {
                case_seed: seed,
                config: "protocol-fuzz".into(),
                check: "robustness".into(),
                graph: "cycle(12)".into(),
                query: FIXTURE_QUERY.into(),
                minimized: Some(line.clone()),
                detail,
            });
        }
    }

    // Session-control edge cases.
    for (line, want_quit) in [("quit", true), ("exit", true), ("  quit  ", true)] {
        report.probes += 1;
        let got_quit = matches!(handle_command(&pool, line), Some(Reply::Quit));
        if got_quit != want_quit {
            report.disagreements.push(protocol_failure(
                seed,
                line,
                format!("quit handling: got_quit={got_quit}"),
            ));
        }
    }

    // Deterministic overload: zero admission capacity rejects every
    // probe at submit, before any worker runs.
    let overloaded = fixture_pool(Budget::UNLIMITED.with_node_expansions(0));
    report.configs_checked += 1;
    for line in ["test 0,1", "next 0,0", "page 0,0 3"] {
        report.probes += 1;
        match handle_command(&overloaded, line) {
            Some(Reply::Line(r)) if r.starts_with("err overloaded:") => {}
            other => report.disagreements.push(protocol_failure(
                seed,
                line,
                format!("expected err overloaded, got {:?}", render(other)),
            )),
        }
    }

    // Deterministic deadline: a zero default deadline is already expired
    // when the worker dequeues the job (`now >= now`), with no sleeping
    // and no race.
    let expired = fixture_pool(Budget::UNLIMITED.with_wall_clock(Duration::ZERO));
    report.configs_checked += 1;
    for line in ["test 0,1", "page 0,0 2"] {
        report.probes += 1;
        match handle_command(&expired, line) {
            Some(Reply::Line(r)) if r.starts_with("err deadline:") => {}
            other => report.disagreements.push(protocol_failure(
                seed,
                line,
                format!("expected err deadline, got {:?}", render(other)),
            )),
        }
    }

    fuzz_session_verbs(&mut s, seed, &mut report);

    report
}

/// The session-level half of the robustness contract (PR 6): `swap` with
/// malformed paths is typed and epoch-preserving, a valid `swap` advances
/// the epoch, and `shutdown` degrades every later verb to a typed
/// `err shutdown:` reply — the session never drops, never panics.
fn fuzz_session_verbs(s: &mut Stream, seed: u64, report: &mut ConformReport) {
    let mut session = fixture_session();
    report.configs_checked += 1;

    let expect = |session: &mut Session, report: &mut ConformReport, line: &str, want: &str| {
        report.probes += 1;
        match session.handle(line) {
            Some(Reply::Line(r)) if r.starts_with(want) => {}
            other => report.disagreements.push(protocol_failure(
                seed,
                line,
                format!("expected {want:?}.., got {:?}", render(other)),
            )),
        }
    };

    // Malformed paths: empty (usage error), a file that does not exist,
    // a directory, and seeded junk names — all typed, none fatal.
    let tmp = std::env::temp_dir();
    let missing = tmp.join(format!("nd-fuzz-missing-{}.idx", std::process::id()));
    expect(&mut session, report, "swap", "err usage:");
    expect(
        &mut session,
        report,
        &format!("swap {}", missing.display()),
        "err read:",
    );
    expect(
        &mut session,
        report,
        &format!("swap {}", tmp.display()),
        "err read:",
    );
    for _ in 0..16 {
        let len = 1 + s.below(12) as usize;
        let junk: String = (0..len)
            .map(|_| char::from(b'a' + (s.below(26) as u8)))
            .collect();
        let line = format!("swap {}", tmp.join(format!("nd-fuzz-{junk}")).display());
        expect(&mut session, report, &line, "err read:");
    }
    if session.epoch() != 0 {
        report.disagreements.push(protocol_failure(
            seed,
            "swap",
            format!("failed swaps advanced the epoch to {}", session.epoch()),
        ));
    }
    // The original snapshot still serves after every rejected swap.
    report.probes += 1;
    match session.handle("test 0,1") {
        Some(Reply::Line(r)) if r == "true" || r == "false" => {}
        other => report.disagreements.push(protocol_failure(
            seed,
            "test 0,1",
            format!("probe after rejected swaps: {:?}", render(other)),
        )),
    }

    // A valid index swaps in and advances the epoch.
    let saved = tmp.join(format!("nd-fuzz-swap-{}.idx", std::process::id()));
    let q = parse_query(FIXTURE_QUERY).unwrap();
    report.probes += 1;
    match session
        .snapshot()
        .prepared()
        .save_index(&q, FIXTURE_QUERY, &saved)
    {
        Ok(()) => expect(
            &mut session,
            report,
            &format!("swap {}", saved.display()),
            "swapped epoch=1 ",
        ),
        Err(e) => report.disagreements.push(protocol_failure(
            seed,
            "swap",
            format!("saving the fixture index failed: {e}"),
        )),
    }
    std::fs::remove_file(&saved).ok();

    // Graceful shutdown: drains, then every verb is a typed rejection.
    expect(&mut session, report, "shutdown", "shutdown drained=");
    expect(&mut session, report, "test 0,1", "err shutdown:");
    expect(
        &mut session,
        report,
        &format!("swap {}", missing.display()),
        "err shutdown:",
    );
    expect(&mut session, report, "prepare Blue(x)", "err shutdown:");
}

fn render(r: Option<Reply>) -> String {
    match r {
        None => "<no reply>".into(),
        Some(Reply::Quit) => "<quit>".into(),
        Some(Reply::Line(l)) => l,
    }
}

fn protocol_failure(seed: u64, line: &str, detail: String) -> Disagreement {
    Disagreement {
        case_seed: seed,
        config: "protocol-fuzz".into(),
        check: "robustness".into(),
        graph: "cycle(12)".into(),
        query: FIXTURE_QUERY.into(),
        minimized: Some(line.to_string()),
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzzer_is_clean_and_deterministic() {
        let a = fuzz_protocol(1234, 200);
        assert!(a.ok(), "violations: {:?}", a.disagreements);
        assert_eq!(a.probes, fuzz_protocol(1234, 200).probes);
    }

    #[test]
    fn junk_lines_never_kill_the_session() {
        let pool = fixture_pool(Budget::UNLIMITED);
        for junk in [
            "!!!",
            "test",
            "page 1 2 3 4",
            "TEST 0,1",
            "next ,",
            "\u{7f}",
        ] {
            match handle_command(&pool, junk) {
                Some(Reply::Line(r)) => assert!(r.starts_with("err"), "{junk:?} -> {r}"),
                other => panic!("{junk:?} -> {:?}", render(other)),
            }
        }
    }
}
