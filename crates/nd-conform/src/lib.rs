//! Conformance harness: every engine configuration against the naive
//! semantics, plus metamorphic invariants no single run can check.
//!
//! The workspace has many ways to answer the same FO query: the indexed
//! engine at several `ε` values, with and without extendability pruning,
//! the budget-degradation ladder of PR 1, the naive baselines, the
//! `load(save(x))` persistence round trip of the on-disk index format,
//! and the `nd-serve` snapshot behind the line protocol. They are all supposed to
//! agree *exactly* — same solution set, same lexicographic order, same
//! `next_solution` successors, same page boundaries. This crate generates
//! seeded random (graph, query) cases, diffs every configuration against
//! the ground-truth oracle ([`nd_logic::eval::materialize`] via
//! [`MaterializingEnumerator`]), checks metamorphic invariants
//! (relabeling equivariance, deletion monotonicity, strict lex order),
//! and shrinks any failure to a locally minimal, seed-reproducible
//! counterexample via [`nd_logic::shrink_query`].
//!
//! Everything is deterministic: [`run`] with the same [`ConformOpts`]
//! produces the same cases, probes and verdicts on any platform. A
//! failure report therefore *is* a reproduction recipe — `case_seed`
//! plus the config label replays the disagreement.
//!
//! The serve-protocol configuration drives the exact production
//! parse/format path ([`nd_serve::protocol`]) in-process; the companion
//! [`protocol_fuzz`] module additionally fuzzes the protocol with
//! malformed input and deterministic overload/deadline edge cases.

pub mod protocol_fuzz;

use nd_baseline::{MaterializingEnumerator, NaiveEnumerator, NaiveTester};
use nd_core::{Budget, PrepareOpts, PreparedQuery, SharedPreparedQuery};
use nd_graph::json::{JsonArray, JsonObject};
use nd_graph::{generators, ColoredGraph, Vertex};
use nd_logic::ast::Query;
use nd_logic::grammar::{is_deletion_monotone, random_query, GrammarOpts};
use nd_logic::shrink_query;
use nd_serve::protocol::{fmt_tuple, handle_command, Reply};
use nd_serve::{ServeOpts, ServerPool, Snapshot};
use std::borrow::Borrow;

// ---------------------------------------------------------------------
// Seeded determinism.
// ---------------------------------------------------------------------

/// splitmix64 — the workspace-standard seeded stream (same finalizer as
/// `nd-bench` and `nd-logic::grammar`), so conformance cases reproduce
/// bit-for-bit on any platform.
#[derive(Clone)]
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next() % bound
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Derive the per-case seed from the run seed. Public so the regression
/// corpus and the CLI can name the exact case a report points at.
pub fn case_seed(run_seed: u64, case_index: u64) -> u64 {
    let mut s = Stream(run_seed ^ case_index.wrapping_mul(0xa076_1d64_78bd_642f));
    s.next()
}

// ---------------------------------------------------------------------
// Options and report.
// ---------------------------------------------------------------------

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct ConformOpts {
    /// Run seed; every case seed derives from it.
    pub seed: u64,
    /// Number of (graph, query) cases.
    pub cases: usize,
    /// Largest graph size (vertices). Cases draw `n` from `8..=max_n`.
    pub max_n: usize,
    /// Run the serve-protocol configuration on every `serve_every`-th
    /// case (thread spawning is the expensive part; 0 disables it).
    pub serve_every: usize,
    /// Shrink failing queries to locally minimal counterexamples.
    pub shrink: bool,
}

impl Default for ConformOpts {
    fn default() -> Self {
        ConformOpts {
            seed: 42,
            cases: 100,
            max_n: 28,
            serve_every: 8,
            shrink: true,
        }
    }
}

/// One engine/oracle disagreement, with everything needed to replay it.
#[derive(Clone, Debug)]
pub struct Disagreement {
    /// Seed reproducing the case (`run_case(case_seed, ..)`).
    pub case_seed: u64,
    /// Which engine configuration disagreed.
    pub config: String,
    /// Which check failed (`enumerate`, `lex-order`, `count`, `test`,
    /// `next`, `page`, `relabel`, `deletion`, `prepare`).
    pub check: String,
    /// Graph family and size, human-readable.
    pub graph: String,
    /// The failing query as generated.
    pub query: String,
    /// The query after greedy shrinking (when enabled and productive).
    pub minimized: Option<String>,
    /// First divergence, rendered short.
    pub detail: String,
}

impl Disagreement {
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("case_seed", self.case_seed)
            .field_str("config", &self.config)
            .field_str("check", &self.check)
            .field_str("graph", &self.graph)
            .field_str("query", &self.query);
        match &self.minimized {
            Some(m) => o.field_str("minimized", m),
            None => o.field_null("minimized"),
        };
        o.field_str("detail", &self.detail);
        o.finish()
    }
}

/// The outcome of a conformance run.
#[derive(Clone, Debug, Default)]
pub struct ConformReport {
    pub seed: u64,
    pub cases: usize,
    /// Engine configurations actually diffed (prepare succeeded).
    pub configs_checked: u64,
    /// Configurations skipped on a *tolerated* typed prepare error
    /// (budget exceeded on the tight-budget rung, unsupported fragment
    /// under strict no-fallback).
    pub skipped: u64,
    /// Individual probe comparisons performed.
    pub probes: u64,
    pub disagreements: Vec<Disagreement>,
}

impl ConformReport {
    /// Did every configuration agree on every case?
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty()
    }

    pub fn to_json(&self) -> String {
        let mut arr = JsonArray::new();
        for d in &self.disagreements {
            arr.push_raw(&d.to_json());
        }
        let mut o = JsonObject::new();
        o.field_str("experiment", "conform")
            .field_u64("seed", self.seed)
            .field_u64("cases", self.cases as u64)
            .field_u64("configs_checked", self.configs_checked)
            .field_u64("skipped", self.skipped)
            .field_u64("probes", self.probes)
            .field_u64("disagreements", self.disagreements.len() as u64)
            .field_bool("ok", self.ok())
            .field_raw("failures", &arr.finish());
        o.finish()
    }
}

// ---------------------------------------------------------------------
// Case generation.
// ---------------------------------------------------------------------

/// Build the case graph: a seeded pick from the sparse families of
/// [`nd_graph::generators`], recolored with seeded `Blue`/`Red` sets (the
/// colors [`GrammarOpts::default`] emits atoms for).
fn build_graph(s: &mut Stream, max_n: usize) -> (ColoredGraph, String) {
    let n = 8 + s.below((max_n.max(9) - 8) as u64 + 1) as usize;
    let (mut g, desc) = match s.below(8) {
        0 => (generators::path(n), format!("path({n})")),
        1 => (generators::cycle(n), format!("cycle({n})")),
        2 => {
            let w = 2 + (n / 6).min(4);
            let h = n.div_ceil(w).max(2);
            (generators::grid(w, h), format!("grid({w},{h})"))
        }
        3 => {
            let seed = s.next();
            (
                generators::random_tree(n, seed),
                format!("random_tree({n})"),
            )
        }
        4 => {
            let seed = s.next();
            (
                generators::bounded_degree(n, 3, seed),
                format!("bounded_degree({n},3)"),
            )
        }
        5 => {
            let seed = s.next();
            let m = n + s.below(n as u64) as usize;
            (generators::gnm(n, m, seed), format!("gnm({n},{m})"))
        }
        6 => {
            let spine = (n / 3).max(2);
            let legs = 2;
            (
                generators::caterpillar(spine, legs),
                format!("caterpillar({spine},{legs})"),
            )
        }
        _ => (generators::star(n), format!("star({n})")),
    };
    for name in ["Blue", "Red"] {
        let members: Vec<Vertex> = (0..g.n() as Vertex).filter(|_| s.chance(1, 3)).collect();
        g.add_color(members, Some(name.to_string()));
    }
    (g, desc)
}

/// Probe tuples for `test`/`next`/`page` cross-checks: every solution (so
/// membership and self-successorship are exercised), near-misses just
/// above solutions, the lattice corners, and seeded random tuples.
fn make_probes(
    g: &ColoredGraph,
    arity: usize,
    oracle: &MaterializingEnumerator,
    s: &mut Stream,
) -> Vec<Vec<Vertex>> {
    let n = g.n() as Vertex;
    if arity == 0 {
        return vec![vec![]];
    }
    let mut probes: Vec<Vec<Vertex>> = Vec::new();
    probes.push(vec![0; arity]);
    probes.push(vec![n - 1; arity]);
    for sol in oracle.solutions().iter().take(16) {
        probes.push(sol.clone());
        let mut just_past = sol.clone();
        if just_past[arity - 1] + 1 < n {
            just_past[arity - 1] += 1;
            probes.push(just_past);
        }
    }
    for _ in 0..8 {
        probes.push((0..arity).map(|_| s.below(n as u64) as Vertex).collect());
    }
    probes
}

// ---------------------------------------------------------------------
// Engines under test.
// ---------------------------------------------------------------------

/// A uniform view over one way of answering the query. `None` from an
/// operation means "this configuration does not expose it" (not a
/// failure); errors on well-formed probes are rendered into the reply
/// and surface as disagreements against the oracle.
trait Engine {
    fn enumerate(&mut self) -> Result<Vec<Vec<Vertex>>, String>;
    fn count(&mut self) -> Option<Result<usize, String>>;
    fn test(&mut self, t: &[Vertex]) -> Option<Result<bool, String>>;
    fn next_solution(&mut self, t: &[Vertex]) -> Option<Result<Option<Vec<Vertex>>, String>>;
    fn page(&mut self, from: &[Vertex], limit: usize) -> Option<Result<Vec<Vec<Vertex>>, String>>;
}

struct PreparedEngine<G: Borrow<ColoredGraph>> {
    pq: PreparedQuery<G>,
}

impl<G: Borrow<ColoredGraph>> Engine for PreparedEngine<G> {
    fn enumerate(&mut self) -> Result<Vec<Vec<Vertex>>, String> {
        Ok(self.pq.enumerate().collect())
    }
    fn count(&mut self) -> Option<Result<usize, String>> {
        Some(Ok(self.pq.count()))
    }
    fn test(&mut self, t: &[Vertex]) -> Option<Result<bool, String>> {
        Some(self.pq.try_test(t).map_err(|e| e.to_string()))
    }
    fn next_solution(&mut self, t: &[Vertex]) -> Option<Result<Option<Vec<Vertex>>, String>> {
        Some(self.pq.try_next_solution(t).map_err(|e| e.to_string()))
    }
    fn page(&mut self, from: &[Vertex], limit: usize) -> Option<Result<Vec<Vec<Vertex>>, String>> {
        Some(self.pq.page(from, limit).map_err(|e| e.to_string()))
    }
}

/// The zero-preprocessing streaming baseline: nested-loop enumeration
/// plus direct per-tuple evaluation. `next`/`page` are derived from the
/// stream (cheap at conformance sizes).
struct NaiveStreamEngine<'g> {
    g: &'g ColoredGraph,
    q: Query,
}

impl Engine for NaiveStreamEngine<'_> {
    fn enumerate(&mut self) -> Result<Vec<Vec<Vertex>>, String> {
        Ok(NaiveEnumerator::new(self.g, self.q.clone()).collect())
    }
    fn count(&mut self) -> Option<Result<usize, String>> {
        Some(Ok(NaiveEnumerator::new(self.g, self.q.clone()).count()))
    }
    fn test(&mut self, t: &[Vertex]) -> Option<Result<bool, String>> {
        Some(Ok(NaiveTester::new(self.g, self.q.clone()).test(t)))
    }
    fn next_solution(&mut self, t: &[Vertex]) -> Option<Result<Option<Vec<Vertex>>, String>> {
        let from = t.to_vec();
        Some(Ok(
            NaiveEnumerator::new(self.g, self.q.clone()).find(|s| s.as_slice() >= from.as_slice())
        ))
    }
    fn page(&mut self, from: &[Vertex], limit: usize) -> Option<Result<Vec<Vec<Vertex>>, String>> {
        let from = from.to_vec();
        Some(Ok(NaiveEnumerator::new(self.g, self.q.clone())
            .filter(|s| s.as_slice() >= from.as_slice())
            .take(limit)
            .collect()))
    }
}

/// The production serving path, driven through the wire protocol: every
/// request is rendered to a protocol line, dispatched via
/// [`handle_command`] against a one-worker [`ServerPool`], and the reply
/// line parsed back. This covers snapshot execution *and* the
/// parse/format round trip in one configuration.
/// Solutions on a protocol page plus the cursor for the next one, if any.
type ParsedPage = (Vec<Vec<Vertex>>, Option<Vec<Vertex>>);

struct ServeEngine {
    pool: ServerPool,
    arity: usize,
}

impl ServeEngine {
    fn ask(&self, line: &str) -> Result<String, String> {
        match handle_command(&self.pool, line) {
            Some(Reply::Line(reply)) if reply.starts_with("err") => Err(reply),
            Some(Reply::Line(reply)) => Ok(reply),
            Some(Reply::Quit) => Err("unexpected quit".into()),
            None => Err(format!("no reply to {line:?}")),
        }
    }

    fn parse_tuple(s: &str) -> Result<Vec<Vertex>, String> {
        nd_serve::protocol::parse_csv_tuple(s)
    }

    /// Parse `s1;s2;.. next=X` / `next=X`.
    fn parse_page(reply: &str) -> Result<ParsedPage, String> {
        let (sols, next) = match reply.rsplit_once(" next=") {
            Some((sols, next)) => (sols, next),
            None => match reply.strip_prefix("next=") {
                Some(next) => ("", next),
                None => return Err(format!("malformed page reply {reply:?}")),
            },
        };
        let solutions = if sols.is_empty() {
            vec![]
        } else {
            sols.split(';')
                .map(Self::parse_tuple)
                .collect::<Result<_, _>>()?
        };
        let cursor = if next == "end" {
            None
        } else {
            Some(Self::parse_tuple(next)?)
        };
        Ok((solutions, cursor))
    }
}

impl Engine for ServeEngine {
    fn enumerate(&mut self) -> Result<Vec<Vec<Vertex>>, String> {
        let mut out = Vec::new();
        let mut from = vec![0; self.arity];
        loop {
            let reply = self.ask(&format!("page {} 16", fmt_tuple(&from)))?;
            let (solutions, cursor) = Self::parse_page(&reply)?;
            out.extend(solutions);
            match cursor {
                Some(next) => from = next,
                None => return Ok(out),
            }
        }
    }
    fn count(&mut self) -> Option<Result<usize, String>> {
        None // the wire protocol has no count command
    }
    fn test(&mut self, t: &[Vertex]) -> Option<Result<bool, String>> {
        Some(
            self.ask(&format!("test {}", fmt_tuple(t)))
                .and_then(|reply| match reply.as_str() {
                    "true" => Ok(true),
                    "false" => Ok(false),
                    other => Err(format!("malformed test reply {other:?}")),
                }),
        )
    }
    fn next_solution(&mut self, t: &[Vertex]) -> Option<Result<Option<Vec<Vertex>>, String>> {
        Some(
            self.ask(&format!("next {}", fmt_tuple(t)))
                .and_then(|reply| match reply.as_str() {
                    "none" => Ok(None),
                    tuple => Self::parse_tuple(tuple).map(Some),
                }),
        )
    }
    fn page(&mut self, from: &[Vertex], limit: usize) -> Option<Result<Vec<Vec<Vertex>>, String>> {
        Some(
            self.ask(&format!("page {} {limit}", fmt_tuple(from)))
                .and_then(|reply| Self::parse_page(&reply).map(|(sols, _)| sols)),
        )
    }
}

// ---------------------------------------------------------------------
// Configurations.
// ---------------------------------------------------------------------

/// One engine configuration: label + how to build it. `tolerates_errors`
/// marks rungs where a *typed* prepare error is an acceptable outcome
/// (budget exhaustion, strict-mode fragment rejection) rather than a
/// conformance failure.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Config {
    Indexed {
        epsilon: f64,
        extendability: bool,
    },
    /// The indexed engine built by the parallel prepare — diffed against
    /// the sequential `Indexed` configs (and the naive oracle) to prove
    /// thread count never changes answers.
    ParallelPrepare {
        threads: usize,
    },
    TightBudget,
    StrictNoFallback,
    NaiveStream,
    ServeProtocol,
    /// The default indexed engine pushed through the on-disk format in
    /// memory — `save_index_bytes` then `load_index_bytes` — so every
    /// case also proves `load(save(x))` answers exactly like `x`, the
    /// decoded query matches the source, and re-saving the loaded index
    /// is bit-identical (the `ndq --save`/`--load`/`swap` path).
    PersistRoundTrip,
}

impl Config {
    fn label(self) -> String {
        match self {
            Config::Indexed {
                epsilon,
                extendability: true,
            } => format!("indexed-eps={epsilon}"),
            Config::Indexed { epsilon, .. } => format!("indexed-noext-eps={epsilon}"),
            Config::ParallelPrepare { threads } => format!("parallel-prepare-t{threads}"),
            Config::TightBudget => "ladder-tight-budget".into(),
            Config::StrictNoFallback => "strict-nofallback".into(),
            Config::NaiveStream => "naive-stream".into(),
            Config::ServeProtocol => "serve-protocol".into(),
            Config::PersistRoundTrip => "persist-roundtrip".into(),
        }
    }

    fn tolerates_errors(self) -> bool {
        matches!(self, Config::TightBudget | Config::StrictNoFallback)
    }

    fn prepare_opts(self) -> PrepareOpts {
        match self {
            Config::Indexed {
                epsilon,
                extendability,
            } => PrepareOpts {
                epsilon,
                extendability_check: extendability,
                ..PrepareOpts::default()
            },
            // A node cap low enough to knock small-but-not-trivial cases
            // down the ladder, high enough that tiny ones still index:
            // whichever rung answers, it must agree.
            Config::TightBudget => PrepareOpts {
                budget: Budget::UNLIMITED.with_node_expansions(400),
                ..PrepareOpts::default()
            },
            Config::ParallelPrepare { threads } => PrepareOpts {
                threads,
                ..PrepareOpts::default()
            },
            Config::StrictNoFallback => PrepareOpts {
                allow_fallback: false,
                ..PrepareOpts::default()
            },
            Config::NaiveStream | Config::ServeProtocol | Config::PersistRoundTrip => {
                PrepareOpts::default()
            }
        }
    }
}

/// The configurations exercised on a case. The serve path only speaks
/// tuples of arity ≥ 1 (the wire format has no empty tuple).
fn configs(serve: bool, arity: usize) -> Vec<Config> {
    let mut cs = vec![
        Config::Indexed {
            epsilon: 0.25,
            extendability: true,
        },
        Config::Indexed {
            epsilon: 0.5,
            extendability: true,
        },
        Config::Indexed {
            epsilon: 1.0,
            extendability: true,
        },
        Config::Indexed {
            epsilon: 0.5,
            extendability: false,
        },
        Config::ParallelPrepare { threads: 2 },
        Config::ParallelPrepare { threads: 4 },
        Config::TightBudget,
        Config::StrictNoFallback,
        Config::NaiveStream,
        Config::PersistRoundTrip,
    ];
    if serve && arity >= 1 {
        cs.push(Config::ServeProtocol);
    }
    cs
}

/// Build the engine for `config`, or a typed prepare error message.
fn build_engine<'g>(
    g: &'g ColoredGraph,
    q: &Query,
    config: Config,
) -> Result<Box<dyn Engine + 'g>, String> {
    match config {
        Config::NaiveStream => Ok(Box::new(NaiveStreamEngine { g, q: q.clone() })),
        Config::ServeProtocol => {
            let snapshot = Snapshot::build_owned(g.clone(), q, &PrepareOpts::default())
                .map_err(|e| e.to_string())?;
            let pool = ServerPool::start(
                snapshot,
                &ServeOpts {
                    workers: 1,
                    ..ServeOpts::default()
                },
            );
            Ok(Box::new(ServeEngine {
                pool,
                arity: q.arity(),
            }))
        }
        Config::PersistRoundTrip => {
            let shared =
                SharedPreparedQuery::prepare(g.clone().into_shared(), q, &PrepareOpts::default())
                    .map_err(|e| e.to_string())?;
            let query_src = q.to_string();
            let bytes = shared
                .save_index_bytes(q, &query_src)
                .map_err(|e| format!("save: {e}"))?;
            let loaded =
                SharedPreparedQuery::load_index_bytes(&bytes).map_err(|e| format!("load: {e}"))?;
            if loaded.query != *q {
                return Err(format!(
                    "decoded query {} differs from source {q}",
                    loaded.query
                ));
            }
            // The format is deterministic: re-saving the loaded index
            // must reproduce the original bytes exactly.
            let resaved = loaded
                .prepared
                .save_index_bytes(&loaded.query, &loaded.query_src)
                .map_err(|e| format!("re-save: {e}"))?;
            if resaved != bytes {
                return Err("re-saved index is not bit-identical to the original".into());
            }
            Ok(Box::new(PreparedEngine {
                pq: loaded.prepared,
            }))
        }
        _ => {
            let pq =
                PreparedQuery::prepare(g, q, &config.prepare_opts()).map_err(|e| e.to_string())?;
            Ok(Box::new(PreparedEngine { pq }))
        }
    }
}

// ---------------------------------------------------------------------
// Checks.
// ---------------------------------------------------------------------

fn render_tuples(ts: &[Vec<Vertex>]) -> String {
    let shown: Vec<String> = ts.iter().take(4).map(|t| fmt_tuple(t)).collect();
    let ellipsis = if ts.len() > 4 { ";.." } else { "" };
    format!("[{}{}] ({} tuples)", shown.join(";"), ellipsis, ts.len())
}

fn diff_tuples(check: &str, got: &[Vec<Vertex>], want: &[Vec<Vertex>]) -> Option<String> {
    if got == want {
        return None;
    }
    let i = got
        .iter()
        .zip(want.iter())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| got.len().min(want.len()));
    Some(format!(
        "{check}: first divergence at index {i}: got {} want {}",
        render_tuples(&got[i.min(got.len())..]),
        render_tuples(&want[i.min(want.len())..]),
    ))
}

/// Diff one engine against the oracle. Returns failure descriptions as
/// `(check, detail)` and bumps `probes` with the comparisons performed.
fn check_engine(
    engine: &mut dyn Engine,
    oracle: &MaterializingEnumerator,
    probes: &[Vec<Vertex>],
    probe_count: &mut u64,
) -> Vec<(String, String)> {
    let mut fails = Vec::new();

    match engine.enumerate() {
        Err(e) => fails.push(("enumerate".into(), e)),
        Ok(got) => {
            // The metamorphic half of the contract first: the stream must
            // be strictly lex-increasing (hence duplicate-free) on its own
            // terms, independent of what the oracle says.
            if let Some(w) = got.windows(2).find(|w| w[0] >= w[1]) {
                fails.push((
                    "lex-order".into(),
                    format!("{} then {}", fmt_tuple(&w[0]), fmt_tuple(&w[1])),
                ));
            }
            if let Some(d) = diff_tuples("enumerate", &got, oracle.solutions()) {
                fails.push(("enumerate".into(), d));
            }
        }
    }

    if let Some(c) = engine.count() {
        *probe_count += 1;
        match c {
            Err(e) => fails.push(("count".into(), e)),
            Ok(got) if got != oracle.count() => {
                fails.push(("count".into(), format!("got {got} want {}", oracle.count())));
            }
            Ok(_) => {}
        }
    }

    for probe in probes {
        if let Some(r) = engine.test(probe) {
            *probe_count += 1;
            let want = oracle.test(probe);
            match r {
                Err(e) => fails.push(("test".into(), format!("{}: {e}", fmt_tuple(probe)))),
                Ok(got) if got != want => fails.push((
                    "test".into(),
                    format!("test({}) got {got} want {want}", fmt_tuple(probe)),
                )),
                Ok(_) => {}
            }
        }
        if let Some(r) = engine.next_solution(probe) {
            *probe_count += 1;
            let want = oracle.next_solution(probe);
            match r {
                Err(e) => fails.push(("next".into(), format!("{}: {e}", fmt_tuple(probe)))),
                Ok(got) if got != want => fails.push((
                    "next".into(),
                    format!(
                        "next({}) got {} want {}",
                        fmt_tuple(probe),
                        got.as_deref().map_or("none".into(), fmt_tuple),
                        want.as_deref().map_or("none".into(), fmt_tuple),
                    ),
                )),
                Ok(_) => {}
            }
        }
    }

    for (probe, limit) in probes.iter().zip([1usize, 3, 7].into_iter().cycle()) {
        if let Some(r) = engine.page(probe, limit) {
            *probe_count += 1;
            let want = oracle.page(probe, limit);
            match r {
                Err(e) => fails.push(("page".into(), format!("{}: {e}", fmt_tuple(probe)))),
                Ok(got) => {
                    if let Some(d) =
                        diff_tuples(&format!("page({},{limit})", fmt_tuple(probe)), &got, &want)
                    {
                        fails.push(("page".into(), d));
                    }
                }
            }
        }
    }

    fails
}

/// Does `config` disagree with the oracle on `(g, q)` in any way? The
/// shrinking predicate: cheap to state, recomputes the oracle per
/// candidate.
fn config_fails(g: &ColoredGraph, q: &Query, config: Config) -> bool {
    let oracle = MaterializingEnumerator::prepare(g, q);
    let mut s = Stream(q.arity() as u64 ^ 0x5eed);
    let probes = make_probes(g, q.arity(), &oracle, &mut s);
    match build_engine(g, q, config) {
        Err(_) => !config.tolerates_errors(),
        Ok(mut engine) => !check_engine(&mut *engine, &oracle, &probes, &mut 0).is_empty(),
    }
}

// ---------------------------------------------------------------------
// Metamorphic invariants across graphs.
// ---------------------------------------------------------------------

/// Relabeling equivariance: `t ∈ q(g)` iff `perm(t) ∈ q(perm(g))`. The
/// permuted side is answered by the default indexed engine, so this also
/// cross-checks two *different* index constructions of isomorphic graphs.
fn relabel_fails(g: &ColoredGraph, q: &Query, perm: &[Vertex]) -> Option<String> {
    let pg = generators::permuted(g, perm);
    let mut want: Vec<Vec<Vertex>> = nd_logic::eval::materialize(g, q)
        .into_iter()
        .map(|t| t.iter().map(|&v| perm[v as usize]).collect())
        .collect();
    want.sort();
    let pq = match PreparedQuery::prepare(&pg, q, &PrepareOpts::default()) {
        Ok(pq) => pq,
        Err(e) => return Some(format!("prepare on permuted graph: {e}")),
    };
    let got: Vec<Vec<Vertex>> = pq.enumerate().collect();
    diff_tuples("relabel", &got, &want)
}

/// Deletion monotonicity: for negation-free (monotone) queries, removing
/// a vertex that appears in no solution never *adds* solutions — every
/// answer on the reduced graph, translated back through the compaction
/// map, must already be an answer on the original.
fn deletion_fails(g: &ColoredGraph, q: &Query, victim: Vertex) -> Option<String> {
    let rg = generators::remove_vertex(g, victim);
    let pq = match PreparedQuery::prepare(&rg, q, &PrepareOpts::default()) {
        Ok(pq) => pq,
        Err(e) => return Some(format!("prepare on reduced graph: {e}")),
    };
    let oracle = MaterializingEnumerator::prepare(g, q);
    let unshift = |w: Vertex| if w >= victim { w + 1 } else { w };
    for t in pq.enumerate() {
        let back: Vec<Vertex> = t.iter().map(|&w| unshift(w)).collect();
        if !oracle.test(&back) {
            return Some(format!(
                "deletion of {victim} added solution {} (originally {})",
                fmt_tuple(&t),
                fmt_tuple(&back),
            ));
        }
    }
    None
}

// ---------------------------------------------------------------------
// The harness.
// ---------------------------------------------------------------------

/// Per-case statistics rolled into the [`ConformReport`].
#[derive(Default)]
pub struct CaseOutcome {
    pub configs_checked: u64,
    pub skipped: u64,
    pub probes: u64,
    pub disagreements: Vec<Disagreement>,
}

/// Regenerate the (graph, query) a case seed denotes. Shared by
/// [`run_case`] and [`describe_case`] so a seed always means the same
/// case.
fn gen_case(case_seed: u64, max_n: usize) -> (ColoredGraph, String, Query, Stream) {
    let mut s = Stream(case_seed);
    let (g, desc) = build_graph(&mut s, max_n);
    let gopts = GrammarOpts {
        allow_non_fragment: s.chance(1, 4),
        ..GrammarOpts::default()
    };
    let q = random_query(s.next(), &gopts);
    (g, desc, q, s)
}

/// Human-readable description of the case a seed denotes — for corpus
/// curation and failure reports.
pub fn describe_case(case_seed: u64, max_n: usize) -> String {
    let (g, desc, q, _) = gen_case(case_seed, max_n);
    format!("{desc} n={} :: {q} (arity {})", g.n(), q.arity())
}

/// Run one conformance case. `serve` gates the (thread-spawning)
/// serve-protocol configuration; `shrink` gates counterexample
/// minimization.
pub fn run_case(case_seed: u64, max_n: usize, serve: bool, shrink: bool) -> CaseOutcome {
    let mut out = CaseOutcome::default();
    let (g, graph_desc, q, mut s) = gen_case(case_seed, max_n);
    let oracle = MaterializingEnumerator::prepare(&g, &q);
    let probes = make_probes(&g, q.arity(), &oracle, &mut s);

    let record = |out: &mut CaseOutcome,
                  config: String,
                  check: String,
                  detail: String,
                  fails: &mut dyn FnMut(&Query) -> bool| {
        let minimized = if shrink {
            let min = shrink_query(&q, |cand| fails(cand));
            (min.formula != q.formula).then(|| min.to_string())
        } else {
            None
        };
        out.disagreements.push(Disagreement {
            case_seed,
            config,
            check,
            graph: graph_desc.clone(),
            query: q.to_string(),
            minimized,
            detail,
        });
    };

    for config in configs(serve, q.arity()) {
        match build_engine(&g, &q, config) {
            Err(e) if config.tolerates_errors() => {
                let _ = e;
                out.skipped += 1;
            }
            Err(e) => {
                record(&mut out, config.label(), "prepare".into(), e, &mut |cand| {
                    config_fails(&g, cand, config)
                });
            }
            Ok(mut engine) => {
                out.configs_checked += 1;
                // One representative (the first) failure per configuration:
                // a broken engine usually fails dozens of probes at once,
                // and shrinking each would multiply the cost for no extra
                // signal.
                if let Some((check, detail)) =
                    check_engine(&mut *engine, &oracle, &probes, &mut out.probes)
                        .into_iter()
                        .next()
                {
                    record(&mut out, config.label(), check, detail, &mut |cand| {
                        config_fails(&g, cand, config)
                    });
                }
            }
        }
    }

    // Metamorphic invariants (checked on the default configuration).
    let perm = generators::random_permutation(g.n(), s.next());
    out.probes += 1;
    if let Some(detail) = relabel_fails(&g, &q, &perm) {
        record(
            &mut out,
            "indexed-eps=0.5".into(),
            "relabel".into(),
            detail,
            &mut |cand| relabel_fails(&g, cand, &perm).is_some(),
        );
    }
    if is_deletion_monotone(&q.formula) && g.n() > 1 {
        let used: std::collections::BTreeSet<Vertex> =
            oracle.solutions().iter().flatten().copied().collect();
        if let Some(victim) = (0..g.n() as Vertex).find(|v| !used.contains(v)) {
            out.probes += 1;
            if let Some(detail) = deletion_fails(&g, &q, victim) {
                record(
                    &mut out,
                    "indexed-eps=0.5".into(),
                    "deletion".into(),
                    detail,
                    &mut |cand| {
                        is_deletion_monotone(&cand.formula)
                            && deletion_fails(&g, cand, victim).is_some()
                    },
                );
            }
        }
    }

    out
}

/// Run the full harness: `opts.cases` seeded cases, every configuration,
/// all invariants, shrunk counterexamples.
pub fn run(opts: &ConformOpts) -> ConformReport {
    let mut report = ConformReport {
        seed: opts.seed,
        cases: opts.cases,
        ..ConformReport::default()
    };
    for i in 0..opts.cases as u64 {
        let serve = opts.serve_every > 0 && i % opts.serve_every as u64 == 0;
        let outcome = run_case(case_seed(opts.seed, i), opts.max_n, serve, opts.shrink);
        report.configs_checked += outcome.configs_checked;
        report.skipped += outcome.skipped;
        report.probes += outcome.probes;
        report.disagreements.extend(outcome.disagreements);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_stable() {
        // Pinned: a changed derivation would silently invalidate every
        // recorded regression seed.
        assert_eq!(case_seed(42, 0), case_seed(42, 0));
        assert_ne!(case_seed(42, 0), case_seed(42, 1));
        assert_ne!(case_seed(42, 0), case_seed(43, 0));
    }

    #[test]
    fn small_run_is_clean_and_deterministic() {
        let opts = ConformOpts {
            seed: 7,
            cases: 6,
            max_n: 14,
            serve_every: 3,
            shrink: true,
        };
        let a = run(&opts);
        assert!(a.ok(), "disagreements: {:?}", a.disagreements);
        assert!(a.configs_checked > 0);
        assert!(a.probes > 0);
        let b = run(&opts);
        assert_eq!(a.configs_checked, b.configs_checked);
        assert_eq!(a.probes, b.probes);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn report_json_shape() {
        let mut r = ConformReport {
            seed: 1,
            cases: 2,
            configs_checked: 3,
            probes: 4,
            ..ConformReport::default()
        };
        assert!(r.to_json().contains("\"ok\":true"));
        r.disagreements.push(Disagreement {
            case_seed: 9,
            config: "naive-stream".into(),
            check: "count".into(),
            graph: "path(8)".into(),
            query: "E(x,y)".into(),
            minimized: None,
            detail: "got 1 want 2".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"ok\":false"));
        assert!(j.contains("\"case_seed\":9"));
        assert!(j.contains("\"minimized\":null"));
    }
}
