//! The harness must catch bugs, not just bless agreement.
//!
//! This test arms the `sabotage` feature's flipped-lex defect in nd-core
//! (multi-branch `next_solution` merged with `max` instead of `min` — a
//! realistic order-comparison bug that hides on single-branch queries)
//! and asserts the conformance run reports it, minimized and
//! seed-reproducible.
//!
//! Isolated in its own integration-test binary: the sabotage switch is a
//! process-global atomic, and sibling tests in the same process would
//! otherwise observe the armed engine.

use nd_conform::{run, run_case, ConformOpts};
use nd_core::sabotage::FlipLexGuard;

#[test]
fn flipped_lex_is_caught_minimized_and_reproducible() {
    let opts = ConformOpts {
        seed: 42,
        cases: 20,
        max_n: 28,
        serve_every: 0,
        shrink: true,
    };

    // Sanity: with the defect disarmed the same run is clean — whatever
    // the armed run reports is the injected bug, not ambient noise.
    let clean = run(&opts);
    assert!(clean.ok(), "baseline run dirty: {:?}", clean.disagreements);

    let guard = FlipLexGuard::new();
    let report = run(&opts);
    assert!(
        !report.ok(),
        "the harness failed to catch the flipped-lex engine bug"
    );
    // The defect lives in the indexed next_solution merge: every report
    // must come from a configuration backed by the indexed engine — never
    // from `naive-stream` or the oracle, which the switch does not touch.
    for d in &report.disagreements {
        assert_ne!(d.config, "naive-stream", "unexpected config: {d:?}");
        assert_ne!(d.config, "serve-protocol", "unexpected config: {d:?}");
    }
    // At least one counterexample shrank to something strictly smaller.
    assert!(
        report.disagreements.iter().any(|d| d.minimized.is_some()),
        "no disagreement shrank: {:?}",
        report.disagreements
    );

    // Seed-reproducibility: replaying any reported case seed, in
    // isolation and without shrinking, reproduces a disagreement.
    let d = &report.disagreements[0];
    let replay = run_case(d.case_seed, opts.max_n, false, false);
    assert!(
        !replay.disagreements.is_empty(),
        "case seed {:#x} did not reproduce",
        d.case_seed
    );

    // Disarming restores exact agreement.
    drop(guard);
    let healed = run_case(d.case_seed, opts.max_n, false, false);
    assert!(
        healed.disagreements.is_empty(),
        "disarmed engine still disagrees: {:?}",
        healed.disagreements
    );
}
