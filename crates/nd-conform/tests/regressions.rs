//! Named regression corpus.
//!
//! Each entry pins one case seed the harness must stay clean on. The
//! names describe what the case exercises (verify with
//! `nd_conform::describe_case(seed, MAX_N)`); the seeds were curated from
//! the `seed=42` run stream, biased toward the constructs that have the
//! most cross-engine surface: unions, non-fragment fallback, far
//! (`dist > d`) constraints, degenerate arities, and dummy variables.
//!
//! Workflow: when `ndq conform` reports a disagreement, fix the engine,
//! then add the `case_seed` from the report here with a name saying what
//! broke. The corpus only grows.

use nd_conform::{describe_case, run_case};

/// `max_n` the corpus seeds were curated under — part of the seed's
/// meaning (graph sizes derive from it), so it must not drift.
const MAX_N: usize = 28;

const CORPUS: &[(&str, u64)] = &[
    // Union whose second branch holds a common-neighbor pattern outside
    // the distance-type fragment: exercises the naive-fallback rung
    // against indexed branches in one query.
    ("union-nonfragment-fallback", 0xbdd732262feb6e95),
    // Arity-3 pure negation !E(v0,v2) on a path: dense answer set, dummy
    // middle variable.
    ("negated-edge-triple", 0x2f5c8fa3624ea1a7),
    // Common-neighbor pattern centered on a star hub (every pair shares
    // the hub): fallback with maximal witness overlap.
    ("star-common-neighbor", 0x9f6acaf728beb1dd),
    // Arity-0 trivial sentence: the empty-tuple fast paths.
    ("boolean-true-sentence", 0x7fea7c8adc81c8da),
    // Conjunction of far constraints (dist > 3, dist > 2) at arity 3:
    // skip-pointer territory.
    ("far-distance-conjunction", 0xabcf8f8e7be53925),
    // Union of a far branch and a guarded near branch on a cycle: the
    // multi-branch next_solution merge.
    ("union-far-near-cycle", 0x6c747bb513432b0a),
    // Plain E(x,y) on a long cycle: the simplest binary query, largest
    // per-vertex symmetry.
    ("plain-edge-cycle", 0x87648f6d93ada5e7),
    // `true` at arity 2: enumeration must walk the full n² lattice.
    ("universal-pair", 0x722a5b763a74823d),
    // Boolean `exists Blue` sentence: arity-0 with real evaluation.
    ("boolean-exists", 0xb51e56b31a920b87),
    // Red(v0) at arity 2: v1 is unconstrained (a dummy answer variable),
    // so every solution fans out n ways.
    ("dummy-free-variable", 0x5464a5c73eac3ad8),
    // Wide 2-branch union at arity 3 on a star: guarded unaries plus
    // distance mix, branch answer sets overlap heavily.
    ("star-wide-union", 0xd0c9913203415720),
    // Far constraint on a bounded-degree expander-ish graph: the
    // kernel/skip machinery with non-trivial cover bags.
    ("far-bounded-degree", 0x36b50032ffaa6cab),
];

#[test]
fn corpus_stays_clean() {
    for &(name, seed) in CORPUS {
        // serve=true: the corpus also drives the wire protocol on every
        // arity ≥ 1 case. shrink=true so a regression arrives minimized.
        let outcome = run_case(seed, MAX_N, true, true);
        assert!(
            outcome.disagreements.is_empty(),
            "regression {name:?} ({}):\n{:#?}",
            describe_case(seed, MAX_N),
            outcome.disagreements
        );
        assert!(outcome.configs_checked > 0, "{name}: nothing ran");
    }
}

#[test]
fn corpus_names_are_unique() {
    let mut names: Vec<&str> = CORPUS.iter().map(|&(n, _)| n).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), CORPUS.len(), "duplicate corpus names");
}

#[test]
fn protocol_fuzz_regression_seeds() {
    for seed in [42, fuzz_u64(), 7] {
        let report = nd_conform::protocol_fuzz::fuzz_protocol(seed, 150);
        assert!(report.ok(), "seed {seed}: {:?}", report.disagreements);
    }
}

/// A fixed historical seed, spelled as a function to keep the array
/// literal readable.
fn fuzz_u64() -> u64 {
    0x1ee7_5eed_f422_0001
}
