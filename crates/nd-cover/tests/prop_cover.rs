//! Property tests: cover validity and kernel correctness on arbitrary
//! random graphs (the definitions must hold on *any* graph, sparse or not).

use proptest::prelude::*;

use nd_cover::{kernel_of_bag, BagId, Cover, KernelIndex};
use nd_graph::bfs::BfsScratch;
use nd_graph::{ColoredGraph, GraphBuilder, Vertex};

fn arb_graph() -> impl Strategy<Value = ColoredGraph> {
    (2usize..30).prop_flat_map(|n| {
        prop::collection::vec((0..n as Vertex, 0..n as Vertex), 0..2 * n).prop_map(move |es| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in es {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cover_conditions_hold(g in arb_graph(), r in 1u32..4) {
        let cover = Cover::build(&g, r, 0.5);
        cover.validate(&g);
        // Membership structure agrees with the bag lists.
        for id in 0..cover.num_bags() as BagId {
            for v in g.vertices() {
                let direct = cover.bag(id).verts.binary_search(&v).is_ok();
                prop_assert_eq!(cover.contains(id, v), direct);
            }
        }
    }

    #[test]
    fn kernels_match_definition(g in arb_graph(), r in 1u32..3, p in 0u32..4) {
        let cover = Cover::build(&g, r, 0.5);
        let mut scratch = BfsScratch::new(g.n());
        for id in 0..cover.num_bags() as BagId {
            let bag = &cover.bag(id).verts;
            let kernel = kernel_of_bag(&g, bag, p);
            for &v in bag {
                let n_p = scratch.ball_sorted(&g, v, p);
                let inside = n_p.iter().all(|w| bag.binary_search(w).is_ok());
                prop_assert_eq!(
                    kernel.binary_search(&v).is_ok(),
                    inside,
                    "v={} bag={} p={}",
                    v,
                    id,
                    p
                );
            }
        }
    }

    #[test]
    fn kernel_index_consistent_with_per_bag(g in arb_graph(), p in 0u32..3) {
        let cover = Cover::build(&g, 2, 0.5);
        let ki = KernelIndex::build(&g, &cover, p);
        for id in 0..cover.num_bags() as BagId {
            prop_assert_eq!(ki.kernel(id), &kernel_of_bag(&g, &cover.bag(id).verts, p)[..]);
        }
    }

    #[test]
    fn degree_counts_every_overlap(g in arb_graph()) {
        let cover = Cover::build(&g, 2, 0.5);
        let mut per_vertex = vec![0usize; g.n()];
        for id in 0..cover.num_bags() as BagId {
            for &v in &cover.bag(id).verts {
                per_vertex[v as usize] += 1;
            }
        }
        prop_assert_eq!(cover.degree(), per_vertex.iter().copied().max().unwrap_or(0));
        for v in g.vertices() {
            prop_assert_eq!(cover.bags_containing(v).len(), per_vertex[v as usize]);
        }
    }
}
