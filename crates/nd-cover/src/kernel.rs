//! Kernels of cover bags (Definition 5.6, Lemma 5.7).
//!
//! The `p`-kernel of a bag `X` is `K_p(X) = {a ∈ V : N_p(a) ⊆ X}` — the
//! vertices whose whole `p`-ball stays inside the bag. Lemma 5.7 computes it
//! in `O(p · ‖G[X]‖)`: a vertex is *outside* the kernel iff its distance to
//! the complement of `X` is `≤ p`, and that distance is `1 +` the distance
//! inside `G[X]` to the *boundary* (members of `X` with a neighbor outside),
//! so a single multi-source BFS inside the bag suffices.

use crate::{BagId, Cover};
use nd_graph::budget::{BudgetExceeded, BudgetTracker, Phase};
use nd_graph::par::try_parallel_map;
use nd_graph::{ColoredGraph, Vertex};
use std::sync::Mutex;

/// Reusable buffers for repeated [`kernel_of_bag_with`] calls.
///
/// Holds a graph-sized dense `vertex → bag-local index` table (so the
/// inner BFS loop does `O(1)` membership lookups on the CSR neighbor
/// slices instead of an `O(log |X|)` binary search per edge) plus the
/// per-bag `dist`/`queue` vectors. The dense table is reset by walking
/// the bag, not the whole graph, so reuse across all bags of a cover
/// costs `O(Σ_X |X|)`, keeping Lemma 5.7's `O(p · Σ_X ‖G[X]‖)` bound.
pub struct KernelScratch {
    /// Bag-local index of each vertex, plus one; `0` = not in the bag.
    local: Vec<u32>,
    /// Dist-to-outside per bag-local index, capped at `p+1`; `0` =
    /// unvisited.
    dist: Vec<u32>,
    queue: Vec<u32>,
}

impl KernelScratch {
    /// Scratch for a graph on `n` vertices.
    pub fn new(n: usize) -> KernelScratch {
        KernelScratch {
            local: vec![0; n],
            dist: Vec::new(),
            queue: Vec::new(),
        }
    }
}

/// Compute `K_p(X)` for the (sorted) bag `verts` of graph `g`.
/// Cost `O(p · ‖G[X]‖)` as in Lemma 5.7 (local-index BFS, no hashing).
///
/// Allocating convenience over [`kernel_of_bag_with`]; loops over many
/// bags should reuse one [`KernelScratch`] instead.
pub fn kernel_of_bag(g: &ColoredGraph, verts: &[Vertex], p: u32) -> Vec<Vertex> {
    kernel_of_bag_with(g, verts, p, &mut KernelScratch::new(g.n()))
}

/// [`kernel_of_bag`] against caller-owned scratch buffers.
pub fn kernel_of_bag_with(
    g: &ColoredGraph,
    verts: &[Vertex],
    p: u32,
    scratch: &mut KernelScratch,
) -> Vec<Vertex> {
    debug_assert!(verts.windows(2).all(|w| w[0] < w[1]));
    let KernelScratch { local, dist, queue } = scratch;
    if local.len() < g.n() {
        local.resize(g.n(), 0);
    }
    for (i, &v) in verts.iter().enumerate() {
        local[v as usize] = i as u32 + 1;
    }
    dist.clear();
    dist.resize(verts.len(), 0);
    queue.clear();
    for (i, &v) in verts.iter().enumerate() {
        if g.neighbors(v).iter().any(|&w| local[w as usize] == 0) {
            dist[i] = 1;
            queue.push(i as u32);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head] as usize;
        head += 1;
        let du = dist[u];
        if du > p {
            continue;
        }
        for &w in g.neighbors(verts[u]) {
            let lw = local[w as usize];
            if lw != 0 && dist[lw as usize - 1] == 0 {
                dist[lw as usize - 1] = du + 1;
                queue.push(lw - 1);
            }
        }
    }
    let kernel = verts
        .iter()
        .enumerate()
        .filter(|(i, _)| dist[*i] == 0 || dist[*i] > p)
        .map(|(_, &v)| v)
        .collect();
    // Undo only the bag's entries so the next bag starts clean without an
    // O(n) wipe.
    for &v in verts {
        local[v as usize] = 0;
    }
    kernel
}

/// Kernels of every bag of a cover at a fixed radius, with the inverted
/// index `v ↦ {X : v ∈ K_p(X)}` needed by the skip pointers (Lemma 5.8).
pub struct KernelIndex {
    pub p: u32,
    /// Per bag, the sorted kernel members.
    kernels: Vec<Vec<Vertex>>,
    /// Per vertex, the sorted bags whose kernel contains it.
    kernel_bags_of: Vec<Vec<BagId>>,
}

impl KernelIndex {
    /// Compute `K_p(X)` for every bag (total cost `O(p · Σ_X ‖G[X]‖)`).
    ///
    /// Unbudgeted convenience; see [`KernelIndex::try_build`].
    pub fn build(g: &ColoredGraph, cover: &Cover, p: u32) -> KernelIndex {
        Self::try_build(g, cover, p, &BudgetTracker::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    /// Compute `K_p(X)` for every bag, charging per-bag work against
    /// `tracker`. Sequential; see [`KernelIndex::try_build_threads`].
    pub fn try_build(
        g: &ColoredGraph,
        cover: &Cover,
        p: u32,
        tracker: &BudgetTracker,
    ) -> Result<KernelIndex, BudgetExceeded> {
        Self::try_build_threads(g, cover, p, 1, tracker)
    }

    /// [`KernelIndex::try_build`] fanned across up to `threads` workers.
    ///
    /// Each bag's kernel only reads the immutable graph and its own bag,
    /// so bags are mapped independently and merged in bag order — the
    /// resulting index is identical to the sequential build. The shared
    /// `tracker` enforces one total budget across all workers (which bag
    /// observes the overrun first may vary under contention, but whether
    /// the cap trips does not).
    pub fn try_build_threads(
        g: &ColoredGraph,
        cover: &Cover,
        p: u32,
        threads: usize,
        tracker: &BudgetTracker,
    ) -> Result<KernelIndex, BudgetExceeded> {
        // Checked-out scratch pool: workers reuse the graph-sized buffers
        // across the bags they process instead of allocating per bag.
        let scratches: Mutex<Vec<KernelScratch>> = Mutex::new(Vec::new());
        let ids: Vec<BagId> = (0..cover.num_bags() as BagId).collect();
        let kernels = try_parallel_map(threads, &ids, |_, &id| {
            let verts = &cover.bag(id).verts;
            tracker.charge_nodes(Phase::KernelConstruction, verts.len() as u64 + 1)?;
            let mut scratch = scratches
                .lock()
                .unwrap()
                .pop()
                .unwrap_or_else(|| KernelScratch::new(g.n()));
            let k = kernel_of_bag_with(g, verts, p, &mut scratch);
            scratches.lock().unwrap().push(scratch);
            tracker.charge_memory(Phase::KernelConstruction, 4 * k.len() as u64 + 8)?;
            Ok(k)
        })?;
        // The inverted index is rebuilt sequentially in bag order, so the
        // per-vertex bag lists come out sorted exactly as before.
        let mut kernel_bags_of: Vec<Vec<BagId>> = vec![Vec::new(); g.n()];
        for (id, k) in kernels.iter().enumerate() {
            for &v in k {
                kernel_bags_of[v as usize].push(id as BagId);
            }
        }
        Ok(KernelIndex {
            p,
            kernels,
            kernel_bags_of,
        })
    }

    /// Append the index's binary encoding to `w` (DESIGN.md §9). Only the
    /// per-bag kernels are stored; the inverted index is rebuilt on load.
    /// The vertex count is *not* stored — the loader supplies it from the
    /// graph, which prevents a corrupted count from driving a huge
    /// allocation.
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        w.u32(self.p);
        w.seq_len(self.kernels.len());
        for k in &self.kernels {
            w.u32_slice(k);
        }
    }

    /// Decode an index over a graph with `n` vertices, re-validating
    /// sortedness and vertex ranges.
    pub fn read_from(
        r: &mut nd_persist::Reader<'_>,
        n: usize,
    ) -> Result<KernelIndex, nd_persist::PersistError> {
        use nd_persist::malformed;
        let p = r.u32("kernel radius")?;
        let num_bags = r.seq_len(8, "kernel bag count")?;
        let mut kernels = Vec::with_capacity(num_bags);
        for _ in 0..num_bags {
            let k = r.u32_slice("kernel members")?;
            if k.windows(2).any(|w| w[0] >= w[1]) {
                return Err(malformed("kernel members are not sorted"));
            }
            if k.iter().any(|&v| (v as usize) >= n) {
                return Err(malformed("kernel member out of range"));
            }
            kernels.push(k);
        }
        let mut kernel_bags_of: Vec<Vec<BagId>> = vec![Vec::new(); n];
        for (id, k) in kernels.iter().enumerate() {
            for &v in k {
                kernel_bags_of[v as usize].push(id as BagId);
            }
        }
        Ok(KernelIndex {
            p,
            kernels,
            kernel_bags_of,
        })
    }

    /// Number of bags the index holds kernels for.
    pub fn num_bags(&self) -> usize {
        self.kernels.len()
    }

    /// Sorted kernel of a bag.
    pub fn kernel(&self, id: BagId) -> &[Vertex] {
        &self.kernels[id as usize]
    }

    /// Is `v ∈ K_p(X_id)`? `O(log)`.
    pub fn in_kernel(&self, id: BagId, v: Vertex) -> bool {
        self.kernels[id as usize].binary_search(&v).is_ok()
    }

    /// Sorted bags whose kernel contains `v`.
    pub fn kernel_bags_of(&self, v: Vertex) -> &[BagId] {
        &self.kernel_bags_of[v as usize]
    }

    /// Maximum number of kernels meeting at a vertex (≤ cover degree).
    pub fn degree(&self) -> usize {
        self.kernel_bags_of.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::bfs::BfsScratch;
    use nd_graph::generators;

    /// Brute-force kernel: check `N_p(a) ⊆ X` per vertex.
    fn kernel_naive(g: &ColoredGraph, verts: &[Vertex], p: u32) -> Vec<Vertex> {
        let mut scratch = BfsScratch::new(g.n());
        verts
            .iter()
            .copied()
            .filter(|&a| {
                scratch
                    .ball_sorted(g, a, p)
                    .iter()
                    .all(|b| verts.binary_search(b).is_ok())
            })
            .collect()
    }

    #[test]
    fn kernel_matches_naive() {
        for (g, r, p) in [
            (generators::path(40), 3u32, 2u32),
            (generators::grid(9, 9), 2, 1),
            (generators::grid(9, 9), 2, 2),
            (generators::random_tree(60, 9), 3, 3),
            (generators::bounded_degree(80, 4, 3), 2, 2),
        ] {
            let cover = Cover::build(&g, r, 0.5);
            for id in 0..cover.num_bags() as BagId {
                let verts = &cover.bag(id).verts;
                assert_eq!(
                    kernel_of_bag(&g, verts, p),
                    kernel_naive(&g, verts, p),
                    "bag {id}"
                );
            }
        }
    }

    #[test]
    fn whole_graph_bag_kernel_is_everything() {
        let g = generators::cycle(12);
        let all: Vec<Vertex> = g.vertices().collect();
        assert_eq!(kernel_of_bag(&g, &all, 5), all);
    }

    #[test]
    fn p_zero_kernel_is_the_bag() {
        // N_0(a) = {a} ⊆ X always.
        let g = generators::grid(6, 6);
        let cover = Cover::build(&g, 2, 0.5);
        let verts = &cover.bag(0).verts;
        assert_eq!(&kernel_of_bag(&g, verts, 0), verts);
    }

    #[test]
    fn kernel_index_inversion() {
        let g = generators::grid(8, 8);
        let cover = Cover::build(&g, 2, 0.5);
        let ki = KernelIndex::build(&g, &cover, 2);
        for id in 0..cover.num_bags() as BagId {
            for &v in ki.kernel(id) {
                assert!(ki.kernel_bags_of(v).contains(&id));
                assert!(ki.in_kernel(id, v));
            }
        }
        for v in g.vertices() {
            for &id in ki.kernel_bags_of(v) {
                assert!(ki.in_kernel(id, v));
            }
        }
        assert!(ki.degree() <= cover.degree());
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        for (g, r, p) in [
            (generators::grid(10, 10), 2u32, 2u32),
            (generators::random_tree(150, 11), 3, 3),
            (generators::bounded_degree(120, 4, 5), 2, 1),
        ] {
            let cover = Cover::build(&g, r, 0.5);
            let tracker = BudgetTracker::unlimited();
            let seq = KernelIndex::try_build(&g, &cover, p, &tracker).unwrap();
            for threads in [2, 4] {
                let par = KernelIndex::try_build_threads(&g, &cover, p, threads, &tracker).unwrap();
                assert_eq!(seq.kernels, par.kernels, "threads={threads}");
                assert_eq!(seq.kernel_bags_of, par.kernel_bags_of, "threads={threads}");
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_allocation() {
        let g = generators::grid(9, 9);
        let cover = Cover::build(&g, 2, 0.5);
        let mut scratch = KernelScratch::new(g.n());
        for id in 0..cover.num_bags() as BagId {
            let verts = &cover.bag(id).verts;
            assert_eq!(
                kernel_of_bag_with(&g, verts, 2, &mut scratch),
                kernel_of_bag(&g, verts, 2),
                "bag {id}"
            );
        }
    }

    #[test]
    fn codec_roundtrip_rebuilds_the_inverted_index() {
        let g = generators::grid(8, 8);
        let cover = Cover::build(&g, 2, 0.5);
        let ki = KernelIndex::build(&g, &cover, 2);
        let mut w = nd_persist::Writer::new();
        ki.write_into(&mut w);
        let bytes = w.into_bytes();
        let mut r = nd_persist::Reader::new(&bytes);
        let back = KernelIndex::read_from(&mut r, g.n()).unwrap();
        r.finish().unwrap();
        assert_eq!(back.p, ki.p);
        assert_eq!(back.kernels, ki.kernels);
        assert_eq!(back.kernel_bags_of, ki.kernel_bags_of);
        // Out-of-range member against a smaller declared n fails typed.
        assert!(KernelIndex::read_from(&mut nd_persist::Reader::new(&bytes), 1).is_err());
        for cut in 0..bytes.len() {
            assert!(
                KernelIndex::read_from(&mut nd_persist::Reader::new(&bytes[..cut]), g.n()).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn assigned_vertices_are_in_their_kernel_at_radius_r() {
        // X(a) ⊇ N_r(a), hence a ∈ K_r(X(a)).
        let g = generators::random_tree(100, 4);
        let cover = Cover::build(&g, 2, 0.5);
        let ki = KernelIndex::build(&g, &cover, 2);
        for v in g.vertices() {
            assert!(ki.in_kernel(cover.bag_of(v), v), "v={v}");
        }
    }
}
