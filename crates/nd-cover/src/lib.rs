//! Neighborhood covers (Theorem 4.4) and kernels (Lemma 5.7).
//!
//! An `(r, s)`-neighborhood cover of `G` is a family `X` of vertex sets
//! ("bags") such that every `r`-ball `N_r(a)` is contained in some bag, and
//! every bag is contained in some `s`-ball. Its *degree* is the maximum
//! number of bags meeting at a vertex. Theorem 4.4 (Grohe–Kreutzer–Siebertz)
//! computes, on nowhere dense classes, an `(r, 2r)`-cover with degree
//! `≤ n^ε` in pseudo-linear time.
//!
//! We substitute the GKS construction with the classical greedy cover
//! (process vertices in domain order; an uncovered vertex `c` spawns the bag
//! `N_{2r}(c)` and covers all of `N_r(c)`), which produces a *valid*
//! `(r, 2r)`-cover on any graph; its degree is measured rather than proven
//! (experiment E2) and is small on the sparse families the paper targets.
//! See DESIGN.md §2 for the substitution argument.
//!
//! Bag membership and smallest-member-≥ queries are answered in constant
//! time through the Storing Theorem structure ([`nd_store::KeySet`]) keyed
//! by `(bag, vertex)` pairs, exactly as sketched below Theorem 4.4 in the
//! paper.

pub mod kernel;

pub use kernel::{kernel_of_bag, kernel_of_bag_with, KernelIndex, KernelScratch};

use nd_graph::budget::{BudgetExceeded, BudgetTracker, Phase};
use nd_graph::{BfsScratch, ColoredGraph, Vertex};
use nd_store::{KeySet, StoreParams};
use std::time::Instant;

/// Index of a bag within a cover.
pub type BagId = u32;

/// Wall-clock breakdown of a cover build, for `PrepareStats`'s per-phase
/// timings: the greedy bag construction vs. the Storing-Theorem
/// membership store (`TrieBuild`).
#[derive(Clone, Copy, Debug, Default)]
pub struct CoverTimings {
    pub greedy_ms: u64,
    pub store_ms: u64,
}

/// One bag of a cover.
#[derive(Clone, Debug)]
pub struct Bag {
    /// The vertex whose `2r`-ball spawned (and contains) the bag.
    pub center: Vertex,
    /// Sorted members.
    pub verts: Vec<Vertex>,
}

/// An `(r, 2r)`-neighborhood cover.
pub struct Cover {
    pub r: u32,
    bags: Vec<Bag>,
    /// `X(a)`: the canonical bag covering `N_r(a)`.
    assignment: Vec<BagId>,
    /// For each vertex, the sorted list of bags containing it.
    bags_of: Vec<Vec<BagId>>,
    /// For each bag, the vertices `b` with `X(b) = bag` (sorted).
    assigned_members: Vec<Vec<Vertex>>,
    /// Storing-Theorem membership structure keyed by `(bag, vertex)`.
    membership: KeySet,
    /// Build-time phase breakdown (not part of the cover's value — two
    /// covers built from the same input are equal regardless of timings).
    timings: CoverTimings,
}

impl Cover {
    /// Greedy `(r, 2r)`-cover of `g`; `epsilon` parameterizes the membership
    /// store.
    ///
    /// Unbudgeted convenience; see [`Cover::try_build`] for cooperative
    /// cancellation.
    pub fn build(g: &ColoredGraph, r: u32, epsilon: f64) -> Cover {
        Self::try_build(g, r, epsilon, &BudgetTracker::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    /// Greedy `(r, 2r)`-cover of `g`, charging BFS visits and trie inserts
    /// against `tracker` so that a capped preprocessing run bails out with
    /// [`BudgetExceeded`] instead of building an `Ω(n²)` cover on a dense
    /// graph.
    pub fn try_build(
        g: &ColoredGraph,
        r: u32,
        epsilon: f64,
        tracker: &BudgetTracker,
    ) -> Result<Cover, BudgetExceeded> {
        let t_greedy = Instant::now();
        let n = g.n();
        let mut covered = vec![false; n];
        let mut assignment = vec![0 as BagId; n];
        let mut bags: Vec<Bag> = Vec::new();
        let mut scratch = BfsScratch::new(n);
        let mut kscratch = KernelScratch::new(n);
        tracker.charge_memory(Phase::CoverConstruction, 6 * n as u64)?;
        for c in 0..n as Vertex {
            if covered[c as usize] {
                continue;
            }
            let id = bags.len() as BagId;
            scratch.run(g, c, 2 * r);
            let mut verts: Vec<Vertex> = scratch.reached().to_vec();
            verts.sort_unstable();
            // The 2r-ball BFS visits |verts| vertices and the kernel BFS
            // below touches each bag member O(r) more times; charge the
            // dominant term.
            tracker.charge_nodes(Phase::CoverConstruction, verts.len() as u64 + 1)?;
            tracker.charge_memory(Phase::CoverConstruction, 4 * verts.len() as u64)?;
            // Every vertex of the bag's r-kernel has its whole r-ball inside
            // the bag, so the bag can serve as X(a) for all of them — this
            // covers a superset of N_r(c) (which is always inside the
            // kernel), reducing the number of bags and hence the cover
            // degree.
            for a in kernel::kernel_of_bag_with(g, &verts, r, &mut kscratch) {
                if !covered[a as usize] {
                    covered[a as usize] = true;
                    assignment[a as usize] = id;
                }
            }
            debug_assert!(covered[c as usize], "center must cover itself");
            bags.push(Bag { center: c, verts });
        }

        let mut bags_of: Vec<Vec<BagId>> = vec![Vec::new(); n];
        for (id, bag) in bags.iter().enumerate() {
            for &v in &bag.verts {
                bags_of[v as usize].push(id as BagId);
            }
        }
        let mut assigned_members: Vec<Vec<Vertex>> = vec![Vec::new(); bags.len()];
        for v in 0..n {
            assigned_members[assignment[v] as usize].push(v as Vertex);
        }

        let greedy_ms = t_greedy.elapsed().as_millis() as u64;
        let t_store = Instant::now();
        let params = StoreParams::new(n.max(bags.len()).max(1) as u64, 2, epsilon.max(1e-9));
        let mut membership = KeySet::new(params);
        for (id, bag) in bags.iter().enumerate() {
            // nd-store has no budget hooks of its own (it sits below
            // nd-graph in the DAG); its callers charge trie work here.
            tracker.charge_nodes(Phase::TrieBuild, bag.verts.len() as u64)?;
            tracker.charge_memory(Phase::TrieBuild, 16 * bag.verts.len() as u64)?;
            for &v in &bag.verts {
                membership.insert(&[id as u64, v as u64]);
            }
        }
        tracker.checkpoint(Phase::CoverConstruction)?;

        Ok(Cover {
            r,
            bags,
            assignment,
            bags_of,
            assigned_members,
            membership,
            timings: CoverTimings {
                greedy_ms,
                store_ms: t_store.elapsed().as_millis() as u64,
            },
        })
    }

    /// Wall-clock breakdown recorded while building this cover.
    pub fn build_timings(&self) -> CoverTimings {
        self.timings
    }

    /// Number of vertices of the covered graph.
    pub fn n(&self) -> usize {
        self.assignment.len()
    }

    /// Number of bags.
    pub fn num_bags(&self) -> usize {
        self.bags.len()
    }

    /// The bag with the given id.
    pub fn bag(&self, id: BagId) -> &Bag {
        &self.bags[id as usize]
    }

    /// The canonical bag `X(a)` (contains `N_r(a)`).
    pub fn bag_of(&self, a: Vertex) -> BagId {
        self.assignment[a as usize]
    }

    /// Vertices `b` with `X(b) = id` (the per-bag list of Step 3 of the
    /// Section 5.2.1 preprocessing).
    pub fn assigned_members(&self, id: BagId) -> &[Vertex] {
        &self.assigned_members[id as usize]
    }

    /// Sorted list of bags containing `v`.
    pub fn bags_containing(&self, v: Vertex) -> &[BagId] {
        &self.bags_of[v as usize]
    }

    /// Constant-time membership test via the Storing Theorem structure.
    pub fn contains(&self, id: BagId, v: Vertex) -> bool {
        self.membership.contains(&[id as u64, v as u64])
    }

    /// Smallest member of the bag that is `≥ v` (constant time) — the
    /// `b_X` lookup of the answering phase (Section 5.2.2).
    pub fn successor_in_bag(&self, id: BagId, v: Vertex) -> Option<Vertex> {
        let params = self.membership.params();
        if (v as u64) >= params.n {
            return None;
        }
        let packed = params.pack(&[id as u64, v as u64]);
        match self.membership.successor_inclusive_packed(packed) {
            Some(next) => {
                let mut key = [0u64; 2];
                params.unpack_into(next, &mut key);
                (key[0] == id as u64).then_some(key[1] as Vertex)
            }
            None => None,
        }
    }

    /// The cover degree `δ(X)`: maximum number of bags meeting at a vertex.
    pub fn degree(&self) -> usize {
        self.bags_of.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// `Σ_X |X|` — the quantity bounded by `n^{1+ε}` in the paper (Eq. 1).
    pub fn total_bag_size(&self) -> usize {
        self.bags.iter().map(|b| b.verts.len()).sum()
    }

    /// Append the cover's binary encoding to `w` (DESIGN.md §9).
    ///
    /// The Storing-Theorem membership trie — the expensive part of a
    /// cover build (`store_ms` dominates on dense families) — is
    /// serialized verbatim; the cheap inverted indexes (`bags_of`,
    /// `assigned_members`) are rebuilt on load in `O(Σ_X |X| + n)`.
    pub fn write_into(&self, w: &mut nd_persist::Writer) {
        w.u32(self.r);
        w.seq_len(self.assignment.len());
        for &id in &self.assignment {
            w.u32(id);
        }
        w.seq_len(self.bags.len());
        for bag in &self.bags {
            w.u32(bag.center);
            w.u32_slice(&bag.verts);
        }
        self.membership.write_into(w);
    }

    /// Decode a cover, re-validating the invariants the accessors index
    /// by (assignment targets exist, bag members in range and sorted).
    pub fn read_from(r: &mut nd_persist::Reader<'_>) -> Result<Cover, nd_persist::PersistError> {
        use nd_persist::malformed;
        let radius = r.u32("cover radius")?;
        let n = r.seq_len(4, "cover assignment")?;
        let mut assignment = Vec::with_capacity(n);
        for _ in 0..n {
            assignment.push(r.u32("cover assignment entry")?);
        }
        let num_bags = r.seq_len(4, "cover bag count")?;
        let mut bags = Vec::with_capacity(num_bags);
        for _ in 0..num_bags {
            let center = r.u32("bag center")?;
            let verts = r.u32_slice_sorted(n as u32, "bag members")?;
            if (center as usize) >= n {
                return Err(malformed("bag center out of range"));
            }
            bags.push(Bag { center, verts });
        }
        if n > 0 && num_bags == 0 {
            return Err(malformed("cover of a non-empty graph has no bags"));
        }
        if assignment.iter().any(|&id| (id as usize) >= num_bags) {
            return Err(malformed("cover assignment targets a missing bag"));
        }
        let membership = KeySet::read_from(r)?;
        // successor_in_bag packs (bag, vertex) pairs through these params;
        // a mismatched shape would trip the packer's arity contract.
        if membership.params().k != 2 {
            return Err(malformed("cover membership store must be binary"));
        }
        if membership.params().n < n.max(num_bags).max(1) as u64 {
            return Err(malformed("cover membership key range too small"));
        }
        let mut bags_of: Vec<Vec<BagId>> = vec![Vec::new(); n];
        for (id, bag) in bags.iter().enumerate() {
            for &v in &bag.verts {
                bags_of[v as usize].push(id as BagId);
            }
        }
        let mut assigned_members: Vec<Vec<Vertex>> = vec![Vec::new(); bags.len()];
        for (v, &id) in assignment.iter().enumerate() {
            assigned_members[id as usize].push(v as Vertex);
        }
        Ok(Cover {
            r: radius,
            bags,
            assignment,
            bags_of,
            assigned_members,
            membership,
            timings: CoverTimings::default(),
        })
    }

    /// Verify the `(r, 2r)`-cover conditions exhaustively (test helper).
    pub fn validate(&self, g: &ColoredGraph) {
        let mut scratch = BfsScratch::new(g.n());
        for a in g.vertices() {
            let ball = scratch.ball_sorted(g, a, self.r);
            let bag = &self.bags[self.assignment[a as usize] as usize];
            for v in ball {
                assert!(
                    bag.verts.binary_search(&v).is_ok(),
                    "N_r({a}) not inside X({a})"
                );
            }
        }
        for bag in &self.bags {
            let ball = scratch.ball_sorted(g, bag.center, 2 * self.r);
            for &v in &bag.verts {
                assert!(
                    ball.binary_search(&v).is_ok(),
                    "bag of center {} exceeds its 2r-ball",
                    bag.center
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nd_graph::generators;

    #[test]
    fn cover_is_valid_on_families() {
        for (g, r) in [
            (generators::path(50), 2),
            (generators::grid(10, 10), 2),
            (generators::random_tree(80, 1), 3),
            (generators::bounded_degree(120, 4, 5), 2),
            (generators::clique(12), 1),
            (generators::path(1), 1),
        ] {
            let cover = Cover::build(&g, r, 0.5);
            cover.validate(&g);
        }
    }

    #[test]
    fn every_vertex_assigned() {
        let g = generators::grid(8, 8);
        let cover = Cover::build(&g, 2, 0.5);
        for v in g.vertices() {
            let id = cover.bag_of(v);
            assert!(cover.contains(id, v));
            assert!(cover.assigned_members(id).binary_search(&v).is_ok());
        }
        let total: usize = (0..cover.num_bags() as BagId)
            .map(|id| cover.assigned_members(id).len())
            .sum();
        assert_eq!(total, g.n());
    }

    #[test]
    fn membership_and_successor() {
        let g = generators::path(20);
        let cover = Cover::build(&g, 2, 0.5);
        let id = cover.bag_of(10);
        let bag = cover.bag(id);
        // successor_in_bag agrees with a scan.
        for v in 0..20 as Vertex {
            let want = bag.verts.iter().copied().find(|&w| w >= v);
            assert_eq!(cover.successor_in_bag(id, v), want, "v={v}");
        }
        assert_eq!(cover.successor_in_bag(id, 21), None);
    }

    #[test]
    fn degree_small_on_path_large_on_clique() {
        let p = Cover::build(&generators::path(200), 2, 0.5);
        assert!(p.degree() <= 3, "path cover degree {}", p.degree());
        let k = Cover::build(&generators::clique(30), 2, 0.5);
        assert_eq!(k.num_bags(), 1);
        assert_eq!(k.degree(), 1);
    }

    #[test]
    fn centers_spawn_bags() {
        let g = generators::star(10);
        let cover = Cover::build(&g, 1, 0.5);
        // Vertex 0 covers everything in one bag.
        assert_eq!(cover.num_bags(), 1);
        assert_eq!(cover.bag(0).center, 0);
        assert_eq!(cover.bag(0).verts.len(), 10);
    }

    #[test]
    fn empty_graph() {
        let g = generators::path(0);
        let cover = Cover::build(&g, 2, 0.5);
        assert_eq!(cover.num_bags(), 0);
        assert_eq!(cover.degree(), 0);
    }

    #[test]
    fn codec_roundtrip_preserves_every_query_surface() {
        for (g, r) in [
            (generators::grid(8, 8), 2u32),
            (generators::path(30), 3),
            (generators::path(0), 1),
        ] {
            let cover = Cover::build(&g, r, 0.5);
            let mut w = nd_persist::Writer::new();
            cover.write_into(&mut w);
            let bytes = w.into_bytes();
            let mut rd = nd_persist::Reader::new(&bytes);
            let back = Cover::read_from(&mut rd).unwrap();
            rd.finish().unwrap();
            assert_eq!(back.r, cover.r);
            assert_eq!(back.num_bags(), cover.num_bags());
            for v in g.vertices() {
                assert_eq!(back.bag_of(v), cover.bag_of(v));
                assert_eq!(back.bags_containing(v), cover.bags_containing(v));
            }
            for id in 0..cover.num_bags() as BagId {
                assert_eq!(back.bag(id).verts, cover.bag(id).verts);
                assert_eq!(back.assigned_members(id), cover.assigned_members(id));
                for v in 0..g.n() as Vertex {
                    assert_eq!(back.contains(id, v), cover.contains(id, v));
                    assert_eq!(back.successor_in_bag(id, v), cover.successor_in_bag(id, v));
                }
            }
            if g.n() > 0 {
                back.validate(&g);
            }
        }
    }

    #[test]
    fn codec_rejects_missing_bag_targets() {
        let g = generators::path(10);
        let cover = Cover::build(&g, 2, 0.5);
        let mut w = nd_persist::Writer::new();
        cover.write_into(&mut w);
        let bytes = w.into_bytes();
        // Point assignment entry 0 at a bag far beyond the count: offset 4
        // (radius) + 8 (len prefix) is the first assignment word.
        let mut c = bytes.clone();
        c[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Cover::read_from(&mut nd_persist::Reader::new(&c)),
            Err(nd_persist::PersistError::Malformed { .. })
        ));
        // Truncations are typed, never panics.
        for cut in 0..bytes.len() {
            assert!(
                Cover::read_from(&mut nd_persist::Reader::new(&bytes[..cut])).is_err(),
                "cut {cut}"
            );
        }
    }
}
